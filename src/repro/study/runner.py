"""Running the characterization study.

The paper's methodology: four interactive sessions per application,
each analyzed offline by LagAlyzer; Table III reports per-application
averages over the sessions, and Figures 3-8 characterize patterns,
triggers, locations, and causes. :func:`run_study` reproduces that
pipeline — and, through :mod:`repro.engine`, scales it: applications
fan out across worker processes (``workers=``) and every per-trace
analysis partial is served from the content-addressed result cache when
the trace is unchanged, so re-running a study is mostly cache reads.
Each application's analyses are compiled into one fused
:class:`~repro.core.plan.AnalysisPlan`, so every session trace is
scanned once per study run (not once per analysis) and a warm re-run is
one fused-bundle read per trace. Parallel, cached, and fused runs all
produce results identical to the serial path.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analyzer import AnalysisConfig
from repro.core.causegraph import CauseSummary
from repro.core.errors import AnalysisError
from repro.core.store import as_columnar
from repro.core.store.buffers import InternTable
from repro.core.trace import Trace
from repro.obs import Observer
from repro.obs import runtime as obs_runtime
from repro.core.concurrency import ConcurrencySummary
from repro.core.location import LocationSummary
from repro.core.occurrence import OccurrenceSummary
from repro.core.statistics import SessionStats, mean_row
from repro.core.threadstates import ThreadStateSummary
from repro.core.triggers import TriggerSummary
from repro.engine.engine import AnalysisEngine, QuarantinedTrace
from repro.engine.scheduler import RetryPolicy, resolve_workers, run_tasks
from repro.faults import runtime as faults_runtime
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.apps.catalog import APPLICATION_NAMES
from repro.apps.sessions import simulate_sessions

#: The analyses every AppResult is assembled from, in map order.
_APP_ANALYSES = (
    "statistics",
    "occurrence",
    "triggers",
    "location",
    "concurrency",
    "threadstates",
    "patterns",
    "causes",
)


@dataclass(frozen=True)
class StudyConfig:
    """How to run the study."""

    seed: int = 20100401
    sessions: int = 4
    scale: float = 1.0
    applications: Tuple[str, ...] = APPLICATION_NAMES
    perceptible_threshold_ms: float = 100.0

    def analysis_config(self) -> AnalysisConfig:
        return AnalysisConfig(
            perceptible_threshold_ms=self.perceptible_threshold_ms
        )


@dataclass
class AppResult:
    """Every per-application statistic the paper's evaluation uses."""

    name: str
    session_stats: List[SessionStats]
    mean_stats: SessionStats
    occurrence: OccurrenceSummary
    triggers_all: TriggerSummary
    triggers_perceptible: TriggerSummary
    location_all: LocationSummary
    location_perceptible: LocationSummary
    concurrency_all: ConcurrencySummary
    concurrency_perceptible: ConcurrencySummary
    threadstates_all: ThreadStateSummary
    threadstates_perceptible: ThreadStateSummary
    pattern_cdf: List[float]
    """Figure 3 curve: cumulative episode % by pattern % (101 points)."""

    causes: Optional[CauseSummary] = None
    """Self-time attribution by cause label over all episodes."""

    quarantined: List[QuarantinedTrace] = field(default_factory=list)
    """Sessions excluded from every summary above (damaged traces)."""


@dataclass
class StudyResult:
    """All application results plus the cross-application mean row."""

    config: StudyConfig
    apps: Dict[str, AppResult]

    @property
    def mean_stats(self) -> SessionStats:
        """The "Mean" row at the bottom of Table III."""
        return mean_row([result.mean_stats for result in self.apps.values()])

    @property
    def quarantined(self) -> Dict[str, List[QuarantinedTrace]]:
        """Damaged sessions per application (apps with none are omitted)."""
        return {
            name: result.quarantined
            for name, result in self.apps.items()
            if result.quarantined
        }

    def ordered(self) -> List[AppResult]:
        """Results in Table II order."""
        return [self.apps[name] for name in self.config.applications]


def analyze_app(
    name: str,
    config: StudyConfig,
    engine: Optional[AnalysisEngine] = None,
    traces: Optional[Sequence[Trace]] = None,
) -> AppResult:
    """Simulate and analyze one application's sessions.

    With an engine, every per-trace analysis partial goes through its
    result cache — a re-run over unchanged traces does no map work.
    Sessions whose traces fail with deterministic damage are
    quarantined (listed in :attr:`AppResult.quarantined`, excluded from
    every summary); only an application with *no* analyzable session
    raises.

    Args:
        traces: pre-loaded session traces; when omitted, the paper's
            sessions are simulated from ``config``.
    """
    if traces is None:
        with obs_runtime.maybe_span(
            "study.simulate", application=name, sessions=config.sessions
        ):
            traces = simulate_sessions(
                name,
                count=config.sessions,
                seed=config.seed,
                scale=config.scale,
            )
    # Ship columns, not object trees: columnar-backed traces pickle
    # smaller to map workers and analyses read the arrays directly.
    # Content digests are unchanged, so cache keys stay stable. One
    # string table and one stack table are shared across the app's
    # sessions (they repeat the same symbols), cutting columnarization
    # memory; ids are store-internal, so sharing changes no output.
    interns = InternTable()
    stack_interns = InternTable()
    traces = [
        as_columnar(trace, interns=interns, stack_interns=stack_interns)
        for trace in traces
    ]
    analysis_config = config.analysis_config()
    if engine is None:
        engine = AnalysisEngine(workers=1, use_cache=False)
    partials = engine.map_traces(_APP_ANALYSES, traces, analysis_config)
    quarantined = list(engine.quarantined)
    if len(quarantined) == len(traces):
        raise AnalysisError(
            f"every session of {name} was quarantined: "
            + "; ".join(entry.describe() for entry in quarantined)
        )

    def reduce(analysis: str, perceptible_only: bool = False):
        from repro.core.analyses import get_analysis

        with obs_runtime.maybe_span(
            "engine.reduce", metric="engine.reduce_ms", analysis=analysis
        ):
            return get_analysis(analysis).reduce(
                partials[analysis], perceptible_only=perceptible_only
            )

    stats = reduce("statistics")
    return AppResult(
        name=stats.mean.application,
        session_stats=list(stats.rows),
        mean_stats=stats.mean,
        occurrence=reduce("occurrence"),
        triggers_all=reduce("triggers"),
        triggers_perceptible=reduce("triggers", perceptible_only=True),
        location_all=reduce("location"),
        location_perceptible=reduce("location", perceptible_only=True),
        concurrency_all=reduce("concurrency"),
        concurrency_perceptible=reduce("concurrency", perceptible_only=True),
        threadstates_all=reduce("threadstates"),
        threadstates_perceptible=reduce(
            "threadstates", perceptible_only=True
        ),
        pattern_cdf=list(reduce("patterns").cdf),
        causes=reduce("causes"),
        quarantined=quarantined,
    )


def _analyze_app_task(
    name: str,
    config: StudyConfig,
    cache_dir: Optional[str],
    use_cache: bool,
    obs_profile: Optional[bool] = None,
    retry: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
) -> Tuple[AppResult, Optional[dict]]:
    """Worker: one application end to end (module-level for pickling).

    Cache counters accumulated in the worker are flushed to the shared
    ``stats.json`` before returning, so ``engine cache stats`` sees the
    whole study no matter how it was scheduled. With ``obs_profile``
    set (observed study) a fresh-process worker also returns its
    observability snapshot; in the dispatching process (serial path or
    pool fallback) spans land on the ambient observer and the snapshot
    is None.
    """
    worker_obs: Optional[Observer] = None
    if obs_profile is not None and obs_runtime.current() is None:
        worker_obs = Observer(profile=obs_profile)
    with obs_runtime.installed(worker_obs):
        with obs_runtime.maybe_span("study.app", application=name):
            engine = AnalysisEngine(
                workers=1,
                cache_dir=cache_dir,
                use_cache=use_cache,
                retry=retry,
                task_timeout=task_timeout,
            )
            result = analyze_app(name, config, engine=engine)
            engine.flush_cache_stats()
    snapshot = worker_obs.snapshot() if worker_obs is not None else None
    return result, snapshot


def _resolve_injector(
    faults: Union[FaultPlan, FaultInjector, dict, None],
) -> Optional[FaultInjector]:
    """Normalize the ``faults=`` knob to an injector (or None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)


def run_study(
    config: Optional[StudyConfig] = None,
    progress: bool = False,
    workers: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    obs: Optional[Observer] = None,
    faults: Union[FaultPlan, FaultInjector, dict, None] = None,
    retry: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
    warehouse: Optional[Union[str, Path]] = None,
    warehouse_run_id: Optional[str] = None,
) -> StudyResult:
    """Run the full characterization study.

    Args:
        config: study parameters; defaults to the paper's setup (four
            full-length sessions per application, 100 ms threshold).
        progress: print one line per application as it completes.
        workers: worker processes to fan applications out across
            (``1`` = serial, ``0`` = one per CPU). Results are
            identical for every worker count.
        cache_dir: result-cache root (default ``~/.cache/lagalyzer``).
        use_cache: set ``False`` to recompute everything.
        obs: an :class:`~repro.obs.Observer`; when given, the study is
            traced end to end (installed ambiently for the duration,
            worker snapshots merged back and re-parented under the
            ``study.run`` root span). Results are identical either way.
        faults: a :class:`~repro.faults.FaultPlan` (or injector, or
            plan dict) to run the study under — installed ambiently for
            the duration and shipped into workers. Damaged sessions are
            quarantined per application (see
            :attr:`StudyResult.quarantined`); transient faults are
            absorbed by the retry policy. Surviving sessions produce
            results identical to a fault-free run.
        retry: transient-failure policy for both the application
            fan-out and each engine's per-trace tasks (default: three
            attempts with exponential backoff).
        task_timeout: per-task result wait in seconds on pooled paths;
            a hung worker trips it and the work re-runs serially.
        warehouse: path of a study-warehouse SQLite file; after the
            study, the fused bundles this run left in the result cache
            are compacted into it as one queryable run (see
            :mod:`repro.warehouse`). Requires ``use_cache=True``; any
            warehouse failure warns and leaves the study result intact.
        warehouse_run_id: the run id warehouse rows are filed under;
            defaults to a deterministic ``study-<seed>-<config-fp>``.
    """
    config = config or StudyConfig()
    if obs is None:
        obs = obs_runtime.current()
    injector = _resolve_injector(faults)
    with faults_runtime.installed(
        injector if injector is not faults_runtime.current() else None
    ):
        with obs_runtime.installed(
            obs if obs is not obs_runtime.current() else None
        ):
            with obs_runtime.maybe_span(
                "study.run",
                applications=len(config.applications),
                sessions=config.sessions,
                scale=config.scale,
                workers=resolve_workers(workers),
            ) as root_span:
                task = functools.partial(
                    _analyze_app_task,
                    config=config,
                    cache_dir=(
                        str(cache_dir) if cache_dir is not None else None
                    ),
                    use_cache=use_cache,
                    obs_profile=(
                        (obs.profiler is not None) if obs is not None
                        else None
                    ),
                    retry=retry,
                    task_timeout=task_timeout,
                )
                outcomes = run_tasks(
                    task,
                    config.applications,
                    workers=workers,
                    timeout=task_timeout,
                    retry=retry,
                )
                root_id = root_span.span_id if root_span is not None else None
                results: Dict[str, AppResult] = {}
                for outcome in outcomes:
                    result, snapshot = outcome.value
                    if obs is not None:
                        obs.absorb(snapshot, parent_id=root_id)
                    results[result.name] = result
                    if progress:
                        stats = result.mean_stats
                        print(
                            f"  {result.name:<14s} "
                            f"traced={stats.traced:7.0f} "
                            f"perceptible={stats.perceptible:6.0f} "
                            f"patterns={stats.distinct_patterns:6.0f}"
                        )
                    if progress and result.quarantined:
                        for entry in result.quarantined:
                            print(f"    quarantined: {entry.describe()}")
            if warehouse is not None:
                _compact_into_warehouse(
                    warehouse, warehouse_run_id, config, cache_dir,
                    use_cache, progress,
                )
    return StudyResult(config=config, apps=results)


def _compact_into_warehouse(
    warehouse: Union[str, Path],
    run_id: Optional[str],
    config: StudyConfig,
    cache_dir: Optional[Union[str, Path]],
    use_cache: bool,
    progress: bool,
) -> None:
    """Compact this study's cache bundles into the study warehouse.

    Best-effort by design: the warehouse is a byproduct of the study,
    so every failure path warns (and counts
    ``warehouse.write_errors``) instead of raising — a full disk must
    not discard seven hours of analysis.
    """
    import warnings

    from repro.engine.cache import ResultCache, config_fingerprint
    from repro.warehouse import StudyWarehouse

    if not use_cache:
        warnings.warn(
            "run_study(warehouse=...) needs use_cache=True — the "
            "warehouse compacts the bundles the study leaves in the "
            "result cache; skipping warehouse update",
            RuntimeWarning,
            stacklevel=3,
        )
        return
    fingerprint = config_fingerprint(config.analysis_config())
    resolved_run = run_id or f"study-{config.seed}-{fingerprint[:8]}"
    try:
        store = StudyWarehouse(warehouse)
        store.record_run(
            resolved_run,
            label=f"seed={config.seed} sessions={config.sessions}"
            f" scale={config.scale}",
            source="bundles",
            config_fingerprint=fingerprint,
            threshold_ms=config.perceptible_threshold_ms,
        )
        counts = store.ingest_bundles(
            ResultCache(cache_dir),
            resolved_run,
            config_fingerprint=fingerprint,
            applications=config.applications,
        )
        if progress:
            print(
                f"  warehouse: run {resolved_run} "
                f"+{counts['ingested']} sessions "
                f"({counts['skipped']} already present)"
            )
    except Exception as error:  # degrade, never kill the study
        obs_runtime.count("warehouse.write_errors")
        warnings.warn(
            f"study warehouse update failed under {warehouse}: {error} — "
            f"study results are unaffected",
            RuntimeWarning,
            stacklevel=3,
        )
