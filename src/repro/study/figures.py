"""Datasets for the paper's figures, extracted from a study result.

Each ``figureN_data`` function reduces a :class:`StudyResult` to the
exact series the corresponding paper figure plots; the visualization
layer (:mod:`repro.viz`) renders them, and the benchmarks print them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.study.runner import StudyResult


def figure3_data(result: StudyResult) -> Dict[str, List[float]]:
    """Fig 3: cumulative distribution of episodes into patterns.

    Returns per-application curves: entry i is the percentage of
    episodes covered by the top i% of patterns (ranked by frequency).
    """
    return {app.name: app.pattern_cdf for app in result.ordered()}


def figure4_data(result: StudyResult) -> Dict[str, Dict[str, float]]:
    """Fig 4: pattern occurrence classes per application (percent)."""
    data = {}
    for app in result.ordered():
        data[app.name] = {
            occurrence.value: pct
            for occurrence, pct in app.occurrence.percentages().items()
        }
    return data


def figure5_data(
    result: StudyResult, perceptible_only: bool = True
) -> Dict[str, Dict[str, float]]:
    """Fig 5: trigger mix per application (percent of episodes).

    Args:
        perceptible_only: lower graph (perceptible episodes) when True,
            upper graph (all episodes) when False.
    """
    data = {}
    for app in result.ordered():
        summary = (
            app.triggers_perceptible if perceptible_only else app.triggers_all
        )
        data[app.name] = {
            trigger.value: pct
            for trigger, pct in summary.percentages().items()
        }
    return data


def figure6_data(
    result: StudyResult, perceptible_only: bool = True
) -> Dict[str, Dict[str, float]]:
    """Fig 6: location of episode time per application (percent)."""
    data = {}
    for app in result.ordered():
        summary = (
            app.location_perceptible if perceptible_only else app.location_all
        )
        data[app.name] = summary.percentages()
    return data


def figure7_data(
    result: StudyResult, perceptible_only: bool = True
) -> Dict[str, float]:
    """Fig 7: mean runnable threads during episodes per application."""
    data = {}
    for app in result.ordered():
        summary = (
            app.concurrency_perceptible
            if perceptible_only
            else app.concurrency_all
        )
        data[app.name] = summary.mean_runnable
    return data


def figure8_data(
    result: StudyResult, perceptible_only: bool = True
) -> Dict[str, Dict[str, float]]:
    """Fig 8: GUI-thread state split per application (percent of time)."""
    data = {}
    for app in result.ordered():
        summary = (
            app.threadstates_perceptible
            if perceptible_only
            else app.threadstates_all
        )
        data[app.name] = {
            state.value: pct
            for state, pct in summary.percentages().items()
        }
    return data
