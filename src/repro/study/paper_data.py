"""The numbers the paper reports, as data.

Used by the study harness and benchmarks to print paper-vs-measured
comparisons (EXPERIMENTS.md), and by tests to assert that the
reproduction preserves the paper's qualitative *shape* — who is worst,
what dominates, where the outliers are — without chasing exact values
measured on 2009 hardware.

All values transcribed from the paper (Tables I-III, Sections IV-A to
IV-E, Figures 3-8).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table III, one row per application:
#: (E2E s, In-Eps %, <3ms, >=3ms, >=100ms, Long/min, Dist, #Eps,
#:  One-Ep %, Descs, Depth)
TABLE3: Dict[str, Tuple[float, ...]] = {
    "Arabeske": (461, 25, 323605, 6278, 177, 95, 427, 5456, 62, 7, 5),
    "ArgoUML": (630, 35, 196247, 9066, 265, 75, 1292, 8011, 66, 10, 5),
    "CrosswordSage": (367, 8, 109547, 1173, 36, 80, 119, 1068, 46, 5, 4),
    "Euclide": (614, 35, 109572, 9676, 96, 26, 202, 9053, 35, 5, 4),
    "FindBugs": (599, 21, 39254, 6336, 120, 56, 245, 6128, 44, 6, 4),
    "FreeMind": (524, 11, 325135, 3462, 26, 30, 246, 3326, 55, 7, 5),
    "GanttProject": (523, 47, 126940, 2564, 706, 168, 803, 2373, 70, 18, 12),
    "JEdit": (502, 9, 117615, 2271, 24, 33, 150, 1610, 50, 5, 4),
    "JFreeChart": (250, 26, 77720, 1658, 175, 164, 114, 1581, 44, 6, 5),
    "JHotDraw": (421, 41, 246836, 5980, 338, 114, 454, 5675, 70, 8, 5),
    "JMol": (449, 46, 110929, 3197, 604, 180, 187, 3062, 52, 7, 5),
    "Laoe": (460, 47, 1241198, 3174, 61, 18, 226, 3007, 58, 8, 5),
    "NetBeans": (398, 27, 305177, 3120, 149, 82, 642, 2911, 66, 10, 5),
    "SwingSet": (384, 20, 219569, 4310, 70, 57, 444, 4152, 59, 6, 5),
}

#: Table III's cross-application mean row, same column order.
TABLE3_MEAN: Tuple[float, ...] = (
    470, 28, 253525, 4447, 203, 84, 396, 4101, 56, 8, 5,
)

TABLE3_COLUMNS: Tuple[str, ...] = (
    "e2e_s",
    "in_episode_pct",
    "below_filter",
    "traced",
    "perceptible",
    "long_per_min",
    "distinct_patterns",
    "covered_episodes",
    "singleton_pct",
    "mean_descendants",
    "mean_depth",
)

#: Section IV-C: mean trigger mix of *perceptible* episodes (percent).
PERCEPTIBLE_TRIGGER_MEAN = {
    "input": 40.0,
    "output": 47.0,
    "asynchronous": 7.0,
    # The remainder (~6%) is unspecified.
}

#: Section IV-C per-application callouts (percent of perceptible
#: episodes in the named trigger class).
TRIGGER_CALLOUTS = {
    "Arabeske": ("unspecified", 57.0),
    "JMol": ("output", 98.0),
    "ArgoUML": ("input", 78.0),
    "FindBugs": ("asynchronous", 42.0),
}

#: Section IV-D: mean location mix of perceptible lag (percent).
PERCEPTIBLE_LOCATION_MEAN = {
    "RT Library": 52.0,
    "Application": 48.0,
    "GC": 11.0,
    "Native": 5.0,
}

#: Section IV-D per-application callouts.
LOCATION_CALLOUTS = {
    "Arabeske": ("GC", 60.0),
    "ArgoUML": ("GC", 26.0),
    "JFreeChart": ("Native", 24.0),
    "Euclide": ("RT Library", 73.0),
    "JHotDraw": ("Application", 96.0),
}

#: ArgoUML's GC share over *all* episodes (Section IV-D).
ARGOUML_ALL_EPISODES_GC_PCT = 16.0

#: Section IV-E: mean runnable threads over all episodes.
MEAN_RUNNABLE_ALL_EPISODES = 1.2

#: The only applications with >1 mean runnable threads during
#: perceptible episodes (Section IV-E).
CONCURRENT_APPS = ("Arabeske", "FindBugs", "NetBeans")

#: Section IV-E callouts on Figure 8 (percent of perceptible episode
#: time in the named state).
THREADSTATE_CALLOUTS = {
    "JEdit": ("waiting", 25.0),
    "FreeMind": ("blocked", 12.0),
    "Euclide": ("sleeping", 60.0),
}

#: Figure 4 callouts: percent of patterns in the named occurrence class.
OCCURRENCE_CALLOUTS = {
    "GanttProject": ("always", 57.0),
    "FreeMind": ("never", 92.0),
}

#: Figure 4 aggregates: mean percent of patterns that are consistently
#: fast-or-slow, and mean percent ever perceptible.
OCCURRENCE_CONSISTENT_PCT = 96.0
OCCURRENCE_EVER_PERCEPTIBLE_PCT = 22.0

#: Figure 3: the pattern distribution follows the Pareto rule — roughly
#: 80% of episodes covered by 20% of patterns.
PARETO_PATTERN_PCT = 20.0
PARETO_EPISODE_PCT = 80.0

#: Study scale facts (Section IV intro).
TOTAL_SESSION_HOURS = 7.5
TOTAL_EPISODES_APPROX = 250_000

#: Singleton patterns hold ~10% of episodes despite being 56% of
#: patterns (Section IV-A).
SINGLETON_EPISODE_PCT = 10.0
