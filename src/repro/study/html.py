"""A self-contained HTML study report.

Bundles everything the study produces — Table III, all figure SVGs
(inlined, no external files), and the per-application pattern summaries
— into one HTML page a developer can open or attach to a bug report.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import List, Union

from repro.study import figures
from repro.study.runner import StudyResult
from repro.study.tables import format_table2, format_table3
from repro.viz.charts import (
    render_cdf_chart,
    render_dot_chart,
    render_stacked_bars,
)
from repro.viz.colors import (
    LOCATION_COLORS,
    OCCURRENCE_COLORS,
    THREADSTATE_COLORS,
    TRIGGER_COLORS,
)

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 1080px; color: #222; }
h1 { border-bottom: 2px solid #4e79a7; padding-bottom: 0.2em; }
h2 { margin-top: 2em; color: #33506e; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto;
      font-size: 12px; border-radius: 4px; }
figure { margin: 1.5em 0; }
figcaption { color: #666; font-size: 13px; margin-top: 0.4em; }
.note { background: #fff8e1; border-left: 4px solid #edc948;
        padding: 0.6em 1em; font-size: 14px; }
"""


def _figure_block(svg_doc, caption: str) -> str:
    return (
        f"<figure>{svg_doc.to_string()}"
        f"<figcaption>{escape(caption)}</figcaption></figure>"
    )


def render_html_report(result: StudyResult) -> str:
    """The complete study as one HTML page."""
    config = result.config
    parts: List[str] = []
    parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    parts.append("<title>LagAlyzer characterization study</title>")
    parts.append(f"<style>{_STYLE}</style></head><body>")
    parts.append("<h1>LagAlyzer characterization study</h1>")
    parts.append(
        f"<p class='note'>{config.sessions} session(s) per application at "
        f"scale {config.scale}, seed {config.seed}, perceptibility "
        f"threshold {config.perceptible_threshold_ms:.0f}&nbsp;ms. "
        f"Simulated substrate — compare shapes, not absolute values "
        f"(see DESIGN.md).</p>"
    )

    parts.append("<h2>Applications (Table II)</h2>")
    parts.append(f"<pre>{escape(format_table2())}</pre>")

    parts.append("<h2>Overall statistics (Table III)</h2>")
    table3 = format_table3(
        [app.mean_stats for app in result.ordered()], result.mean_stats
    )
    parts.append(f"<pre>{escape(table3)}</pre>")

    parts.append("<h2>Patterns (Figures 3 and 4)</h2>")
    parts.append(
        _figure_block(
            render_cdf_chart(figures.figure3_data(result)),
            "Figure 3: cumulative distribution of episodes into patterns "
            "(Pareto: most episodes concentrate in few patterns).",
        )
    )
    parts.append(
        _figure_block(
            render_stacked_bars(
                figures.figure4_data(result),
                OCCURRENCE_COLORS,
                "Long-latency episodes in patterns",
                x_label="Patterns [%]",
            ),
            "Figure 4: patterns by occurrence class.",
        )
    )

    captioned = (
        (
            "Figure 5: triggers of episodes",
            lambda perceptible: render_stacked_bars(
                figures.figure5_data(result, perceptible_only=perceptible),
                TRIGGER_COLORS,
                "Triggers",
                x_label="Episodes [%]",
            ),
        ),
        (
            "Figure 6: location of episode time",
            lambda perceptible: render_stacked_bars(
                figures.figure6_data(result, perceptible_only=perceptible),
                LOCATION_COLORS,
                "Location",
                x_label="Episodes - Time [%]",
                x_max=200.0,
            ),
        ),
        (
            "Figure 7: concurrency",
            lambda perceptible: render_dot_chart(
                figures.figure7_data(result, perceptible_only=perceptible),
                "Runnable threads",
            ),
        ),
        (
            "Figure 8: synchronization and sleep",
            lambda perceptible: render_stacked_bars(
                figures.figure8_data(result, perceptible_only=perceptible),
                THREADSTATE_COLORS,
                "GUI-thread states",
                x_label="Episodes - Time [%]",
            ),
        ),
    )
    for caption, build in captioned:
        parts.append(f"<h2>{escape(caption)}</h2>")
        parts.append(_figure_block(build(False), f"{caption} — all episodes."))
        parts.append(
            _figure_block(build(True), f"{caption} — perceptible episodes.")
        )

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    result: StudyResult, path: Union[str, Path]
) -> Path:
    """Write :func:`render_html_report` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(result), encoding="utf-8")
    return path
