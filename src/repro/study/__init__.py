"""The characterization-study harness.

Runs the paper's methodology end to end: four simulated sessions for
each of the 14 applications, then every analysis of Section IV —
Table III and Figures 3 through 8 — and renders the corresponding
charts. :mod:`repro.study.paper_data` carries the numbers the paper
reports so the harness can print paper-vs-measured for every statistic.
"""

from repro.study.runner import (
    AppResult,
    StudyConfig,
    StudyResult,
    analyze_app,
    run_study,
)
from repro.study.tables import format_table1, format_table2, format_table3
from repro.study.figures import (
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    figure7_data,
    figure8_data,
)

__all__ = [
    "AppResult",
    "StudyConfig",
    "StudyResult",
    "analyze_app",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "figure8_data",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_study",
]
