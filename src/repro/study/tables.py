"""Text renderings of the paper's tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.intervals import IntervalKind
from repro.core.statistics import SessionStats
from repro.apps.catalog import table2_rows

#: Table I descriptions, keyed by interval kind.
_TABLE1_DESCRIPTIONS = {
    IntervalKind.DISPATCH: "Start to end of a given episode",
    IntervalKind.LISTENER: "A listener notification call",
    IntervalKind.PAINT: "A graphics rendering operation",
    IntervalKind.NATIVE: "A JNI native call",
    IntervalKind.ASYNC: "The handling of an event posted in a background thread",
    IntervalKind.GC: "A garbage collection",
}


def format_table1() -> str:
    """Table I: interval types.

    The paper's table lists the six gui-family kinds; the workload
    family extensions (request/iowait/stage) are not part of Table I.
    """
    lines = [f"{'Name':<10s} Description", "-" * 66]
    for kind in IntervalKind:
        if kind not in _TABLE1_DESCRIPTIONS:
            continue
        name = kind.value.capitalize() if kind is not IntervalKind.GC else "GC"
        lines.append(f"{name:<10s} {_TABLE1_DESCRIPTIONS[kind]}")
    return "\n".join(lines)


def format_table2() -> str:
    """Table II: the application suite."""
    lines = [
        f"{'Application':<15s} {'Version':<10s} {'Classes':>8s}  Description",
        "-" * 70,
    ]
    for name, version, classes, description in table2_rows():
        lines.append(
            f"{name:<15s} {version:<10s} {classes:>8d}  {description}"
        )
    return "\n".join(lines)


_TABLE3_HEADER = (
    f"{'Benchmarks':<15s}"
    f"{'E2E[s]':>8s}{'In-Eps%':>9s}"
    f"{'<3ms':>10s}{'>=3ms':>8s}{'>=100ms':>9s}{'Long/min':>10s}"
    f"{'Dist':>7s}{'#Eps':>7s}{'One-Ep%':>9s}{'Descs':>7s}{'Depth':>7s}"
)


def format_table3_row(stats: SessionStats) -> str:
    """One formatted Table III row."""
    return (
        f"{stats.application:<15s}"
        f"{stats.e2e_s:>8.0f}{stats.in_episode_pct:>9.0f}"
        f"{stats.below_filter:>10.0f}{stats.traced:>8.0f}"
        f"{stats.perceptible:>9.0f}{stats.long_per_min:>10.0f}"
        f"{stats.distinct_patterns:>7.0f}{stats.covered_episodes:>7.0f}"
        f"{stats.singleton_pct:>9.0f}{stats.mean_descendants:>7.0f}"
        f"{stats.mean_depth:>7.0f}"
    )


def format_table3(
    rows: Sequence[SessionStats], mean: Optional[SessionStats] = None
) -> str:
    """Table III: overall statistics, one row per application."""
    lines: List[str] = [_TABLE3_HEADER, "-" * len(_TABLE3_HEADER)]
    for stats in rows:
        lines.append(format_table3_row(stats))
    if mean is not None:
        lines.append("-" * len(_TABLE3_HEADER))
        lines.append(format_table3_row(mean))
    return "\n".join(lines)
