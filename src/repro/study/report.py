"""Study outputs: figure SVGs and the EXPERIMENTS.md comparison report."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.core.samples import ThreadState
from repro.core.triggers import Trigger
from repro.study import figures, paper_data
from repro.study.runner import StudyResult
from repro.study.tables import format_table3_row
from repro.viz.charts import (
    render_cdf_chart,
    render_dot_chart,
    render_stacked_bars,
)
from repro.viz.colors import (
    LOCATION_COLORS,
    OCCURRENCE_COLORS,
    THREADSTATE_COLORS,
    TRIGGER_COLORS,
)


def render_figures(result: StudyResult, outdir: Union[str, Path]) -> List[Path]:
    """Render Figures 3-8 (both graphs where the paper shows two)."""
    outdir = Path(outdir)
    written: List[Path] = []

    fig3 = render_cdf_chart(figures.figure3_data(result))
    written.append(fig3.save(outdir / "fig3_pattern_cdf.svg"))

    fig4 = render_stacked_bars(
        figures.figure4_data(result),
        OCCURRENCE_COLORS,
        "Long-latency episodes in patterns",
        x_label="Patterns [%]",
    )
    written.append(fig4.save(outdir / "fig4_occurrence.svg"))

    for perceptible, suffix, label in (
        (False, "all", "Episodes [%]"),
        (True, "perceptible", "Episodes >100ms [%]"),
    ):
        fig5 = render_stacked_bars(
            figures.figure5_data(result, perceptible_only=perceptible),
            TRIGGER_COLORS,
            f"Triggers of episodes ({suffix})",
            x_label=label,
        )
        written.append(fig5.save(outdir / f"fig5_triggers_{suffix}.svg"))

        fig6 = render_stacked_bars(
            figures.figure6_data(result, perceptible_only=perceptible),
            LOCATION_COLORS,
            f"Location of episode time ({suffix})",
            x_label=label.replace("Episodes", "Episodes - Time"),
            x_max=200.0,
        )
        written.append(fig6.save(outdir / f"fig6_location_{suffix}.svg"))

        fig7 = render_dot_chart(
            figures.figure7_data(result, perceptible_only=perceptible),
            f"Concurrency in episodes ({suffix})",
        )
        written.append(fig7.save(outdir / f"fig7_concurrency_{suffix}.svg"))

        fig8 = render_stacked_bars(
            figures.figure8_data(result, perceptible_only=perceptible),
            THREADSTATE_COLORS,
            f"Synchronization and sleep during episodes ({suffix})",
            x_label=label.replace("Episodes", "Episodes - Time"),
            x_max=100.0,
        )
        written.append(fig8.save(outdir / f"fig8_threadstates_{suffix}.svg"))
    return written


def _pct(value: float) -> str:
    return f"{value:.0f}%"


def write_experiments_md(
    result: StudyResult, path: Union[str, Path]
) -> Path:
    """Write the paper-vs-measured record for every table and figure."""
    lines: List[str] = []
    config = result.config
    lines.append("# EXPERIMENTS — paper vs. measured")
    lines.append("")
    lines.append(
        f"Study configuration: {config.sessions} session(s) per application, "
        f"scale={config.scale}, seed={config.seed}, perceptibility "
        f"threshold {config.perceptible_threshold_ms:.0f} ms."
    )
    lines.append("")
    lines.append(
        "Measured values come from the simulated substrate (see DESIGN.md "
        "substitutions); the claim being reproduced is the *shape* of each "
        "result — orderings, dominant categories, outliers — not the exact "
        "values measured on the paper's 2009 hardware."
    )

    # ------------------------------------------------------------------
    # Table III
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Table III — overall statistics")
    lines.append("")
    lines.append("Paper values in parentheses under each measured row.")
    lines.append("")
    lines.append("```")
    for app in result.ordered():
        stats = app.mean_stats
        lines.append(format_table3_row(stats))
        paper = paper_data.TABLE3[app.name]
        paper_text = (
            f"{'(paper)':<15s}"
            f"{paper[0]:>8.0f}{paper[1]:>9.0f}{paper[2]:>10.0f}"
            f"{paper[3]:>8.0f}{paper[4]:>9.0f}{paper[5]:>10.0f}"
            f"{paper[6]:>7.0f}{paper[7]:>7.0f}{paper[8]:>9.0f}"
            f"{paper[9]:>7.0f}{paper[10]:>7.0f}"
        )
        lines.append(paper_text)
    mean = result.mean_stats
    lines.append(format_table3_row(mean))
    paper_mean = paper_data.TABLE3_MEAN
    lines.append(
        f"{'(paper mean)':<15s}"
        f"{paper_mean[0]:>8.0f}{paper_mean[1]:>9.0f}{paper_mean[2]:>10.0f}"
        f"{paper_mean[3]:>8.0f}{paper_mean[4]:>9.0f}{paper_mean[5]:>10.0f}"
        f"{paper_mean[6]:>7.0f}{paper_mean[7]:>7.0f}{paper_mean[8]:>9.0f}"
        f"{paper_mean[9]:>7.0f}{paper_mean[10]:>7.0f}"
    )
    lines.append("```")

    # ------------------------------------------------------------------
    # Figure 3
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 3 — cumulative distribution of episodes into patterns")
    lines.append("")
    lines.append(
        "| Application | Episodes covered by top 20% of patterns | Paper |"
    )
    lines.append("|---|---|---|")
    for app in result.ordered():
        at20 = app.pattern_cdf[20] if len(app.pattern_cdf) > 20 else 0.0
        lines.append(f"| {app.name} | {_pct(at20)} | ~80% (Pareto rule) |")

    # ------------------------------------------------------------------
    # Figure 4
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 4 — occurrence classes of patterns")
    lines.append("")
    lines.append(
        "| Application | Always | Sometimes | Once | Never | Paper callout |"
    )
    lines.append("|---|---|---|---|---|---|")
    for app in result.ordered():
        pct = app.occurrence.percentages()
        callout = paper_data.OCCURRENCE_CALLOUTS.get(app.name)
        note = f"{callout[0]} = {callout[1]:.0f}%" if callout else ""
        from repro.core.occurrence import Occurrence

        lines.append(
            f"| {app.name} | {_pct(pct[Occurrence.ALWAYS])} "
            f"| {_pct(pct[Occurrence.SOMETIMES])} "
            f"| {_pct(pct[Occurrence.ONCE])} "
            f"| {_pct(pct[Occurrence.NEVER])} | {note} |"
        )
    consistent = sum(
        app.occurrence.consistent_fraction for app in result.ordered()
    ) / len(result.apps)
    ever = sum(
        app.occurrence.ever_perceptible_fraction for app in result.ordered()
    ) / len(result.apps)
    lines.append("")
    lines.append(
        f"Mean consistently-fast-or-slow: measured {_pct(100 * consistent)} "
        f"(paper {paper_data.OCCURRENCE_CONSISTENT_PCT:.0f}%); mean ever-"
        f"perceptible: measured {_pct(100 * ever)} "
        f"(paper {paper_data.OCCURRENCE_EVER_PERCEPTIBLE_PCT:.0f}%)."
    )

    # ------------------------------------------------------------------
    # Figure 5
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 5 — triggers of perceptible episodes")
    lines.append("")
    lines.append(
        "| Application | Input | Output | Async | Unspecified | Paper callout |"
    )
    lines.append("|---|---|---|---|---|---|")
    mean_acc: Dict[Trigger, float] = {t: 0.0 for t in Trigger}
    for app in result.ordered():
        pct = app.triggers_perceptible.percentages()
        for trigger in Trigger:
            mean_acc[trigger] += pct[trigger]
        callout = paper_data.TRIGGER_CALLOUTS.get(app.name)
        note = f"{callout[0]} = {callout[1]:.0f}%" if callout else ""
        lines.append(
            f"| {app.name} | {_pct(pct[Trigger.INPUT])} "
            f"| {_pct(pct[Trigger.OUTPUT])} | {_pct(pct[Trigger.ASYNC])} "
            f"| {_pct(pct[Trigger.UNSPECIFIED])} | {note} |"
        )
    n = len(result.apps)
    lines.append("")
    lines.append(
        f"Mean of perceptible episodes: input {_pct(mean_acc[Trigger.INPUT] / n)}, "
        f"output {_pct(mean_acc[Trigger.OUTPUT] / n)}, "
        f"async {_pct(mean_acc[Trigger.ASYNC] / n)} "
        f"(paper: 40% / 47% / 7%)."
    )

    # ------------------------------------------------------------------
    # Figure 6
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 6 — location of perceptible lag")
    lines.append("")
    lines.append(
        "| Application | Application | RT Library | GC | Native | Paper callout |"
    )
    lines.append("|---|---|---|---|---|---|")
    acc = {"Application": 0.0, "RT Library": 0.0, "GC": 0.0, "Native": 0.0}
    for app in result.ordered():
        pct = app.location_perceptible.percentages()
        for key in acc:
            acc[key] += pct[key]
        callout = paper_data.LOCATION_CALLOUTS.get(app.name)
        note = f"{callout[0]} = {callout[1]:.0f}%" if callout else ""
        lines.append(
            f"| {app.name} | {_pct(pct['Application'])} "
            f"| {_pct(pct['RT Library'])} | {_pct(pct['GC'])} "
            f"| {_pct(pct['Native'])} | {note} |"
        )
    lines.append("")
    mean_line = (
        f"Mean: app {_pct(acc['Application'] / n)} / "
        f"lib {_pct(acc['RT Library'] / n)} / gc {_pct(acc['GC'] / n)} / "
        f"native {_pct(acc['Native'] / n)} (paper: 48% / 52% / 11% / 5%)."
    )
    if "ArgoUML" in result.apps:
        argouml_gc = result.apps["ArgoUML"].location_all.percentages()["GC"]
        mean_line += (
            f" ArgoUML over all episodes: GC {_pct(argouml_gc)} "
            f"(paper {paper_data.ARGOUML_ALL_EPISODES_GC_PCT:.0f}%)."
        )
    lines.append(mean_line)

    # ------------------------------------------------------------------
    # Figure 7
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 7 — concurrency (mean runnable threads)")
    lines.append("")
    lines.append("| Application | All episodes | Perceptible | >1 in paper? |")
    lines.append("|---|---|---|---|")
    for app in result.ordered():
        concurrent = "yes" if app.name in paper_data.CONCURRENT_APPS else ""
        lines.append(
            f"| {app.name} | {app.concurrency_all.mean_runnable:.2f} "
            f"| {app.concurrency_perceptible.mean_runnable:.2f} "
            f"| {concurrent} |"
        )

    # ------------------------------------------------------------------
    # Figure 8
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Figure 8 — synchronization and sleep (perceptible)")
    lines.append("")
    lines.append(
        "| Application | Blocked | Waiting | Sleeping | Paper callout |"
    )
    lines.append("|---|---|---|---|---|")
    for app in result.ordered():
        pct = app.threadstates_perceptible.percentages()
        callout = paper_data.THREADSTATE_CALLOUTS.get(app.name)
        note = f"{callout[0]} > {callout[1]:.0f}%" if callout else ""
        lines.append(
            f"| {app.name} | {_pct(pct[ThreadState.BLOCKED])} "
            f"| {_pct(pct[ThreadState.WAITING])} "
            f"| {_pct(pct[ThreadState.SLEEPING])} | {note} |"
        )

    # ------------------------------------------------------------------
    # Known deviations
    # ------------------------------------------------------------------
    lines.append("")
    lines.append("## Known deviations from the paper")
    lines.append("")
    lines.append(
        "- **Descs/Depth magnitudes.** GanttProject's mean interval-tree "
        "size and depth (paper: 18 / 12) are underrepresented: the paper's "
        "deepest component hierarchies exceed what the synthetic component "
        "trees model, though GanttProject remains the structural maximum "
        "of the suite as in the paper."
    )
    lines.append(
        "- **Absolute GC/native shares.** GC and native fractions of "
        "perceptible lag track the paper's outliers (Arabeske's explicit "
        "collections, JFreeChart's native rendering) but run a few points "
        "low on average — pause costs and JNI call rates of the 2009 "
        "Apple JVM are approximated, not measured."
    )
    lines.append(
        "- **Per-application cause bars.** Which *specific* non-outlier "
        "application shows a given small synchronization bar is sensitive "
        "to which templates the calibrated slow set lands on; the paper's "
        "named outliers (jEdit waits, FreeMind contention, Euclide sleeps) "
        "are reproduced by construction of their mechanisms."
    )
    lines.append(
        "- **Timing noise.** All counts vary a few percent run to run with "
        "the seed; the committed numbers use the default seed "
        f"({result.config.seed})."
    )

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
