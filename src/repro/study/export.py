"""Study datasets as CSV, for external plotting tools.

The figures ship as SVG, but anyone comparing against this reproduction
(or replotting in their own toolchain) wants the underlying series.
This module writes one CSV per table/figure from a
:class:`~repro.study.runner.StudyResult`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.study import figures
from repro.study.paper_data import TABLE3_COLUMNS
from repro.study.runner import StudyResult


def _write_csv(path: Path, header: List[str], rows: List[List]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def write_study_csvs(
    result: StudyResult, outdir: Union[str, Path]
) -> List[Path]:
    """Write table3.csv and one fig*.csv per figure; returns the paths."""
    outdir = Path(outdir)
    written: List[Path] = []

    # Table III.
    rows = []
    for app in result.ordered():
        stats = app.mean_stats
        rows.append([stats.application] + [
            stats.as_dict()[column] for column in TABLE3_COLUMNS
        ])
    mean = result.mean_stats
    rows.append([mean.application] + [
        mean.as_dict()[column] for column in TABLE3_COLUMNS
    ])
    written.append(
        _write_csv(
            outdir / "table3.csv",
            ["application"] + list(TABLE3_COLUMNS),
            rows,
        )
    )

    # Figure 3: one column per application, 101 rows (pattern %).
    fig3 = figures.figure3_data(result)
    apps = list(fig3)
    rows = [
        [i] + [fig3[app][i] for app in apps] for i in range(101)
    ]
    written.append(
        _write_csv(outdir / "fig3.csv", ["patterns_pct"] + apps, rows)
    )

    # Figures 4-8: long format (application, scope, category, value).
    def stacked(name, data_fn, has_scopes=True):
        rows = []
        scopes = (False, True) if has_scopes else (True,)
        for perceptible in scopes:
            data = data_fn(result, perceptible) if has_scopes else (
                data_fn(result)
            )
            scope = "perceptible" if perceptible else "all"
            for app, categories in data.items():
                for category, value in categories.items():
                    rows.append([app, scope, category, value])
        return _write_csv(
            outdir / name,
            ["application", "scope", "category", "value"],
            rows,
        )

    written.append(
        _write_csv(
            outdir / "fig4.csv",
            ["application", "category", "value"],
            [
                [app, category, value]
                for app, categories in figures.figure4_data(result).items()
                for category, value in categories.items()
            ],
        )
    )
    written.append(
        stacked("fig5.csv", lambda r, p: figures.figure5_data(r, p))
    )
    written.append(
        stacked("fig6.csv", lambda r, p: figures.figure6_data(r, p))
    )
    fig7_rows = []
    for perceptible in (False, True):
        scope = "perceptible" if perceptible else "all"
        for app, value in figures.figure7_data(result, perceptible).items():
            fig7_rows.append([app, scope, value])
    written.append(
        _write_csv(
            outdir / "fig7.csv",
            ["application", "scope", "mean_runnable"],
            fig7_rows,
        )
    )
    written.append(
        stacked("fig8.csv", lambda r, p: figures.figure8_data(r, p))
    )
    return written
