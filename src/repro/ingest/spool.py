"""Per-session spool files: the durable side of the ingest daemon.

A spool is an ordinary LiLa *text* trace file grown by appends. The
daemon writes exactly the record lines a client shipped (header
included), one line at a time, flushing after every batch — so at any
moment the spool is a plain ``.lila`` file that
:func:`repro.lila.source.open_source` reads like any other trace. A
client that disconnected mid-stream leaves everything it got acked
on disk; nothing about the spool format says "partial".

Spool files are named ``{application}-{session}.lila`` with both parts
sanitized to a filesystem-safe alphabet, so a hostile session id cannot
escape the spool directory.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Optional, Sequence, Union

#: Characters allowed verbatim in a spool file name component.
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(part: str, fallback: str) -> str:
    cleaned = _UNSAFE.sub("_", part).strip("._")
    return cleaned or fallback


def spool_name(session: str, application: str = "") -> str:
    """The spool file name for one session."""
    app = _sanitize(application, "app")
    sess = _sanitize(session, "session")
    return f"{app}-{sess}.lila"


class SessionSpool:
    """Append-only LiLa text spool for one ingest session.

    Thread-safe: the daemon's flush thread and an END handler may both
    append (never concurrently for the same batch, but the lock makes
    the file position safe regardless).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        session: str,
        application: str = "",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.session = session
        self.application = application
        self.path = self.directory / spool_name(session, application)
        self._lock = threading.Lock()
        self._file: Optional[object] = None
        #: Record lines durably appended so far.
        self.lines_written = 0

    def _handle(self) -> object:
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
        return self._file

    def append(self, lines: Sequence[str]) -> int:
        """Append record lines (newline-terminated) and flush; count written."""
        if not lines:
            return 0
        with self._lock:
            handle = self._handle()
            for line in lines:
                handle.write(line)
                handle.write("\n")
            handle.flush()
            self.lines_written += len(lines)
        return len(lines)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "SessionSpool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"SessionSpool({str(self.path)!r}, "
            f"{self.lines_written} lines)"
        )
