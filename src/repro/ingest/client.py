"""The trace client: batches, compresses, and ships record lines.

:class:`TraceClient` is the instrumented half the application embeds: a
bounded in-memory queue of compressed batches drained by one background
sender thread. The calling thread only ever appends to the current
batch — compression happens at batch-seal time, socket I/O in the
sender — so instrumented code pays microseconds per record.

Memory is bounded twice: batches are sealed at ``batch_records`` lines,
and at most ``max_pending_batches`` sealed batches wait in the queue.
What happens at the bound is the ``overflow`` policy: ``"block"``
(default — the zero-loss mode; the caller waits for the queue to
drain) or ``"drop"`` (the graceful-degradation mode; the oldest
pending batch is discarded and counted in :attr:`dropped_batches` /
:attr:`dropped_records`).

Backpressure: a ``backpressure:`` nack from the daemon makes the sender
sleep ``max(server hint, RetryPolicy backoff)`` and redeliver the same
seq — the backoff curve (and its deterministic jitter) is exactly the
engine scheduler's :class:`~repro.engine.scheduler.RetryPolicy`, keyed
by ``(session, seq)``. Redelivery is idempotent: the daemon acks
duplicates without re-spooling. With ``max_retries`` set, a batch that
keeps getting nacked is eventually dropped with its counter bumped;
unset (default) the sender blocks for as long as the daemon pushes
back.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from repro.core.errors import LagAlyzerError
from repro.engine.scheduler import RetryPolicy
from repro.ingest import protocol
from repro.obs import runtime as obs_runtime
from repro.obs.context import TraceContext, carrier_span

#: Backoff curve for nacked deliveries (deterministic jitter).
DEFAULT_RETRY = RetryPolicy(
    max_attempts=1, base_delay_s=0.01, max_delay_s=0.5,
    backoff_factor=2.0, jitter=0.5,
)


class IngestClientError(LagAlyzerError):
    """The client failed hard (protocol error, daemon rejected us)."""


class _Batch:
    __slots__ = ("seq", "payload", "records", "attempts", "context")

    def __init__(
        self,
        seq: int,
        payload: bytes,
        records: int,
        context: Optional[TraceContext] = None,
    ) -> None:
        self.seq = seq
        self.payload = payload
        self.records = records
        self.attempts = 0
        self.context = context


_END = object()


class TraceClient:
    """Ships LiLa record lines to an :class:`~repro.ingest.server.IngestServer`.

    Args:
        address: the daemon's ``(host, port)``.
        session: session id (the daemon's spool/dedup key).
        application: application name recorded in the spool name.
        batch_records: lines per sealed batch.
        max_pending_batches: sealed batches the queue holds before the
            ``overflow`` policy applies.
        overflow: ``"block"`` (lossless) or ``"drop"`` (lossy, counted).
        max_retries: per-batch delivery attempts before dropping;
            ``None`` retries forever (lossless under backpressure).
        retry: backoff policy for nacked deliveries.
        timeout_s: socket timeout for connects, sends, and ack waits.
        propagate: carry a trace context in HELLO/BATCH frames so the
            daemon's spans parent under this client's send spans
            (effective only while an observer is installed).
        sample_rate: fraction of sessions whose batches carry context —
            a **deterministic** decision derived from
            ``(sample_seed, session)``, not a random draw, so repeated
            runs sample identically.
        sample_seed: seed for the sampling decision and the trace id.
        family: workload family announced in HELLO (``"gui"``,
            ``"io_service"``, ``"async_pipeline"``); gui omits the key,
            keeping the frame byte-identical to pre-family clients.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        session: str,
        application: str = "",
        batch_records: int = 256,
        max_pending_batches: int = 64,
        overflow: str = "block",
        max_retries: Optional[int] = None,
        retry: RetryPolicy = DEFAULT_RETRY,
        timeout_s: float = 10.0,
        propagate: bool = True,
        sample_rate: float = 1.0,
        sample_seed: int = 0,
        family: str = "gui",
    ) -> None:
        if overflow not in ("block", "drop"):
            raise IngestClientError(
                f"overflow must be 'block' or 'drop', got {overflow!r}"
            )
        self.address = address
        self.session = session
        self.application = application
        self.family = family
        self.batch_records = max(1, int(batch_records))
        self.max_pending_batches = max(1, int(max_pending_batches))
        self.overflow = overflow
        self.max_retries = max_retries
        self.retry = retry
        self.timeout_s = timeout_s
        self.propagate = bool(propagate)
        self.trace_context = TraceContext.mint(
            session, seed=sample_seed, sample_rate=sample_rate
        )

        self._cond = threading.Condition()
        self._pending: Deque[object] = deque()
        self._current: List[str] = []
        self._seq = 0
        self._closing = False
        self._done = threading.Event()
        self._failure: Optional[BaseException] = None
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._sender: Optional[threading.Thread] = None

        # -- counters (read them after close()) -----------------------
        self.records_enqueued = 0
        self.batches_sent = 0
        self.records_sent = 0
        self.nacks_received = 0
        self.retries = 0
        self.reconnects = 0
        self.dropped_batches = 0
        self.dropped_records = 0

    # ------------------------------------------------------------------
    # Producer API (the instrumented application's thread)
    # ------------------------------------------------------------------

    def send_line(self, line: str) -> None:
        """Buffer one record line; seals and enqueues full batches."""
        self._check_usable()
        self._current.append(line.rstrip("\n"))
        self.records_enqueued += 1
        if len(self._current) >= self.batch_records:
            self._seal()

    def extend(self, lines: Iterable[str]) -> None:
        """Buffer many record lines."""
        for line in lines:
            self.send_line(line)

    def flush(self) -> None:
        """Seal the current partial batch, if any."""
        self._check_usable()
        if self._current:
            self._seal()

    def _check_usable(self) -> None:
        if self._closing:
            raise IngestClientError("client is closed")
        if self._failure is not None:
            raise IngestClientError(
                f"client failed: {self._failure}"
            ) from self._failure

    def _propagating(self) -> bool:
        """Whether batches sealed now should carry a trace context."""
        return (
            self.propagate
            and self.trace_context.sampled
            and obs_runtime.current() is not None
        )

    def _seal(self) -> None:
        lines = self._current
        self._current = []
        self._seq += 1
        context = (
            self.trace_context.child() if self._propagating() else None
        )
        payload = protocol.encode_batch(
            lines, context=context.to_dict() if context else None
        )
        batch = _Batch(self._seq, payload, len(lines), context=context)
        with self._cond:
            while (
                self.overflow == "block"
                and self._queued_batches() >= self.max_pending_batches
                and self._failure is None
            ):
                self._cond.wait(timeout=0.1)
            if self._failure is not None:
                return  # close() will surface the failure
            if (
                self.overflow == "drop"
                and self._queued_batches() >= self.max_pending_batches
            ):
                victim = self._oldest_batch()
                if victim is not None:
                    self.dropped_batches += 1
                    self.dropped_records += victim.records
                    obs_runtime.count("ingest.client.dropped_records",
                                      victim.records)
            self._pending.append(batch)
            obs_runtime.set_gauge(
                "ingest.client.queue_depth", self._queued_batches()
            )
            self._cond.notify_all()
        self._ensure_sender()

    def _queued_batches(self) -> int:
        return sum(1 for item in self._pending if isinstance(item, _Batch))

    def _oldest_batch(self) -> Optional[_Batch]:
        for item in list(self._pending):
            if isinstance(item, _Batch):
                self._pending.remove(item)
                return item
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Flush everything, send END, and wait for the daemon's ack.

        Raises:
            IngestClientError: the sender failed hard and records were
                not delivered.
        """
        if self._closing:
            return
        if self._current and self._failure is None:
            self._seal()
        self._closing = True
        with self._cond:
            self._pending.append(_END)
            self._cond.notify_all()
        self._ensure_sender()
        self._done.wait(
            timeout=self.timeout_s * 4 if timeout_s is None else timeout_s
        )
        if self._failure is not None:
            raise IngestClientError(
                f"ingest client failed: {self._failure}"
            ) from self._failure

    def __enter__(self) -> "TraceClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is None:
            self.close()
        return False

    # ------------------------------------------------------------------
    # Sender thread
    # ------------------------------------------------------------------

    def _ensure_sender(self) -> None:
        if self._sender is None or not self._sender.is_alive():
            if self._failure is not None or self._done.is_set():
                return
            self._sender = threading.Thread(
                target=self._sender_loop,
                name=f"ingest-client-{self.session}",
                daemon=True,
            )
            self._sender.start()

    def _connect(self) -> None:
        self._disconnect()
        sock = socket.create_connection(self.address, timeout=self.timeout_s)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        hello_context = (
            self.trace_context.to_dict() if self._propagating() else None
        )
        protocol.write_frame(
            self._wfile, protocol.T_HELLO, 0,
            protocol.encode_hello(
                self.session, self.application, context=hello_context,
                family=self.family,
            ),
        )
        reply = protocol.read_frame(self._rfile)
        if reply is None or reply.type != protocol.T_ACK:
            raise IngestClientError(
                "daemon did not ack HELLO"
                if reply is None
                else f"daemon answered HELLO with {reply.name}: "
                     f"{reply.payload.decode('utf-8', 'replace')}"
            )

    def _disconnect(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = self._wfile = self._sock = None

    def _sender_loop(self) -> None:
        try:
            while True:
                with self._cond:
                    while not self._pending:
                        self._cond.wait(timeout=0.1)
                    item = self._pending[0]
                if item is _END:
                    self._deliver_end()
                    with self._cond:
                        self._pending.popleft()
                    break
                self._deliver(item)  # drops or delivers; never raises
                with self._cond:
                    self._pending.popleft()
                    obs_runtime.set_gauge(
                        "ingest.client.queue_depth", self._queued_batches()
                    )
                    self._cond.notify_all()
        except BaseException as error:  # noqa: BLE001 - surfaced at close
            self._fail(error)
        finally:
            self._disconnect()
            self._done.set()
            with self._cond:
                self._cond.notify_all()

    def _fail(self, error: BaseException) -> None:
        self._failure = error
        with self._cond:
            self._cond.notify_all()

    def _drop(self, batch: _Batch) -> None:
        self.dropped_batches += 1
        self.dropped_records += batch.records
        obs_runtime.count("ingest.client.dropped_records", batch.records)

    def _deliver(self, batch: _Batch) -> None:
        """Deliver one batch: retries, backoff, reconnects, drops.

        Under a sampled trace context the whole delivery — including
        retries — is one ``ingest.client.send`` span whose id *is* the
        propagated ``span_id``, so the daemon's frame/flush spans
        attach to it once observers merge.
        """
        with carrier_span(
            "ingest.client.send", batch.context,
            session=self.session, seq=batch.seq, records=batch.records,
        ):
            self._deliver_inner(batch)

    def _deliver_inner(self, batch: _Batch) -> None:
        while True:
            if (
                self.max_retries is not None
                and batch.attempts > self.max_retries
            ):
                self._drop(batch)
                return
            if batch.attempts:
                self.retries += 1
            batch.attempts += 1
            try:
                if self._sock is None:
                    self._connect()
                started = time.perf_counter()
                protocol.write_frame(
                    self._wfile, protocol.T_BATCH, batch.seq, batch.payload
                )
                reply = protocol.read_frame(self._rfile)
            except (OSError, protocol.ProtocolError):
                # Connection damage: reconnect and redeliver (the
                # daemon dedupes by seq, so this is safe).
                self.reconnects += 1
                self._disconnect()
                time.sleep(
                    self.retry.delay_for(
                        batch.attempts, token=f"{self.session}/{batch.seq}"
                    )
                )
                continue
            if reply is None:
                self.reconnects += 1
                self._disconnect()
                continue
            if reply.type == protocol.T_ACK and reply.seq == batch.seq:
                self.batches_sent += 1
                self.records_sent += batch.records
                obs_runtime.observe(
                    "ingest.client.flush_ms",
                    (time.perf_counter() - started) * 1000.0,
                )
                return
            if reply.type == protocol.T_NACK:
                self.nacks_received += 1
                obs_runtime.count("ingest.client.nacks")
                retry_after_ms, reason = protocol.decode_nack(reply.payload)
                if not reason.startswith("backpressure"):
                    self._drop(batch)  # permanent refusal
                    return
                time.sleep(max(
                    retry_after_ms / 1000.0,
                    self.retry.delay_for(
                        batch.attempts, token=f"{self.session}/{batch.seq}"
                    ),
                ))
                continue
            if reply.type == protocol.T_ERROR:
                raise IngestClientError(
                    "daemon error: "
                    + reply.payload.decode("utf-8", "replace")
                )
            raise IngestClientError(
                f"unexpected {reply.name} frame answering a batch"
            )

    def _deliver_end(self) -> None:
        self._seq += 1
        seq = self._seq
        attempts = 0
        while True:
            attempts += 1
            try:
                if self._sock is None:
                    self._connect()
                protocol.write_frame(self._wfile, protocol.T_END, seq)
                reply = protocol.read_frame(self._rfile)
            except (OSError, protocol.ProtocolError):
                if attempts >= 8:
                    raise
                self.reconnects += 1
                self._disconnect()
                time.sleep(self.retry.delay_for(
                    attempts, token=f"{self.session}/end"
                ))
                continue
            if reply is not None and reply.type == protocol.T_ACK:
                return
            if reply is not None and reply.type == protocol.T_ERROR:
                raise IngestClientError(
                    "daemon error on END: "
                    + reply.payload.decode("utf-8", "replace")
                )
            if attempts >= 8:
                raise IngestClientError("daemon never acked END")
            self._disconnect()

    def __repr__(self) -> str:
        return (
            f"TraceClient({self.session!r} -> {self.address[0]}:"
            f"{self.address[1]}, {self.records_sent} records sent, "
            f"{self.dropped_records} dropped)"
        )
