"""The collector daemon: a threaded TCP server that spools live traces.

One :class:`IngestServer` accepts any number of concurrent client
connections (one OS thread each, via ``socketserver.ThreadingTCPServer``)
speaking the framed protocol of :mod:`repro.ingest.protocol`. Per
session it keeps a **bounded** queue of accepted-but-unflushed batches;
a single background flush thread drains every session's queue into its
:class:`~repro.ingest.spool.SessionSpool` and (in incremental mode)
advances the session's
:class:`~repro.ingest.incremental.IncrementalSessionAnalyzer`.

Flow control is explicit, not implicit in TCP buffers:

- a batch is **acked** once it sits in the session's bounded queue —
  from that moment the daemon owns it and will flush it;
- a batch that arrives while the queue is full is **nacked** with a
  ``backpressure:`` reason and a retry-after hint — the daemon's 429.
  Nothing is buffered; the client redelivers after backing off;
- a redelivered batch the daemon already accepted (``seq`` at or below
  the session's high-water mark) is acked again without re-enqueueing,
  so retries are idempotent and no record is ever spooled twice;
- ``END`` is acked only after the session's queue is fully flushed,
  which is the zero-loss contract: a client that saw its END ack knows
  every acked record is on disk.

Fault sites: every accepted batch passes ``ingest.frame`` (keyed
``"session/seq"``, attempt = deliveries of that seq seen so far) and
every flush passes ``ingest.flush`` (keyed by session, attempt = the
session's flush-failure count) — so transient rules (``times=1``)
recover on the client's redelivery / the flusher's next cycle, exactly
like scheduler retries.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.core.errors import LagAlyzerError
from repro.faults import runtime as faults_runtime
from repro.ingest import protocol
from repro.ingest.incremental import IncrementalSessionAnalyzer
from repro.ingest.spool import SessionSpool
from repro.obs import runtime as obs_runtime
from repro.obs.context import TraceContext, adopted_span
from repro.obs.http import HealthServer
from repro.obs.publisher import TelemetryPublisher
from repro.obs.slo import SloPolicy, ingest_stats_for_slo
from repro.obs.warehouse import Warehouse

#: Default bound on accepted-but-unflushed batches per session.
DEFAULT_QUEUE_LIMIT = 8
#: Default retry-after hint sent with backpressure nacks.
DEFAULT_RETRY_AFTER_MS = 25
#: How long END waits for the final flush before giving up.
END_FLUSH_ATTEMPTS = 64


class SessionState:
    """Everything the daemon tracks for one ingest session."""

    def __init__(
        self,
        session: str,
        application: str,
        spool: SessionSpool,
        queue_limit: int,
        analyzer: Optional[IncrementalSessionAnalyzer] = None,
        family: str = "gui",
    ) -> None:
        self.session = session
        self.application = application
        self.family = family
        self.spool = spool
        self.analyzer = analyzer
        self.analyzer_error: Optional[str] = None
        self.queue_limit = queue_limit
        self.queue: Deque[
            Tuple[int, List[str], Optional[TraceContext]]
        ] = deque()
        #: Trace id propagated in the session's HELLO, if any.
        self.trace_id: Optional[str] = None
        self.lock = threading.Lock()
        # Serializes flushing (the background thread vs an END handler).
        self.flush_lock = threading.Lock()
        #: Highest seq accepted into the queue (acks below it are
        #: idempotent redeliveries).
        self.last_seq = 0
        #: Deliveries seen per in-flight seq (the ``attempt`` coordinate
        #: of the ``ingest.frame`` fault site); pruned on accept.
        self.frame_attempts: Dict[int, int] = {}
        #: Flush failures so far (the ``attempt`` coordinate of the
        #: ``ingest.flush`` site — monotonic, so a transient rule fires
        #: once per session and the next cycle recovers).
        self.flush_attempts = 0
        self.records_accepted = 0
        self.records_flushed = 0
        self.nacks_sent = 0
        self.ended = False

    def pending_batches(self) -> int:
        with self.lock:
            return len(self.queue)

    def try_accept(
        self,
        seq: int,
        lines: List[str],
        context: Optional[TraceContext] = None,
    ) -> str:
        """Accept one delivered batch; ``"ack"``, ``"dup"`` or ``"full"``."""
        with self.lock:
            if seq <= self.last_seq:
                return "dup"
            if len(self.queue) >= self.queue_limit:
                return "full"
            self.queue.append((seq, lines, context))
            self.last_seq = seq
            self.records_accepted += len(lines)
            self.frame_attempts.pop(seq, None)
            return "ack"

    def flush(self) -> int:
        """Drain the queue into the spool; records flushed.

        Raises whatever the ``ingest.flush`` fault site raises, with
        the already-flushed batches safely on disk and the rest still
        queued for the next cycle.
        """
        flushed = 0
        with self.flush_lock:
            while True:
                with self.lock:
                    if not self.queue:
                        break
                    seq, lines, context = self.queue[0]
                started = time.perf_counter()
                with adopted_span(
                    "ingest.server.flush", context,
                    session=self.session, seq=seq, records=len(lines),
                ):
                    try:
                        faults_runtime.check(
                            "ingest.flush",
                            key=self.session,
                            attempt=self.flush_attempts,
                        )
                        self.spool.append(lines)
                    except Exception:
                        self.flush_attempts += 1
                        obs_runtime.count("ingest.server.flush_faults")
                        raise
                obs_runtime.observe(
                    "ingest.server.flush_ms",
                    (time.perf_counter() - started) * 1000.0,
                )
                obs_runtime.count("ingest.server.records", len(lines))
                with self.lock:
                    self.queue.popleft()
                    self.records_flushed += len(lines)
                flushed += len(lines)
                self._advance_analyzer(lines)
        return flushed

    def _advance_analyzer(self, lines: List[str]) -> None:
        if self.analyzer is None:
            return
        try:
            self.analyzer.push_lines(lines)
        except LagAlyzerError as error:
            # Damaged records still spool (the file is the ground
            # truth); only the rolling analysis stops.
            self.analyzer = None
            self.analyzer_error = str(error)
            obs_runtime.count("ingest.server.analyzer_errors")

    def rolling_summary(self) -> Optional[Dict[str, Any]]:
        """The analyzer's running totals, or None outside incremental mode."""
        if self.analyzer is None:
            return None
        return self.analyzer.rolling_summary()


class _IngestHandler(socketserver.StreamRequestHandler):
    """One client connection: HELLO, then batches until END or EOF."""

    def handle(self) -> None:  # noqa: C901 - one protocol loop
        server: "IngestServer" = self.server.ingest  # type: ignore[attr-defined]
        try:
            frame = protocol.read_frame(
                self.rfile, max_payload=server.max_payload
            )
        except protocol.ProtocolError as error:
            self._error(0, str(error))
            return
        if frame is None:
            return
        if frame.type != protocol.T_HELLO:
            self._error(frame.seq, "first frame must be HELLO")
            return
        try:
            session_id, application, hello_ctx = (
                protocol.decode_hello_context(frame.payload)
            )
            family = protocol.decode_hello_family(frame.payload)
        except protocol.ProtocolError as error:
            self._error(frame.seq, str(error))
            return
        state = server.session(session_id, application, family=family)
        hello_context = TraceContext.from_dict(hello_ctx)
        if hello_context is not None and hello_context.sampled:
            state.trace_id = hello_context.trace_id
        self._ack(frame.seq)
        obs_runtime.count("ingest.server.connections")

        while True:
            try:
                frame = protocol.read_frame(
                    self.rfile, max_payload=server.max_payload
                )
            except protocol.FrameTooLarge as error:
                # Payload was drained; refuse just this frame.
                self._nack(error.seq, 0, f"oversized: {error}", state)
                continue
            except protocol.ProtocolError as error:
                # Truncation or a bad version byte mid-stream: the
                # framing is lost, the connection is unrecoverable.
                self._error(0, str(error))
                return
            if frame is None:
                return  # client went away; its acked records are safe
            if frame.type == protocol.T_BATCH:
                if not self._handle_batch(server, state, frame):
                    return
            elif frame.type == protocol.T_END:
                self._handle_end(server, state, frame)
                return
            else:
                self._error(
                    frame.seq, f"unexpected {frame.name} frame"
                )
                return

    # ------------------------------------------------------------------

    def _handle_batch(
        self, server: "IngestServer", state: SessionState,
        frame: protocol.Frame,
    ) -> bool:
        attempt = state.frame_attempts.get(frame.seq, 0)
        state.frame_attempts[frame.seq] = attempt + 1
        try:
            faults_runtime.check(
                "ingest.frame",
                key=f"{state.session}/{frame.seq}",
                attempt=attempt,
            )
        except Exception as error:
            self._nack(
                frame.seq, server.retry_after_ms,
                f"backpressure: injected fault ({error})", state,
            )
            return True
        try:
            lines, raw_context = protocol.decode_batch_context(
                frame.payload
            )
        except protocol.ProtocolError as error:
            # Undecodable payloads never become decodable: permanent.
            self._nack(frame.seq, 0, f"bad-batch: {error}", state)
            return True
        context = TraceContext.from_dict(raw_context)
        with adopted_span(
            "ingest.server.frame", context,
            session=state.session, seq=frame.seq, records=len(lines),
        ):
            verdict = state.try_accept(frame.seq, lines, context)
            if verdict == "full":
                self._nack(
                    frame.seq, server.retry_after_ms,
                    "backpressure: session queue full", state,
                )
                return True
            self._ack(frame.seq)
        if verdict == "ack":
            server.wake_flusher()
        return True

    def _handle_end(
        self, server: "IngestServer", state: SessionState,
        frame: protocol.Frame,
    ) -> None:
        for _ in range(END_FLUSH_ATTEMPTS):
            try:
                state.flush()
            except Exception:
                time.sleep(server.flush_interval_s)
                continue
            if state.pending_batches() == 0:
                state.ended = True
                self._ack(frame.seq)
                return
        self._error(frame.seq, "final flush did not complete")

    # ------------------------------------------------------------------

    def _ack(self, seq: int) -> None:
        protocol.write_frame(self.wfile, protocol.T_ACK, seq)

    def _nack(
        self, seq: int, retry_after_ms: int, reason: str,
        state: Optional[SessionState] = None,
    ) -> None:
        if state is not None:
            state.nacks_sent += 1
        obs_runtime.count("ingest.server.nacks")
        protocol.write_frame(
            self.wfile, protocol.T_NACK, seq,
            protocol.encode_nack(retry_after_ms, reason),
        )

    def _error(self, seq: int, reason: str) -> None:
        obs_runtime.count("ingest.server.errors")
        try:
            protocol.write_frame(
                self.wfile, protocol.T_ERROR, seq,
                reason.encode("utf-8"),
            )
        except OSError:
            pass  # client is already gone


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    ingest: "IngestServer"


class IngestServer:
    """The long-running collector daemon.

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with IngestServer(spool_dir="spools") as server:
            client = TraceClient(server.address, session="s-1")
            ...

    Args:
        spool_dir: directory session spools are written to.
        host/port: bind address; port 0 picks a free port.
        queue_limit: accepted-but-unflushed batches per session before
            backpressure nacks start.
        max_payload: per-frame payload ceiling; larger batches are
            drained and nacked.
        retry_after_ms: hint sent with backpressure nacks.
        incremental: run an :class:`IncrementalSessionAnalyzer` per
            session, advanced at every flush.
        config: analysis config for incremental mode.
        flush_interval_s: background flush cadence (the flusher also
            wakes immediately whenever a batch is accepted).
        health_port: also serve ``/metrics`` / ``/healthz`` /
            ``/sessions`` on this port (0 picks a free one; ``None``
            disables the health surface).
        health_host: bind address for the health surface.
        slo: policy behind ``/healthz``; defaults to
            :data:`~repro.obs.slo.DEFAULT_INGEST_SLO`.
        warehouse: a :class:`~repro.obs.warehouse.Warehouse` (or its
            file path) that a background
            :class:`~repro.obs.publisher.TelemetryPublisher` flushes
            into while the daemon runs. Requires an ambiently installed
            observer (see :func:`repro.obs.runtime.install`) — without
            one there is nothing to publish and the option is inert.
        publish_interval_s: warehouse flush cadence.
        run_id: warehouse partition key; defaults to
            ``ingest-<pid>``.
        study_warehouse: a
            :class:`~repro.warehouse.StudyWarehouse` (or its file path)
            that every flushed session spool is compacted into on
            :meth:`stop` — Table III statistics plus pattern occurrence
            rows per session, filed under ``run_id``. Distinct from
            ``warehouse`` (operational telemetry): the two are
            different schemas and must be different files. Compaction
            failures degrade (warn + ``warehouse.write_errors``), they
            never block shutdown.
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
        retry_after_ms: int = DEFAULT_RETRY_AFTER_MS,
        incremental: bool = False,
        config: Optional[Any] = None,
        flush_interval_s: float = 0.02,
        health_port: Optional[int] = None,
        health_host: str = "127.0.0.1",
        slo: Optional[SloPolicy] = None,
        warehouse: Optional[Union[str, Path, Warehouse]] = None,
        publish_interval_s: float = 2.0,
        run_id: Optional[str] = None,
        study_warehouse: Optional[Union[str, Path, Any]] = None,
        column_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.spool_dir = Path(spool_dir)
        self.queue_limit = max(1, int(queue_limit))
        self.max_payload = int(max_payload)
        self.retry_after_ms = int(retry_after_ms)
        self.incremental = incremental
        self.config = config
        self.flush_interval_s = flush_interval_s
        self._sessions: Dict[str, SessionState] = {}
        self._sessions_lock = threading.Lock()
        self._server = _ThreadingServer((host, port), _IngestHandler)
        self._server.ingest = self
        self._serve_thread: Optional[threading.Thread] = None
        self._flush_thread: Optional[threading.Thread] = None
        self._flush_wake = threading.Event()
        self._stopping = threading.Event()

        self._health_port = health_port
        self._health_host = health_host
        self._slo = slo
        #: The live health surface, running between start() and stop().
        self.health: Optional[HealthServer] = None
        if warehouse is not None and not isinstance(warehouse, Warehouse):
            warehouse = Warehouse(warehouse)
        self.warehouse: Optional[Warehouse] = warehouse
        self._publish_interval_s = publish_interval_s
        self.run_id = run_id or f"ingest-{os.getpid()}"
        #: The warehouse publisher, running between start() and stop().
        self.publisher: Optional[TelemetryPublisher] = None
        if study_warehouse is not None and not hasattr(
            study_warehouse, "ingest_spool"
        ):
            from repro.warehouse import StudyWarehouse

            study_warehouse = StudyWarehouse(study_warehouse)
        self.study_warehouse = study_warehouse
        #: When set, spool compaction also writes one ``.lilac`` column
        #: file per session here and analyzes the mmap-backed store.
        self.column_dir = Path(column_dir) if column_dir is not None else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    def start(self) -> "IngestServer":
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="ingest-serve",
            daemon=True,
        )
        self._flush_thread = threading.Thread(
            target=self._flush_loop, name="ingest-flush", daemon=True
        )
        self._serve_thread.start()
        self._flush_thread.start()
        observer = obs_runtime.current()
        if self.warehouse is not None and observer is not None:
            self.publisher = TelemetryPublisher(
                observer,
                self.warehouse,
                self.run_id,
                interval_s=self._publish_interval_s,
            ).start()
        if self._health_port is not None:
            self.health = HealthServer(
                stats_fn=self.health_stats,
                metrics_fn=self._metrics_text,
                sessions_fn=self.session_summaries,
                slo=self._slo,
                host=self._health_host,
                port=self._health_port,
            ).start()
        return self

    def stop(self) -> None:
        """Shut down: stop accepting, final-flush every session."""
        self._stopping.set()
        self._flush_wake.set()
        if self.health is not None:
            self.health.stop()
            self.health = None
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._flush_thread is not None:
            self._flush_thread.join(timeout=5.0)
        for state in self.sessions():
            try:
                state.flush()
            except Exception:
                pass
            state.spool.close()
        if self.study_warehouse is not None:
            self.compact_spools()
        if self.publisher is not None:
            self.publisher.stop()
            self.publisher = None

    def compact_spools(self) -> Dict[str, int]:
        """Compact every session's flushed spool into the study warehouse.

        Each spool is re-read as a trace source, analyzed with the
        warehouse ingest plan (``statistics`` + ``occurrence``), and
        stored under this daemon's ``run_id`` — so the warehouse's
        per-session ``records`` equals the spool's record count, which
        equals ``records_flushed`` (the zero-loss contract). Per-session
        failures warn, count ``warehouse.write_errors``, and move on;
        one damaged spool never loses the rest. Returns
        ``{"ingested", "skipped", "failed"}``.
        """
        ingested = skipped = failed = 0
        if self.study_warehouse is None:
            return {"ingested": 0, "skipped": 0, "failed": 0}
        try:
            self.study_warehouse.record_run(
                self.run_id, source="spool"
            )
        except Exception as error:
            warnings.warn(
                f"study warehouse unavailable under "
                f"{self.study_warehouse.path}: {error} — spools are "
                f"intact, compaction skipped",
                RuntimeWarning,
                stacklevel=2,
            )
            obs_runtime.count("warehouse.write_errors")
            return {
                "ingested": 0,
                "skipped": 0,
                "failed": len(self.sessions()),
            }
        from repro.core.analyzer import AnalysisConfig

        config = self.config if self.config is not None else AnalysisConfig()
        if self.column_dir is not None:
            self.column_dir.mkdir(parents=True, exist_ok=True)
        for state in self.sessions():
            column_file = (
                self.column_dir / f"{state.session}.lilac"
                if self.column_dir is not None
                else None
            )
            try:
                changed = self.study_warehouse.ingest_spool(
                    state.spool.path, self.run_id, config,
                    session_id=state.session,
                    column_file=column_file,
                )
            except Exception as error:
                failed += 1
                obs_runtime.count("warehouse.write_errors")
                warnings.warn(
                    f"spool compaction failed for session "
                    f"{state.session!r}: {error} — spool kept at "
                    f"{state.spool.path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if changed:
                ingested += 1
            else:
                skipped += 1
        return {"ingested": ingested, "skipped": skipped, "failed": failed}

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session(
        self, session_id: str, application: str, family: str = "gui"
    ) -> SessionState:
        """The state for ``session_id``, created on first contact.

        A reconnecting client reattaches to its existing state, so seq
        dedup and the spool survive dropped connections.
        """
        with self._sessions_lock:
            state = self._sessions.get(session_id)
            if state is None:
                analyzer = None
                if self.incremental:
                    analyzer = IncrementalSessionAnalyzer(
                        label=f"ingest:{session_id}", config=self.config
                    )
                state = SessionState(
                    session_id,
                    application,
                    SessionSpool(self.spool_dir, session_id, application),
                    self.queue_limit,
                    analyzer=analyzer,
                    family=family,
                )
                self._sessions[session_id] = state
                obs_runtime.count("ingest.server.sessions")
            return state

    def sessions(self) -> List[SessionState]:
        with self._sessions_lock:
            return list(self._sessions.values())

    def stats(self) -> Dict[str, Any]:
        """Aggregate daemon counters (for tests and the CLI)."""
        sessions = self.sessions()
        return {
            "sessions": len(sessions),
            "records_accepted": sum(
                s.records_accepted for s in sessions
            ),
            "records_flushed": sum(s.records_flushed for s in sessions),
            "pending_batches": sum(s.pending_batches() for s in sessions),
            "nacks_sent": sum(s.nacks_sent for s in sessions),
            "ended_sessions": sum(1 for s in sessions if s.ended),
        }

    def health_stats(self) -> Dict[str, float]:
        """The stat mapping ``/healthz`` evaluates the SLO against."""
        return ingest_stats_for_slo(
            self.stats(),
            analyzer_errors=sum(
                1 for s in self.sessions() if s.analyzer_error is not None
            ),
            telemetry_lost=(
                self.publisher.lost_flushes
                if self.publisher is not None
                else 0
            ),
        )

    def session_summaries(self) -> List[Dict[str, Any]]:
        """Per-session JSON rows for the ``/sessions`` endpoint."""
        rows = []
        for state in sorted(self.sessions(), key=lambda s: s.session):
            rows.append(
                {
                    "session": state.session,
                    "application": state.application,
                    "family": state.family,
                    "records_accepted": state.records_accepted,
                    "records_flushed": state.records_flushed,
                    "pending_batches": state.pending_batches(),
                    "nacks_sent": state.nacks_sent,
                    "ended": state.ended,
                    "trace_id": state.trace_id,
                    "analyzer_error": state.analyzer_error,
                }
            )
        return rows

    @staticmethod
    def _metrics_text() -> str:
        """Prometheus text of the ambient observer's registry."""
        from repro.obs.export import metrics_to_prometheus

        observer = obs_runtime.current()
        if observer is None:
            return "# observation disabled (no ambient observer)\n"
        return metrics_to_prometheus(observer.metrics.as_dict())

    def rolling_summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-session rolling summaries (incremental mode only)."""
        result = {}
        for state in self.sessions():
            summary = state.rolling_summary()
            if summary is not None:
                result[state.session] = summary
        return result

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def wake_flusher(self) -> None:
        self._flush_wake.set()

    def _flush_loop(self) -> None:
        while not self._stopping.is_set():
            self._flush_wake.wait(timeout=self.flush_interval_s)
            self._flush_wake.clear()
            pending = 0
            for state in self.sessions():
                try:
                    state.flush()
                except Exception:
                    pass  # attempt counter advanced; retried next cycle
                pending += state.pending_batches()
            obs_runtime.set_gauge("ingest.server.queue_depth", pending)

    def __repr__(self) -> str:
        host, port = self.address
        return f"IngestServer({host}:{port}, {len(self.sessions())} sessions)"
