"""Live trace ingestion: the collector daemon and its client.

The offline pipeline reads finished ``.lila`` files; this package is
the online path that produces them. A long-running
:class:`~repro.ingest.server.IngestServer` accepts framed, compressed
record batches from any number of concurrent
:class:`~repro.ingest.client.TraceClient` sessions, applies explicit
backpressure through bounded per-session queues, spools every acked
record into a per-session LiLa text file
(:class:`~repro.ingest.spool.SessionSpool`), and — in incremental mode
— advances a rolling episode/pattern analysis per session
(:class:`~repro.ingest.incremental.IncrementalSessionAnalyzer`) whose
final summaries are byte-identical to a one-shot analysis of the same
records.

See ``docs/ingest.md`` for the protocol and flow-control contract.
"""

from repro.ingest.client import IngestClientError, TraceClient
from repro.ingest.incremental import IncrementalSessionAnalyzer
from repro.ingest.protocol import (
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
)
from repro.ingest.server import IngestServer
from repro.ingest.spool import SessionSpool

__all__ = [
    "PROTOCOL_VERSION",
    "FrameTooLarge",
    "IncrementalSessionAnalyzer",
    "IngestClientError",
    "IngestServer",
    "ProtocolError",
    "SessionSpool",
    "TraceClient",
]
