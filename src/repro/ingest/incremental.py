"""Incremental analysis over a live ingest session.

One-shot analysis waits for a complete trace file, builds the store,
then splits episodes and mines patterns. A live session never hands
over a complete file — records arrive a batch at a time, and the
interesting questions ("how many perceptible episodes so far?", "which
pattern keeps recurring?") want answers *between* batches.

:class:`IncrementalSessionAnalyzer` is the per-session pipeline the
daemon advances after every flush:

- :class:`~repro.lila.source.RecordFeed` parses each text line into a
  validated source record (same validation, same error messages as the
  file reader);
- :class:`~repro.core.store.incremental.IncrementalColumnarBuilder`
  appends it to the columnar store under construction and reports each
  root interval the line completed;
- :class:`~repro.core.episodes.IncrementalEpisodeSplitter` turns the
  completed dispatch roots of the event dispatch thread into episodes,
  and per-episode pattern tallies advance immediately.

:meth:`rolling_summary` publishes the running totals at any moment.
When the session ends, :meth:`finalize` seals the very same builder a
one-shot :func:`~repro.lila.source.build_store` would have used —
``flush_samples``, required-meta check, ``finish`` — so
:meth:`summaries` over the sealed trace is **byte-identical** to a
one-shot analysis of the same records (the parity test pickles both).
"""

from __future__ import annotations

from typing import Any, Counter as CounterType, Dict, List, Optional, Sequence
from collections import Counter

from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.episodes import Episode, IncrementalEpisodeSplitter
from repro.core.errors import AnalysisError
from repro.core.patterns import pattern_key
from repro.core.store.facade import FacadeTrace
from repro.core.store.incremental import IncrementalColumnarBuilder
from repro.lila.source import RecordFeed


class IncrementalSessionAnalyzer:
    """Rolling episode/pattern analysis for one in-flight session."""

    def __init__(
        self,
        label: Optional[str] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.config = config or AnalysisConfig()
        self._feed = RecordFeed(label)
        self._builder = IncrementalColumnarBuilder()
        self._splitter: Optional[IncrementalEpisodeSplitter] = None
        #: Structural pattern tallies over episodes completed so far
        #: (episodes without structure are excluded, exactly as
        #: :meth:`PatternTable.from_episodes` excludes them).
        self.pattern_counts: CounterType[str] = Counter()
        self.unstructured_episodes = 0
        self.lines_fed = 0
        self._sealed: Optional[FacadeTrace] = None

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------

    @property
    def gui_thread(self) -> Optional[str]:
        """The event dispatch thread, once the metadata announced it."""
        name = self._builder.meta.get("gui_thread")
        return name if isinstance(name, str) else None

    def push_line(self, line: str) -> List[Episode]:
        """Feed one record line; the episodes it completed (often none).

        Raises:
            TraceFormatError: the line (or the structure it implies) is
                invalid — stamped with the line number, identical to
                the file reader's message for the same damage.
        """
        if self._sealed is not None:
            raise AnalysisError("session already finalized")
        self.lines_fed += 1
        record = self._feed.feed(line)
        if record is None:
            return []
        self._builder.feed(record)
        completed = self._builder.take_completed_roots()
        if not completed:
            return []
        return self._advance(completed)

    def push_lines(self, lines: Sequence[str]) -> List[Episode]:
        """Feed a batch of lines; all episodes the batch completed."""
        episodes: List[Episode] = []
        for line in lines:
            episodes.extend(self.push_line(line))
        return episodes

    def _advance(self, completed: List) -> List[Episode]:
        gui_thread = self.gui_thread
        if gui_thread is None:
            # Roots before the gui_thread meta record can't be episodes
            # we recognize; well-formed streams put metadata first.
            return []
        if self._splitter is None:
            self._splitter = IncrementalEpisodeSplitter(
                gui_thread,
                threshold_ms=self.config.perceptible_threshold_ms,
            )
        episodes: List[Episode] = []
        for thread_index, row in completed:
            name = self._builder.thread_name(thread_index)
            if name != gui_thread and not self.config.all_dispatch_threads:
                continue
            root = self._builder.materialize_root(thread_index, row)
            episode = self._splitter.push_root(root)
            if episode is None:
                continue
            if episode.has_structure:
                key = pattern_key(
                    episode,
                    include_gc=self.config.include_gc_in_patterns,
                )
                self.pattern_counts[key] += 1
            else:
                self.unstructured_episodes += 1
            episodes.append(episode)
        return episodes

    # ------------------------------------------------------------------
    # Rolling output
    # ------------------------------------------------------------------

    @property
    def episodes(self) -> List[Episode]:
        """Episodes completed so far, in completion order."""
        if self._splitter is None:
            return []
        return list(self._splitter.episodes)

    @property
    def perceptible_episodes(self) -> List[Episode]:
        """The perceptible subsequence of :attr:`episodes`."""
        if self._splitter is None:
            return []
        return list(self._splitter.perceptible)

    def rolling_summary(self) -> Dict[str, Any]:
        """Running totals over everything fed so far.

        A plain dict (JSON-friendly) the daemon republishes after every
        flush: episode and perceptible counts, distinct/covered pattern
        tallies, and the worst lag seen.
        """
        episodes = self.episodes
        perceptible = self.perceptible_episodes
        return {
            "session": self._builder.meta.get("session_id"),
            "application": self._builder.meta.get("application"),
            "lines": self.lines_fed,
            "records": self._builder.record_count,
            "episodes": len(episodes),
            "perceptible_episodes": len(perceptible),
            "threshold_ms": self.config.perceptible_threshold_ms,
            "distinct_patterns": len(self.pattern_counts),
            "covered_episodes": sum(self.pattern_counts.values()),
            "unstructured_episodes": self.unstructured_episodes,
            "longest_lag_ms": max(
                (ep.duration_ms for ep in episodes), default=0.0
            ),
        }

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def finalize(self) -> FacadeTrace:
        """Seal the builder into the trace a one-shot build would make.

        Safe to call once, after the last line; the same closure and
        bounds invariants a one-shot :func:`build_store` enforces apply
        (a stream that left intervals open raises here).
        """
        if self._sealed is None:
            builder = self._builder
            builder.flush_samples()
            builder.check_required_meta()
            metadata = builder.build_metadata()
            self._sealed = FacadeTrace(builder.finish(metadata))
        return self._sealed

    def summaries(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Final analysis summaries over the sealed trace.

        Runs the ordinary fused-plan path over :meth:`finalize`'s
        trace, so the result is byte-identical to a one-shot analysis
        of the same records.
        """
        trace = self.finalize()
        return LagAlyzer([trace], config=self.config).summaries(names)

    def __repr__(self) -> str:
        state = "sealed" if self._sealed is not None else "live"
        return (
            f"IncrementalSessionAnalyzer({self._feed.label()!r}, "
            f"{self.lines_fed} lines, "
            f"{len(self.episodes)} episodes, {state})"
        )
