"""The ingest wire protocol: length-prefixed frames, compressed batches.

One frame is a fixed 10-byte header followed by a payload::

    version  u8   — :data:`PROTOCOL_VERSION`; anything else is rejected
    type     u8   — one of the ``T_*`` codes below
    seq      u32  — sender's frame sequence number (acks echo it)
    length   u32  — payload byte count
    payload  ...  — ``length`` bytes

All integers are big-endian. The sequence number lives in the *header*
so a receiver can nack a frame it refuses to read the payload of (an
oversized batch is drained and nacked without ever being buffered).

Frame types:

- ``T_HELLO`` — opens a session; payload is a JSON object with
  ``session`` (required) and ``application``.
- ``T_BATCH`` — one batch of LiLa text records; payload is a ``u32``
  record count followed by the gzip-compressed UTF-8 lines joined by
  ``"\\n"``. Batches are acked (accepted, durable once flushed) or
  nacked (redeliver later — the 429 of this protocol).
- ``T_END`` — closes the session; acked only after the session's spool
  is fully flushed, so a client that saw the ack knows nothing it sent
  can be lost.
- ``T_ACK`` — empty payload; ``seq`` echoes the frame being acked.
- ``T_NACK`` — ``u32`` retry-after hint in milliseconds plus a UTF-8
  reason; ``seq`` echoes the refused frame.
- ``T_ERROR`` — UTF-8 reason; the connection is dead after this.

Damage — a short read mid-frame, a bad version byte, an undecodable
batch — raises :class:`ProtocolError`; a clean EOF between frames is
``None`` from :func:`read_frame`, not an error.
"""

from __future__ import annotations

import gzip
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import LagAlyzerError

#: Wire protocol version; bumped on any incompatible frame change.
PROTOCOL_VERSION = 1

#: Minor revision within version 1: optional trace-context fields in
#: HELLO (a ``"trace"`` JSON key) and BATCH (a flagged count word, see
#: :func:`encode_batch`). Frames without them are byte-identical to
#: minor 0, and decoders ignore what they don't carry — the version
#: byte does not change.
PROTOCOL_MINOR = 1

#: Frame type codes.
T_HELLO = 1
T_BATCH = 2
T_END = 3
T_ACK = 4
T_NACK = 5
T_ERROR = 6

_FRAME_NAMES = {
    T_HELLO: "HELLO",
    T_BATCH: "BATCH",
    T_END: "END",
    T_ACK: "ACK",
    T_NACK: "NACK",
    T_ERROR: "ERROR",
}

_HEADER = struct.Struct("!BBII")
_U32 = struct.Struct("!I")

#: Hard per-frame payload ceiling a reader enforces even when the
#: caller's limit is higher (memory-bomb guard).
ABSOLUTE_MAX_PAYLOAD = 64 * 1024 * 1024

#: Default per-batch payload ceiling (servers reject above this).
DEFAULT_MAX_PAYLOAD = 4 * 1024 * 1024


class ProtocolError(LagAlyzerError):
    """A frame violated the wire protocol (truncation, bad version...)."""


class FrameTooLarge(ProtocolError):
    """A frame's declared payload exceeded the receiver's limit.

    The payload has been drained from the stream when this is raised,
    so the connection stays usable — the receiver can nack ``seq`` and
    keep reading.
    """

    def __init__(self, frame_type: int, seq: int, length: int, limit: int) -> None:
        super().__init__(
            f"{frame_name(frame_type)} frame payload of {length} bytes "
            f"exceeds the {limit}-byte limit"
        )
        self.frame_type = frame_type
        self.seq = seq
        self.length = length
        self.limit = limit


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    type: int
    seq: int
    payload: bytes

    @property
    def name(self) -> str:
        return frame_name(self.type)


def frame_name(frame_type: int) -> str:
    """Human-readable name of a frame type code."""
    return _FRAME_NAMES.get(frame_type, f"type-{frame_type}")


def write_frame(
    writer: BinaryIO, frame_type: int, seq: int, payload: bytes = b""
) -> None:
    """Write one frame and flush the writer."""
    writer.write(
        _HEADER.pack(PROTOCOL_VERSION, frame_type, seq, len(payload))
    )
    if payload:
        writer.write(payload)
    writer.flush()


def _read_exactly(reader: BinaryIO, count: int, what: str) -> bytes:
    data = reader.read(count)
    if len(data) != count:
        raise ProtocolError(
            f"truncated frame: wanted {count} {what} bytes, "
            f"got {len(data)}"
        )
    return data


def read_frame(
    reader: BinaryIO, max_payload: Optional[int] = None
) -> Optional[Frame]:
    """Read one frame; ``None`` on a clean EOF between frames.

    Raises:
        ProtocolError: a short read mid-frame, or a version byte this
            implementation doesn't speak.
        FrameTooLarge: declared payload above ``max_payload`` (or the
            absolute ceiling); the payload is drained first, so the
            caller can nack and continue reading.
    """
    header = reader.read(_HEADER.size)
    if not header:
        return None
    if len(header) != _HEADER.size:
        raise ProtocolError(
            f"truncated frame header: wanted {_HEADER.size} bytes, "
            f"got {len(header)}"
        )
    version, frame_type, seq, length = _HEADER.unpack(header)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this end speaks {PROTOCOL_VERSION})"
        )
    limit = ABSOLUTE_MAX_PAYLOAD if max_payload is None else max_payload
    if length > limit:
        remaining = length
        while remaining > 0:
            chunk = reader.read(min(remaining, 65536))
            if not chunk:
                raise ProtocolError(
                    "truncated frame: oversized payload ended early"
                )
            remaining -= len(chunk)
        raise FrameTooLarge(frame_type, seq, length, limit)
    payload = _read_exactly(reader, length, "payload") if length else b""
    return Frame(frame_type, seq, payload)


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------


def encode_hello(
    session: str,
    application: str = "",
    context: Optional[Mapping[str, Any]] = None,
    family: str = "gui",
) -> bytes:
    """HELLO payload for ``session`` (sorted keys — byte-stable).

    ``context`` (a :meth:`TraceContext.to_dict` mapping) rides in the
    JSON attribute space under the ``"trace"`` key, and a non-gui
    workload ``family`` under ``"family"``; receivers that predate
    either ignore unknown keys, so the frame stays version-1. Gui
    sessions omit the key and encode byte-identically to before
    families existed.
    """
    raw: Dict[str, Any] = {"application": application, "session": session}
    if context is not None:
        raw["trace"] = dict(context)
    if family != "gui":
        raw["family"] = family
    return json.dumps(raw, sort_keys=True).encode("utf-8")


def decode_hello_context(
    payload: bytes,
) -> Tuple[str, str, Optional[Dict[str, Any]]]:
    """``(session, application, trace context or None)`` from a HELLO."""
    try:
        raw = json.loads(payload.decode("utf-8"))
        session = raw["session"]
    except (ValueError, KeyError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed HELLO payload: {error}") from None
    if not isinstance(session, str) or not session:
        raise ProtocolError("HELLO 'session' must be a non-empty string")
    application = raw.get("application", "")
    if not isinstance(application, str):
        raise ProtocolError("HELLO 'application' must be a string")
    context = raw.get("trace")
    if not isinstance(context, dict):
        context = None  # telemetry is best-effort, never fatal
    return session, application, context


def decode_hello(payload: bytes) -> Tuple[str, str]:
    """``(session, application)`` from a HELLO payload."""
    session, application, _ = decode_hello_context(payload)
    return session, application


def decode_hello_family(payload: bytes) -> str:
    """The workload family announced in a HELLO (``"gui"`` if absent)."""
    try:
        raw = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed HELLO payload: {error}") from None
    family = raw.get("family", "gui")
    if not isinstance(family, str) or not family:
        raise ProtocolError("HELLO 'family' must be a non-empty string")
    return family


#: High bit of the BATCH count word: a trace-context block follows.
_CTX_FLAG = 0x80000000
_U16 = struct.Struct("!H")


def encode_batch(
    lines: Sequence[str],
    context: Optional[Mapping[str, Any]] = None,
) -> bytes:
    """BATCH payload: record count + gzip-compressed joined lines.

    ``mtime=0`` keeps the gzip member byte-stable for identical input
    (no wall-clock timestamp in the stream). With ``context`` (the
    protocol-minor-1 optional field) the count word sets its high bit
    and a ``u16`` length plus that many bytes of context JSON precede
    the gzip member; without it the payload is byte-identical to
    minor 0.
    """
    body = gzip.compress("\n".join(lines).encode("utf-8"), mtime=0)
    if context is None:
        return _U32.pack(len(lines)) + body
    blob = json.dumps(dict(context), sort_keys=True).encode("utf-8")
    return (
        _U32.pack(len(lines) | _CTX_FLAG)
        + _U16.pack(len(blob))
        + blob
        + body
    )


def decode_batch_context(
    payload: bytes,
) -> Tuple[List[str], Optional[Dict[str, Any]]]:
    """``(record lines, trace context or None)`` from a BATCH payload."""
    if len(payload) < _U32.size:
        raise ProtocolError("batch payload shorter than its record count")
    (count,) = _U32.unpack(payload[: _U32.size])
    offset = _U32.size
    context: Optional[Dict[str, Any]] = None
    if count & _CTX_FLAG:
        count &= ~_CTX_FLAG
        if len(payload) < offset + _U16.size:
            raise ProtocolError("batch context block truncated")
        (blob_len,) = _U16.unpack(payload[offset:offset + _U16.size])
        offset += _U16.size
        blob = payload[offset:offset + blob_len]
        if len(blob) != blob_len:
            raise ProtocolError("batch context block truncated")
        offset += blob_len
        try:
            decoded = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = None  # damaged telemetry never fails the batch
        if isinstance(decoded, dict):
            context = decoded
    try:
        body = gzip.decompress(payload[offset:]).decode("utf-8")
    except (OSError, EOFError, zlib.error, UnicodeDecodeError) as error:
        raise ProtocolError(
            f"batch payload is not valid gzip text: {error}"
        ) from None
    lines = body.split("\n") if body else []
    if len(lines) != count:
        raise ProtocolError(
            f"batch declared {count} records but carries {len(lines)}"
        )
    return lines, context


def decode_batch(payload: bytes) -> List[str]:
    """The record lines of a BATCH payload (context, if any, dropped)."""
    return decode_batch_context(payload)[0]


def encode_nack(retry_after_ms: int, reason: str) -> bytes:
    """NACK payload: retry-after hint (ms) + reason."""
    return _U32.pack(max(0, int(retry_after_ms))) + reason.encode("utf-8")


def decode_nack(payload: bytes) -> Tuple[int, str]:
    """``(retry_after_ms, reason)`` from a NACK payload."""
    if len(payload) < _U32.size:
        raise ProtocolError("truncated NACK payload")
    (retry_after_ms,) = _U32.unpack(payload[: _U32.size])
    return retry_after_ms, payload[_U32.size:].decode("utf-8", "replace")
