"""The mmap-backed `.lilac` column file.

The text (``.lila``) and binary (``.lilb``) encodings serialize the
*event stream*: loading one means re-parsing every record back into the
columnar store, and shipping a loaded trace to a worker process means
pickling every column by value. This module adds a third, analysis-side
encoding that serializes the **store itself**: the typed column buffers
of a :class:`~repro.core.store.ColumnarTrace` are written once, raw and
8-byte aligned, and :func:`open_column_store` maps them back with
``mmap`` + ``memoryview.cast`` — zero bytes copied, zero records
re-parsed, and workers that re-open the same file share the OS page
cache. File-backed stores pickle as just their path (see
``ColumnarTrace.__reduce__``), so engine fan-out ships a few hundred
bytes instead of the columns.

Layout (fixed 16-byte prologue, then a JSON header, then raw data)::

    0   magic ``LILC``, u16 version, u8 byteorder (0 little / 1 big),
        u8 pad, u32 header length, u32 header CRC-32
    16  header JSON (UTF-8): content digest, trace metadata, thread
        names, per-segment table (name/typecode/count/offset/nbytes),
        and the intern-block table
    ..  zero padding to an 8-byte boundary (= the data base)
    ..  column segments: each thread's seven columns then the six
        sample columns, raw native-endian bytes, 8-byte aligned
    ..  intern blocks: strings (u32 length + UTF-8 each), frames
        (u32 class id, u32 method id, u8 native), stacks (u16 depth +
        u32 frame ids) — fixed little-endian, like ``.lilb``

Segment offsets in the header are relative to the data base, so the
header's own length never feeds back into the offsets it records. The
header CRC makes damage to the structural metadata loud; the column
bytes themselves are deliberately *not* checksummed — verifying them
would force a full read and defeat the O(1) open. Structural validation
(bounds, lengths, intern ids) still rejects truncated or garbled files
with a :class:`~repro.core.errors.TraceFormatError` stamped with the
path and byte offset.

A file written on an alien-endian host still opens: the reader detects
the byteorder flag and falls back to a byteswapped *copy* (the store is
then in-memory, not file-backed).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from array import array

from repro.core.errors import LagAlyzerError, TraceFormatError
from repro.core.samples import StackFrame, StackTrace
from repro.core.store import ColumnarTrace, FacadeTrace
from repro.core.store.buffers import ITEM_SIZES, ColumnBuffer
from repro.core.store.columns import (
    SAMPLE_COLUMN_SPECS,
    THREAD_COLUMN_SPECS,
    _ThreadColumns,
)
from repro.core.trace import TraceMetadata
from repro.faults import runtime as faults_runtime
from repro.lila.source import TraceSource
from repro.obs import runtime as obs_runtime

MAGIC = b"LILC"
VERSION = 1
SUFFIX = ".lilac"

_PROLOGUE = struct.Struct("<4sHBBII")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U8 = struct.Struct("<B")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def store_digest(store: ColumnarTrace) -> str:
    """The store's canonical content digest (memoized on the store).

    Identical to :func:`repro.lila.digest.trace_digest` over a facade of
    the store — the same hash over the same canonical lines — so a
    `.lilac` file carries exactly the digest the engine's cache keys on.
    """
    memo = getattr(store, "_content_digest", None)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for line in store.canonical_lines():
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    value = digest.hexdigest()
    store._content_digest = value
    return value


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def _segment_plan(
    store: ColumnarTrace,
) -> List[Tuple[str, str, ColumnBuffer]]:
    """``(name, typecode, buffer)`` of every column, in file order."""
    plan: List[Tuple[str, str, ColumnBuffer]] = []
    for index, columns in enumerate(store.threads):
        buffers = columns.buffers()
        for attr, typecode in THREAD_COLUMN_SPECS:
            plan.append((f"t{index}.{attr}", typecode, buffers[attr]))
    sample = store.sample_buffers()
    for attr, typecode in SAMPLE_COLUMN_SPECS:
        plan.append((f"s.{attr}", typecode, sample[attr]))
    return plan


def _intern_blocks(
    store: ColumnarTrace,
) -> Tuple[List[str], bytes, bytes, bytes]:
    """The strings / frames / stacks blocks of ``store``.

    The strings block starts with the store's own intern pool (column
    symbol ids index it positionally, so existing ids must be
    preserved) and appends any stack-frame names not already pooled.
    """
    strings: List[str] = list(store.strings)
    string_ids: Dict[str, int] = dict(store._strings_map)

    def intern(text: str) -> int:
        index = string_ids.get(text)
        if index is None:
            index = len(strings)
            string_ids[text] = index
            strings.append(text)
        return index

    frames: List[Tuple[int, int, bool]] = []
    frame_ids: Dict[Tuple[int, int, bool], int] = {}
    stack_rows: List[List[int]] = []
    for stack in store.stacks:
        row: List[int] = []
        for frame in stack.frames:
            key = (
                intern(frame.class_name),
                intern(frame.method_name),
                frame.is_native,
            )
            frame_id = frame_ids.get(key)
            if frame_id is None:
                frame_id = len(frames)
                frame_ids[key] = frame_id
                frames.append(key)
            row.append(frame_id)
        stack_rows.append(row)

    strings_blob = bytearray()
    for text in strings:
        data = text.encode("utf-8")
        strings_blob += _U32.pack(len(data))
        strings_blob += data
    frames_blob = bytearray()
    for class_id, method_id, native in frames:
        frames_blob += _U32.pack(class_id)
        frames_blob += _U32.pack(method_id)
        frames_blob += _U8.pack(1 if native else 0)
    stacks_blob = bytearray()
    for row in stack_rows:
        stacks_blob += _U16.pack(len(row))
        for frame_id in row:
            stacks_blob += _U32.pack(frame_id)
    return strings, bytes(strings_blob), bytes(frames_blob), bytes(stacks_blob)


def write_column_file(
    store: ColumnarTrace, path: Union[str, Path]
) -> Path:
    """Write ``store`` to ``path`` as a `.lilac` column file.

    The write is atomic (temp file + rename), so readers never observe
    a half-written file; the content digest is computed (or reused from
    the store's memo) and carried in the header, so opening the file
    never re-derives it.
    """
    path = Path(path)
    segments = _segment_plan(store)
    strings, strings_blob, frames_blob, stacks_blob = _intern_blocks(store)

    cursor = 0
    segment_table: List[Dict[str, Any]] = []
    for name, typecode, buffer in segments:
        cursor = _align8(cursor)
        segment_table.append(
            {
                "name": name,
                "typecode": typecode,
                "count": len(buffer),
                "offset": cursor,
                "nbytes": buffer.nbytes,
            }
        )
        cursor += buffer.nbytes
    blocks: Dict[str, Dict[str, int]] = {}
    for name, blob, count in (
        ("strings", strings_blob, len(strings)),
        ("frames", frames_blob, len(frames_blob) // 9),
        ("stacks", stacks_blob, len(store.stacks)),
    ):
        cursor = _align8(cursor)
        blocks[name] = {"count": count, "offset": cursor,
                        "nbytes": len(blob)}
        cursor += len(blob)

    meta = store.metadata
    header = {
        "digest": store_digest(store),
        "metadata": {
            "application": meta.application,
            "session_id": meta.session_id,
            "start_ns": meta.start_ns,
            "end_ns": meta.end_ns,
            "gui_thread": meta.gui_thread,
            "sample_period_ns": meta.sample_period_ns,
            "filter_ms": meta.filter_ms,
            "extra": dict(meta.extra),
        },
        "short_episode_count": store.short_episode_count,
        "threads": [columns.name for columns in store.threads],
        "segments": segment_table,
        "blocks": blocks,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(
            _PROLOGUE.pack(
                MAGIC,
                VERSION,
                0 if sys.byteorder == "little" else 1,
                0,
                len(header_bytes),
                zlib.crc32(header_bytes) & 0xFFFFFFFF,
            )
        )
        handle.write(header_bytes)
        data_base = _align8(_PROLOGUE.size + len(header_bytes))
        handle.write(b"\0" * (data_base - _PROLOGUE.size - len(header_bytes)))
        position = 0
        for entry, (_name, _typecode, buffer) in zip(segment_table, segments):
            handle.write(b"\0" * (entry["offset"] - position))
            handle.write(buffer.tobytes())
            position = entry["offset"] + entry["nbytes"]
        for name, blob in (
            ("strings", strings_blob),
            ("frames", frames_blob),
            ("stacks", stacks_blob),
        ):
            entry = blocks[name]
            handle.write(b"\0" * (entry["offset"] - position))
            handle.write(blob)
            position = entry["offset"] + entry["nbytes"]
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


class ColumnFileBacking:
    """The open `.lilac` file behind a file-backed store.

    Holding this object keeps the mapping alive for as long as any
    column view does; ``nbytes`` is the whole file size — the bytes a
    worker re-maps instead of receiving through the task pipe.
    """

    __slots__ = ("path", "map", "nbytes", "digest")

    def __init__(
        self, path: Path, map_obj: mmap.mmap, nbytes: int, digest: str
    ) -> None:
        self.path = path
        self.map = map_obj
        self.nbytes = nbytes
        self.digest = digest

    def __repr__(self) -> str:
        return f"ColumnFileBacking({str(self.path)!r}, {self.nbytes} bytes)"


class _BlockCursor:
    """Bounds-checked little-endian reads over one intern block."""

    __slots__ = ("path", "data", "pos", "base")

    def __init__(self, path: Path, data: bytes, base: int) -> None:
        self.path = path
        self.data = data
        self.pos = 0
        self.base = base

    def read(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise TraceFormatError(
                f"truncated column file block (wanted {n} bytes, "
                f"got {len(self.data) - self.pos})",
                path=self.path,
                offset=self.base + self.pos,
            )
        data = self.data[self.pos:end]
        self.pos = end
        return data

    def u8(self) -> int:
        return _U8.unpack(self.read(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.read(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.read(4))[0]


def _header_fail(
    path: Path, message: str, offset: Optional[int] = None
) -> TraceFormatError:
    return TraceFormatError(message, path=path, offset=offset)


def _parse_prologue(path: Path, size: int, head: bytes) -> Tuple[int, int, int]:
    """``(byteorder_flag, header_length, header_crc)`` or raise."""
    if size < _PROLOGUE.size:
        raise _header_fail(
            path, f"truncated column file ({size} bytes)", offset=0
        )
    magic, version, bo_flag, _pad, header_len, header_crc = _PROLOGUE.unpack(
        head
    )
    if magic != MAGIC:
        raise _header_fail(
            path, "not a LiLa column file (bad magic)", offset=0
        )
    if version != VERSION:
        raise _header_fail(
            path, f"unsupported column file version {version}", offset=4
        )
    if bo_flag not in (0, 1):
        raise _header_fail(path, f"bad byteorder flag {bo_flag}", offset=6)
    return bo_flag, header_len, header_crc


def _load_header(path: Path, raw: memoryview, size: int) -> Tuple[dict, int, int]:
    """Validate the prologue + JSON header; ``(header, bo_flag, data_base)``."""
    bo_flag, header_len, header_crc = _parse_prologue(
        path, size, bytes(raw[: _PROLOGUE.size]) if size >= _PROLOGUE.size else b""
    )
    header_end = _PROLOGUE.size + header_len
    if header_end > size:
        raise _header_fail(
            path,
            f"truncated column file (header wants {header_len} bytes)",
            offset=_PROLOGUE.size,
        )
    header_bytes = bytes(raw[_PROLOGUE.size:header_end])
    actual = zlib.crc32(header_bytes) & 0xFFFFFFFF
    if actual != header_crc:
        raise _header_fail(
            path,
            f"column file header is corrupt (CRC {actual:#010x}, "
            f"expected {header_crc:#010x})",
            offset=_PROLOGUE.size,
        )
    try:
        header = json.loads(header_bytes)
    except ValueError:
        raise _header_fail(
            path, "column file header is not valid JSON",
            offset=_PROLOGUE.size,
        ) from None
    if not isinstance(header, dict):
        raise _header_fail(
            path, "column file header is not an object",
            offset=_PROLOGUE.size,
        )
    return header, bo_flag, _align8(header_end)


def _parse_strings(
    path: Path, entry: Dict[str, int], data: bytes, base: int
) -> List[str]:
    cursor = _BlockCursor(path, data, base)
    strings: List[str] = []
    for _ in range(entry["count"]):
        length = cursor.u32()
        try:
            strings.append(cursor.read(length).decode("utf-8"))
        except UnicodeDecodeError:
            raise TraceFormatError(
                "column file string is not valid UTF-8",
                path=path,
                offset=base + cursor.pos - length,
            ) from None
    return strings


def _parse_stacks(
    path: Path,
    strings: List[str],
    frames_entry: Dict[str, int],
    frames_data: bytes,
    frames_base: int,
    stacks_entry: Dict[str, int],
    stacks_data: bytes,
    stacks_base: int,
) -> List[StackTrace]:
    cursor = _BlockCursor(path, frames_data, frames_base)
    frames: List[StackFrame] = []
    for _ in range(frames_entry["count"]):
        class_id, method_id = cursor.u32(), cursor.u32()
        native = cursor.u8() == 1
        if class_id >= len(strings) or method_id >= len(strings):
            raise TraceFormatError(
                f"column file frame string id out of range "
                f"({class_id}/{method_id} of {len(strings)})",
                path=path,
                offset=frames_base + cursor.pos - 9,
            )
        frames.append(StackFrame(strings[class_id], strings[method_id], native))
    cursor = _BlockCursor(path, stacks_data, stacks_base)
    stacks: List[StackTrace] = []
    for _ in range(stacks_entry["count"]):
        depth = cursor.u16()
        row: List[StackFrame] = []
        for _ in range(depth):
            frame_id = cursor.u32()
            if frame_id >= len(frames):
                raise TraceFormatError(
                    f"column file stack frame id {frame_id} out of range",
                    path=path,
                    offset=stacks_base + cursor.pos - 4,
                )
            row.append(frames[frame_id])
        stacks.append(StackTrace(row))
    return stacks


def open_column_store(path: Union[str, Path]) -> ColumnarTrace:
    """Open a `.lilac` file as a zero-copy, file-backed store.

    The column segments stay in the file: every numeric column is a
    ``memoryview.cast`` over the shared mapping, so opening is O(header
    + intern blocks), independent of the column bytes — and a store
    opened here pickles as its *path* (workers re-map, nothing is
    copied). Damage raises :class:`TraceFormatError` stamped with the
    path and byte offset. On a byteorder-alien file the columns are
    byteswap-copied instead (in-memory store, ``backing`` stays None).

    The ``lila.mmap`` fault site is ambient (checked on every open,
    like the engine's ``trace.map``), so injected map failures exercise
    the worker-side re-open path too.
    """
    path = Path(path)
    faults_runtime.check("lila.mmap", key=path.name)
    try:
        with path.open("rb") as handle:
            try:
                map_obj = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError:
                raise _header_fail(
                    path, "truncated column file (0 bytes)", offset=0
                ) from None
    except OSError as error:
        raise TraceFormatError(
            f"cannot open column file: {error}", path=path
        ) from None

    try:
        store = _open_mapped(path, map_obj)
    except Exception:
        try:
            map_obj.close()
        except BufferError:
            # The failing frame's traceback still references column
            # views; the mapping is freed when the exception is.
            pass
        raise
    if store.backing is None:
        # Byteswap-copy fallback took ownership of nothing: the mapping
        # is no longer referenced by any column view.
        map_obj.close()
    if obs_runtime.current() is not None:
        obs_runtime.count("lila.mmap_opens")
        obs_runtime.count("lila.mmap_bytes", path.stat().st_size)
    return store


def _open_mapped(path: Path, map_obj: mmap.mmap) -> ColumnarTrace:
    size = len(map_obj)
    raw = memoryview(map_obj)
    header, bo_flag, data_base = _load_header(path, raw, size)
    native_flag = 0 if sys.byteorder == "little" else 1
    copy_mode = bo_flag != native_flag

    try:
        thread_names = list(header["threads"])
        segment_entries = list(header["segments"])
        blocks = header["blocks"]
        digest = header["digest"]
        meta_dict = dict(header["metadata"])
        short_count = int(header["short_episode_count"])
    except (KeyError, TypeError, ValueError) as error:
        raise _header_fail(
            path, f"column file header is incomplete: {error!r}",
            offset=_PROLOGUE.size,
        ) from None

    def segment_bytes(entry: Dict[str, Any], what: str) -> Tuple[int, memoryview]:
        try:
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as error:
            raise _header_fail(
                path, f"bad {what} descriptor: {error!r}",
                offset=_PROLOGUE.size,
            ) from None
        absolute = data_base + offset
        if offset < 0 or nbytes < 0 or absolute + nbytes > size:
            raise TraceFormatError(
                f"truncated column file ({what} wants "
                f"[{absolute}, {absolute + nbytes}) of {size} bytes)",
                path=path,
                offset=absolute,
            )
        return absolute, raw[absolute:absolute + nbytes]

    segments: Dict[str, ColumnBuffer] = {}
    for entry in segment_entries:
        name = entry.get("name")
        typecode = entry.get("typecode")
        if typecode not in ("b", "i", "q", "d"):
            raise _header_fail(
                path,
                f"bad segment typecode {typecode!r} for {name!r}",
                offset=_PROLOGUE.size,
            )
        absolute, view = segment_bytes(entry, f"segment {name!r}")
        expected = int(entry.get("count", -1)) * ITEM_SIZES[typecode]
        if expected != len(view):
            raise TraceFormatError(
                f"segment {name!r} length mismatch "
                f"({len(view)} bytes for {entry.get('count')} items)",
                path=path,
                offset=absolute,
            )
        if copy_mode:
            copied = array(typecode)
            copied.frombytes(bytes(view))
            copied.byteswap()
            segments[name] = ColumnBuffer(typecode, copied)
        else:
            segments[name] = ColumnBuffer.view(typecode, view)

    strings_base, strings_view = segment_bytes(
        blocks["strings"], "strings block"
    )
    frames_base, frames_view = segment_bytes(blocks["frames"], "frames block")
    stacks_base, stacks_view = segment_bytes(blocks["stacks"], "stacks block")
    strings = _parse_strings(
        path, blocks["strings"], bytes(strings_view), strings_base
    )
    stacks = _parse_stacks(
        path,
        strings,
        blocks["frames"],
        bytes(frames_view),
        frames_base,
        blocks["stacks"],
        bytes(stacks_view),
        stacks_base,
    )

    threads: List[_ThreadColumns] = []
    for index, name in enumerate(thread_names):
        buffers: Dict[str, ColumnBuffer] = {}
        for attr, _typecode in THREAD_COLUMN_SPECS:
            buffer = segments.get(f"t{index}.{attr}")
            if buffer is None:
                raise _header_fail(
                    path,
                    f"column file is missing segment t{index}.{attr}",
                    offset=_PROLOGUE.size,
                )
            buffers[attr] = buffer
        threads.append(_ThreadColumns.from_buffers(name, buffers))
    sample_columns: Dict[str, Any] = {}
    for attr, _typecode in SAMPLE_COLUMN_SPECS:
        buffer = segments.get(f"s.{attr}")
        if buffer is None:
            raise _header_fail(
                path, f"column file is missing segment s.{attr}",
                offset=_PROLOGUE.size,
            )
        sample_columns[attr] = buffer.data

    try:
        metadata = TraceMetadata(
            application=meta_dict["application"],
            session_id=meta_dict["session_id"],
            start_ns=int(meta_dict["start_ns"]),
            end_ns=int(meta_dict["end_ns"]),
            gui_thread=meta_dict["gui_thread"],
            sample_period_ns=int(meta_dict["sample_period_ns"]),
            filter_ms=float(meta_dict["filter_ms"]),
            extra=meta_dict.get("extra") or {},
        )
    except (KeyError, TypeError, ValueError) as error:
        raise _header_fail(
            path, f"bad column file metadata: {error!r}",
            offset=_PROLOGUE.size,
        ) from None
    except LagAlyzerError as error:
        raise _header_fail(
            path, f"bad column file metadata: {error}",
            offset=_PROLOGUE.size,
        ) from None

    store = ColumnarTrace(
        metadata=metadata,
        strings=strings,
        strings_map=None,
        threads=threads,
        thread_map={name: index for index, name in enumerate(thread_names)},
        sample_ts=sample_columns["sample_ts"],
        sample_offsets=sample_columns["sample_offsets"],
        entry_thread=sample_columns["entry_thread"],
        entry_state=sample_columns["entry_state"],
        entry_stack=sample_columns["entry_stack"],
        sample_runnable=sample_columns["sample_runnable"],
        stacks=stacks,
        short_episode_count=short_count,
    )
    store._content_digest = digest
    if not copy_mode:
        store.backing = ColumnFileBacking(path, map_obj, size, digest)
    return store


def open_column_trace(path: Union[str, Path]) -> FacadeTrace:
    """Open a `.lilac` file as a lazy :class:`FacadeTrace`.

    The facade carries the header's content digest, so the engine's
    cache probe never re-serializes the trace just to key it.
    """
    store = open_column_store(path)
    trace = FacadeTrace(store)
    trace._content_digest = store._content_digest
    return trace


# ----------------------------------------------------------------------
# The TraceSource view (for convert and uniform consumers)
# ----------------------------------------------------------------------


class ColumnTraceSource(TraceSource):
    """A :class:`~repro.lila.source.TraceSource` over a `.lilac` file.

    :func:`~repro.lila.source.build_store` short-circuits through
    :meth:`open_store` — ingesting a column file *is* opening it, no
    records are replayed. :meth:`records` still yields the full record
    stream (replayed from the columns) for consumers that genuinely
    need events, e.g. ``repro trace convert`` back to text or binary.
    """

    encoding = "columns"
    wrap_errors = False

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.line = None
        self.offset = None
        self._store: Optional[ColumnarTrace] = None

    def open_store(self) -> ColumnarTrace:
        """The mmap-backed store (opened once, then reused)."""
        if self._store is None:
            self._store = open_column_store(self.path)
        return self._store

    def records(self):
        """Replay the store as the standard ``REC_*`` record stream."""
        from repro.core.store import (
            REC_CLOSE,
            REC_ENTRY,
            REC_FILTERED,
            REC_GC,
            REC_META,
            REC_OPEN,
            REC_THREAD,
            REC_TICK,
        )
        from repro.core.store.columns import _GC_CODE, _KINDS, _STATES

        store = self.open_store()
        meta = store.metadata
        yield (REC_META, "application", meta.application, False)
        yield (REC_META, "session_id", meta.session_id, False)
        yield (REC_META, "start_ns", meta.start_ns, False)
        yield (REC_META, "end_ns", meta.end_ns, False)
        yield (REC_META, "gui_thread", meta.gui_thread, False)
        yield (REC_META, "sample_period_ns", meta.sample_period_ns, False)
        yield (REC_META, "filter_ms", meta.filter_ms, False)
        for key in sorted(meta.extra):
            yield (REC_META, key, meta.extra[key], True)
        yield (REC_FILTERED, store.short_episode_count)

        strings = store.strings
        for columns in store.threads:
            yield (REC_THREAD, columns.name)
            kind = columns.kind
            start = columns.start
            end = columns.end
            symbol = columns.symbol
            csize = columns.size
            closes: List[Tuple[int, int]] = []
            for row in range(len(columns)):
                while closes and row >= closes[-1][0]:
                    yield (REC_CLOSE, closes.pop()[1])
                if kind[row] == _GC_CODE and csize[row] == 1:
                    yield (
                        REC_GC, start[row], end[row], strings[symbol[row]]
                    )
                else:
                    yield (
                        REC_OPEN,
                        start[row],
                        _KINDS[kind[row]],
                        strings[symbol[row]],
                    )
                    closes.append((row + csize[row], end[row]))
            while closes:
                yield (REC_CLOSE, closes.pop()[1])

        entry_thread = store.entry_thread
        entry_state = store.entry_state
        entry_stack = store.entry_stack
        for tick in range(len(store.sample_ts)):
            yield (REC_TICK, store.sample_ts[tick])
            for entry in range(store.sample_offsets[tick],
                               store.sample_offsets[tick + 1]):
                yield (
                    REC_ENTRY,
                    strings[entry_thread[entry]],
                    _STATES[entry_state[entry]],
                    store.stacks[entry_stack[entry]],
                )
