"""LiLa-style trace file format.

The paper's traces are produced by LiLa, a listener-latency profiler.
This package defines a textual, versioned trace format with the same
record vocabulary LiLa gives LagAlyzer — session metadata, per-thread
interval open/close events, complete GC intervals, multi-thread stack
samples, and the count of episodes filtered at trace time — plus a
writer and reader with a round-trip guarantee.
"""

from repro.lila.autodetect import detect_format, expand_trace_paths, load_trace
from repro.lila.binary import read_trace_binary, write_trace_binary
from repro.lila.colfile import (
    ColumnTraceSource,
    open_column_store,
    open_column_trace,
    write_column_file,
)
from repro.lila.digest import file_digest, trace_digest
from repro.lila.format import FORMAT_VERSION, MAGIC
from repro.lila.reader import read_trace, read_trace_lines
from repro.lila.source import (
    BinaryTraceSource,
    LinesTraceSource,
    RecordFeed,
    TextTraceSource,
    TraceSource,
    build_store,
    build_trace,
    open_source,
)
from repro.lila.validation import lint_trace
from repro.lila.writer import write_trace, trace_to_lines

__all__ = [
    "BinaryTraceSource",
    "ColumnTraceSource",
    "FORMAT_VERSION",
    "LinesTraceSource",
    "MAGIC",
    "RecordFeed",
    "TextTraceSource",
    "TraceSource",
    "build_store",
    "build_trace",
    "detect_format",
    "expand_trace_paths",
    "file_digest",
    "lint_trace",
    "open_column_store",
    "open_column_trace",
    "open_source",
    "trace_digest",
    "load_trace",
    "read_trace",
    "read_trace_binary",
    "read_trace_lines",
    "trace_to_lines",
    "write_column_file",
    "write_trace",
    "write_trace_binary",
]
