"""Trace linting: diagnostics beyond hard format errors.

The reader rejects traces that are structurally *invalid* (bad records,
nesting violations). This module finds traces that are valid but
*suspicious* — signs of a broken or misconfigured profiler that would
silently skew every analysis: sampling gaps without a GC to explain
them, episodes with impossible durations, GC intervals missing from
some threads, sample rates far from the declared period, and so on.

Each finding is a :class:`Diagnostic` with a severity; ``lint_trace``
never raises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.core.intervals import IntervalKind, NS_PER_MS
from repro.core.trace import Trace


class Severity(enum.Enum):
    """How bad a finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value.upper():<8s} {self.code}: {self.message}"


def _check_episode_durations(trace: Trace, out: List[Diagnostic]) -> None:
    filter_ns = round(trace.metadata.filter_ms * NS_PER_MS)
    below = [ep for ep in trace.episodes if ep.duration_ns < filter_ns]
    if below:
        out.append(
            Diagnostic(
                Severity.WARNING,
                "EP001",
                f"{len(below)} episode(s) shorter than the declared "
                f"{trace.metadata.filter_ms:g} ms trace filter — the "
                f"profiler's filter looks inconsistent",
            )
        )
    absurd = [ep for ep in trace.episodes if ep.duration_ms > 600_000]
    if absurd:
        out.append(
            Diagnostic(
                Severity.WARNING,
                "EP002",
                f"{len(absurd)} episode(s) longer than 10 minutes — "
                f"likely a missing episode-end record",
            )
        )


def _check_gc_replication(trace: Trace, out: List[Diagnostic]) -> None:
    """Stop-the-world GCs must appear once per thread."""
    gc_spans_by_thread = {}
    for thread, roots in trace.thread_roots.items():
        spans = set()
        for root in roots:
            for node in root.preorder():
                if node.kind is IntervalKind.GC:
                    spans.add((node.start_ns, node.end_ns))
        gc_spans_by_thread[thread] = spans
    reference = gc_spans_by_thread.get(trace.gui_thread, set())
    for thread, spans in gc_spans_by_thread.items():
        if thread == trace.gui_thread:
            continue
        missing = reference - spans
        if missing:
            out.append(
                Diagnostic(
                    Severity.WARNING,
                    "GC001",
                    f"thread {thread!r} is missing {len(missing)} GC "
                    f"interval(s) present in the GUI thread — "
                    f"stop-the-world collections should appear in every "
                    f"thread's tree",
                )
            )


def _check_samples(trace: Trace, out: List[Diagnostic]) -> None:
    if not trace.samples:
        if trace.episodes:
            out.append(
                Diagnostic(
                    Severity.WARNING,
                    "SM001",
                    "trace has episodes but no call-stack samples — the "
                    "location/cause analyses will be empty",
                )
            )
        return
    # Samples during GC mean the profiler ignored the JVMTI blackout.
    gc_spans = [
        (gc.start_ns, gc.end_ns) for gc in trace.gc_intervals()
    ]
    inside = 0
    for sample in trace.samples:
        if any(start <= sample.timestamp_ns < end for start, end in gc_spans):
            inside += 1
    if inside:
        out.append(
            Diagnostic(
                Severity.ERROR,
                "SM002",
                f"{inside} sample(s) taken during garbage collection — "
                f"impossible under JVMTI; the trace's GC bounds or "
                f"sample clock are wrong",
            )
        )
    # Thread coverage should be constant across ticks.
    thread_counts = {len(sample.threads) for sample in trace.samples}
    if len(thread_counts) > 3:
        out.append(
            Diagnostic(
                Severity.INFO,
                "SM003",
                f"sample ticks cover between {min(thread_counts)} and "
                f"{max(thread_counts)} threads — threads appear to come "
                f"and go (fine, but worth knowing)",
            )
        )


def _check_sample_rate(trace: Trace, out: List[Diagnostic]) -> None:
    """Within episodes, the sample spacing should match the period."""
    period = trace.metadata.sample_period_ns
    if period <= 0 or len(trace.samples) < 10:
        return
    gaps = []
    for episode in trace.episodes:
        times = [s.timestamp_ns for s in episode.samples]
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    if not gaps:
        return
    gaps.sort()
    median_gap = gaps[len(gaps) // 2]
    if median_gap > period * 2 or median_gap < period / 2:
        out.append(
            Diagnostic(
                Severity.WARNING,
                "SM004",
                f"median in-episode sample spacing is "
                f"{median_gap / NS_PER_MS:.1f} ms but the declared period "
                f"is {period / NS_PER_MS:.1f} ms",
            )
        )


def _check_session_shape(trace: Trace, out: List[Diagnostic]) -> None:
    if not trace.episodes and trace.short_episode_count == 0:
        out.append(
            Diagnostic(
                Severity.WARNING,
                "TR001",
                "trace contains no episodes at all — was the session empty?",
            )
        )
    if trace.in_episode_fraction() > 0.95:
        out.append(
            Diagnostic(
                Severity.INFO,
                "TR002",
                f"in-episode time is "
                f"{100 * trace.in_episode_fraction():.0f}% of the session "
                f"— no user think time; this looks like a replay, not an "
                f"interactive session",
            )
        )


def lint_trace(trace: Trace) -> List[Diagnostic]:
    """Run every check over ``trace``; returns findings, worst first."""
    findings: List[Diagnostic] = []
    _check_episode_durations(trace, findings)
    _check_gc_replication(trace, findings)
    _check_samples(trace, findings)
    _check_sample_rate(trace, findings)
    _check_session_shape(trace, findings)
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda d: (order[d.severity], d.code))
    return findings


def has_errors(diagnostics: List[Diagnostic]) -> bool:
    """True if any finding is an ERROR."""
    return any(d.severity is Severity.ERROR for d in diagnostics)
