"""Serializing a :class:`~repro.core.trace.Trace` to the LiLa format.

Interval trees are flattened back to the open/close event stream a
profiler would have produced, thread by thread; complete GC intervals
use the dedicated ``G`` record so readers can re-insert them with
:meth:`IntervalTreeBuilder.add_complete`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Union

from repro.core.intervals import Interval, IntervalKind
from repro.core.trace import Trace
from repro.lila.format import (
    check_symbol,
    encode_stack,
    header_line,
)


def _interval_lines(interval: Interval) -> Iterator[str]:
    """Yield open/close (or G) records for one interval subtree."""
    if interval.kind is IntervalKind.GC and not interval.children:
        yield (
            f"G {interval.start_ns} {interval.end_ns} "
            f"{check_symbol(interval.symbol)}"
        )
        return
    yield (
        f"O {interval.start_ns} {interval.kind.value} "
        f"{check_symbol(interval.symbol)}"
    )
    for child in interval.children:
        yield from _interval_lines(child)
    yield f"C {interval.end_ns}"


def trace_to_lines(trace: Trace) -> List[str]:
    """Serialize ``trace`` to format lines (without line terminators)."""
    meta = trace.metadata
    lines = [header_line()]
    lines.append(f"M application {check_symbol(meta.application, 'application')}")
    lines.append(f"M session_id {check_symbol(meta.session_id, 'session id')}")
    lines.append(f"M start_ns {meta.start_ns}")
    lines.append(f"M end_ns {meta.end_ns}")
    lines.append(f"M gui_thread {check_symbol(meta.gui_thread, 'thread name')}")
    lines.append(f"M sample_period_ns {meta.sample_period_ns}")
    lines.append(f"M filter_ms {meta.filter_ms!r}")
    for key in sorted(meta.extra):
        lines.append(
            f"M x.{check_symbol(key, 'metadata key')} "
            f"{check_symbol(meta.extra[key], 'metadata value')}"
        )
    lines.append(f"F {trace.short_episode_count}")
    for thread_name in trace.thread_names:
        lines.append(f"T {check_symbol(thread_name, 'thread name')}")
        for root in trace.thread_roots[thread_name]:
            lines.extend(_interval_lines(root))
    for sample in trace.samples:
        lines.append(f"P {sample.timestamp_ns}")
        for entry in sample.threads:
            lines.append(
                f"t {check_symbol(entry.thread_name, 'thread name')} "
                f"{entry.state.value} {encode_stack(entry.stack)}"
            )
    return lines


def write_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in the LiLa text format.

    Returns:
        The path written, as a :class:`~pathlib.Path`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in trace_to_lines(trace):
            handle.write(line)
            handle.write("\n")
    return path
