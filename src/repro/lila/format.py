"""Record grammar of the LiLa-style trace format.

A trace file is UTF-8 text, one record per line:

========  =====================================================
``#%lila <version>``   magic header, must be the first line
``M <key> <value>``    metadata (application, session_id, ...)
``F <count>``          count of episodes filtered at trace time
``T <thread>``         start of a thread section
``O <ns> <kind> <symbol>``  open an interval in the current thread
``C <ns>``             close the innermost open interval
``G <ns> <ns> <symbol>``    complete GC interval (start end)
``P <ns>``             a sampling tick
``t <thread> <state> <stack>``  one thread's entry of the tick
``#`` ...              comment, ignored
========  =====================================================

Stacks are ``;``-separated frames, leaf first; each frame is
``class#method`` with a leading ``!`` marking a native frame. An empty
stack is the single token ``-``.
"""

from __future__ import annotations


from repro.core.errors import TraceFormatError
from repro.core.samples import StackFrame, StackTrace

MAGIC = "#%lila"
FORMAT_VERSION = 1

FRAME_SEPARATOR = ";"
FRAME_MEMBER_SEPARATOR = "#"
NATIVE_MARKER = "!"
EMPTY_STACK_TOKEN = "-"

#: Characters that may not appear in symbols, thread names, or metadata
#: keys because the format is whitespace-delimited.
FORBIDDEN = (" ", "\t", "\n", FRAME_SEPARATOR)


def check_symbol(symbol: str, what: str = "symbol") -> str:
    """Validate that ``symbol`` can be stored in the format unescaped.

    Raises:
        TraceFormatError: when the symbol is empty or contains
            whitespace/separator characters.
    """
    if not symbol:
        raise TraceFormatError(f"empty {what} cannot be serialized")
    for char in FORBIDDEN:
        if char in symbol:
            raise TraceFormatError(
                f"{what} {symbol!r} contains forbidden character {char!r}"
            )
    return symbol


def encode_frame(frame: StackFrame) -> str:
    """Serialize one stack frame."""
    prefix = NATIVE_MARKER if frame.is_native else ""
    return (
        f"{prefix}{frame.class_name}"
        f"{FRAME_MEMBER_SEPARATOR}{frame.method_name}"
    )


def decode_frame(token: str) -> StackFrame:
    """Parse one stack frame token.

    Raises:
        TraceFormatError: if the token lacks the class/method separator.
    """
    is_native = token.startswith(NATIVE_MARKER)
    if is_native:
        token = token[len(NATIVE_MARKER):]
    class_name, sep, method_name = token.rpartition(FRAME_MEMBER_SEPARATOR)
    if not sep or not class_name or not method_name:
        raise TraceFormatError(f"malformed stack frame token {token!r}")
    return StackFrame(class_name, method_name, is_native=is_native)


def encode_stack(stack: StackTrace) -> str:
    """Serialize a stack, leaf first; empty stacks become ``-``."""
    if not stack.frames:
        return EMPTY_STACK_TOKEN
    return FRAME_SEPARATOR.join(encode_frame(frame) for frame in stack)


def decode_stack(token: str) -> StackTrace:
    """Parse a serialized stack."""
    if token == EMPTY_STACK_TOKEN:
        return StackTrace(())
    frames = [
        decode_frame(part) for part in token.split(FRAME_SEPARATOR) if part
    ]
    return StackTrace(frames)


def header_line() -> str:
    """The magic first line of a trace file."""
    return f"{MAGIC} {FORMAT_VERSION}"


def parse_header(line: str) -> int:
    """Validate the magic line and return the format version.

    Raises:
        TraceFormatError: when the magic is missing or the version is
            unsupported.
    """
    parts = line.split()
    if len(parts) != 2 or parts[0] != MAGIC:
        raise TraceFormatError(
            f"not a LiLa trace (expected {MAGIC!r} header, got {line!r})"
        )
    try:
        version = int(parts[1])
    except ValueError:
        raise TraceFormatError(f"bad version in header {line!r}") from None
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {version} "
            f"(this reader supports {FORMAT_VERSION})"
        )
    return version
