"""Stable content digests of session traces.

The engine's on-disk result cache (:mod:`repro.engine.cache`) is
content-addressed: a cached analysis partial is valid exactly as long
as the trace bytes it was computed from are unchanged. This module
provides the digest both for in-memory traces (hashing the canonical
text serialization, so a trace digests identically no matter whether it
was simulated, loaded from text, or loaded from binary) and for trace
files (hashing raw bytes, cheaper when the file is already on disk).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

from repro.core.trace import Trace

#: Attribute used to memoize a trace's digest. Traces are immutable
#: once built, so the digest never needs invalidation.
_MEMO_ATTR = "_content_digest"

_CHUNK = 1 << 20


def trace_digest(trace: Trace) -> str:
    """Hex digest of a trace's canonical (text-format) content.

    The digest is computed once per Trace object and memoized; it is
    stable across processes and runs because the text serialization is
    fully deterministic (sorted metadata, ordered threads, sorted
    samples).
    """
    memo = getattr(trace, _MEMO_ATTR, None)
    if memo is not None:
        return memo
    from repro.obs import runtime as obs_runtime

    with obs_runtime.maybe_span(
        "lila.trace_digest", metric="lila.digest_ms"
    ):
        # Columnar-backed traces serialize straight from the columns;
        # both paths produce the identical canonical byte stream. A
        # store opened from a `.lilac` file already knows its digest
        # (carried in the file header) — adopt it instead of
        # re-serializing the whole trace.
        store = getattr(trace, "columnar", None)
        if store is not None:
            memo = getattr(store, _MEMO_ATTR, None)
            if memo is not None:
                setattr(trace, _MEMO_ATTR, memo)
                return memo
            lines = store.canonical_lines()
        else:
            from repro.lila.writer import trace_to_lines

            lines = trace_to_lines(trace)
        digest = hashlib.sha256()
        for line in lines:
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        value = digest.hexdigest()
    setattr(trace, _MEMO_ATTR, value)
    return value


def file_digest(path: Union[str, Path]) -> str:
    """Hex digest of a trace file's raw bytes (streamed)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
