"""Parsing LiLa-format trace files back into :class:`Trace` objects."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.core.errors import LagAlyzerError, TraceFormatError
from repro.core.intervals import Interval, IntervalKind, IntervalTreeBuilder
from repro.core.samples import Sample, ThreadSample, ThreadState
from repro.core.trace import Trace, TraceMetadata
from repro.faults import runtime as faults_runtime
from repro.lila.format import decode_stack, parse_header
from repro.obs import runtime as obs_runtime

_REQUIRED_META = (
    "application",
    "session_id",
    "start_ns",
    "end_ns",
    "gui_thread",
)


class _ParserState:
    """Mutable state threaded through the line-by-line parse."""

    def __init__(self) -> None:
        self.meta: Dict[str, str] = {}
        self.extra: Dict[str, str] = {}
        self.short_count = 0
        self.builders: Dict[str, IntervalTreeBuilder] = {}
        self.thread_order: List[str] = []
        self.current_thread: Optional[str] = None
        self.samples: List[Sample] = []
        self.pending_tick_ns: Optional[int] = None
        self.pending_entries: List[ThreadSample] = []

    def builder(self) -> IntervalTreeBuilder:
        if self.current_thread is None:
            raise TraceFormatError("interval record before any T record")
        return self.builders[self.current_thread]

    def flush_sample(self) -> None:
        if self.pending_tick_ns is not None:
            self.samples.append(
                Sample(self.pending_tick_ns, self.pending_entries)
            )
            self.pending_tick_ns = None
            self.pending_entries = []


def _parse_line(state: _ParserState, line_no: int, line: str) -> None:
    record, _, rest = line.partition(" ")
    if record == "M":
        key, _, value = rest.partition(" ")
        if not key or not value:
            raise TraceFormatError(f"line {line_no}: malformed M record")
        if key.startswith("x."):
            state.extra[key[2:]] = value
        else:
            state.meta[key] = value
    elif record == "F":
        try:
            state.short_count = int(rest)
        except ValueError:
            raise TraceFormatError(
                f"line {line_no}: bad filtered-episode count {rest!r}"
            ) from None
    elif record == "T":
        state.flush_sample()
        thread = rest.strip()
        if not thread:
            raise TraceFormatError(f"line {line_no}: empty thread name")
        if thread not in state.builders:
            state.builders[thread] = IntervalTreeBuilder()
            state.thread_order.append(thread)
        state.current_thread = thread
    elif record == "O":
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(f"line {line_no}: malformed O record")
        start_ns = _parse_ns(parts[0], line_no)
        try:
            kind = IntervalKind.from_name(parts[1])
        except ValueError as error:
            raise TraceFormatError(f"line {line_no}: {error}") from None
        state.builder().open(kind, parts[2], start_ns)
    elif record == "C":
        state.builder().close(_parse_ns(rest, line_no))
    elif record == "G":
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(f"line {line_no}: malformed G record")
        state.builder().add_complete(
            IntervalKind.GC,
            parts[2],
            _parse_ns(parts[0], line_no),
            _parse_ns(parts[1], line_no),
        )
    elif record == "P":
        state.flush_sample()
        state.pending_tick_ns = _parse_ns(rest, line_no)
    elif record == "t":
        if state.pending_tick_ns is None:
            raise TraceFormatError(f"line {line_no}: t record outside a tick")
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(f"line {line_no}: malformed t record")
        try:
            thread_state = ThreadState.from_name(parts[1])
        except ValueError as error:
            raise TraceFormatError(f"line {line_no}: {error}") from None
        state.pending_entries.append(
            ThreadSample(parts[0], thread_state, decode_stack(parts[2]))
        )
    else:
        raise TraceFormatError(
            f"line {line_no}: unknown record type {record!r}"
        )


def _parse_ns(token: str, line_no: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad timestamp {token!r}"
        ) from None


def read_trace_lines(lines: Iterable[str]) -> Trace:
    """Parse format lines into a validated :class:`Trace`.

    Every failure mode of a damaged file — malformed records, nesting
    violations, intervals left open by truncation, structurally
    impossible traces — surfaces as :class:`TraceFormatError` (with the
    offending line number for record-level damage), never as an
    untyped exception and never as a silently half-parsed trace.

    Raises:
        TraceFormatError: on any malformed record, missing metadata, or
            nesting violation.
    """
    iterator = iter(lines)
    try:
        first = next(iterator)
    except StopIteration:
        raise TraceFormatError("empty trace input") from None
    parse_header(first.rstrip("\n"))

    state = _ParserState()
    for line_no, raw in enumerate(iterator, start=2):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        try:
            _parse_line(state, line_no, line)
        except TraceFormatError:
            raise
        except LagAlyzerError as error:
            # Nesting violations from the interval builder carry no
            # position; re-typing them here pins the damage to a line.
            raise TraceFormatError(f"line {line_no}: {error}") from None
    state.flush_sample()

    for key in _REQUIRED_META:
        if key not in state.meta:
            raise TraceFormatError(f"missing required metadata {key!r}")

    try:
        metadata = TraceMetadata(
            application=state.meta["application"],
            session_id=state.meta["session_id"],
            start_ns=int(state.meta["start_ns"]),
            end_ns=int(state.meta["end_ns"]),
            gui_thread=state.meta["gui_thread"],
            sample_period_ns=int(
                state.meta.get("sample_period_ns", 10_000_000)
            ),
            filter_ms=float(state.meta.get("filter_ms", 3.0)),
            extra=state.extra,
        )
    except ValueError as error:
        raise TraceFormatError(f"bad metadata value: {error}") from None
    try:
        thread_roots = {
            thread: builder.finish()
            for thread, builder in state.builders.items()
        }
        trace = Trace(
            metadata,
            thread_roots,
            samples=state.samples,
            short_episode_count=state.short_count,
        )
        trace.validate()
    except TraceFormatError:
        raise
    except LagAlyzerError as error:
        # Intervals left open by a truncated file (or an impossible
        # structure) surface at finish/validate time; same contract:
        # damage always raises the typed parse error.
        raise TraceFormatError(str(error)) from None
    return trace


def read_trace(path: Union[str, Path]) -> Trace:
    """Read and validate a LiLa-format trace file."""
    path = Path(path)
    with obs_runtime.maybe_span(
        "lila.read_trace", metric="lila.parse_ms", path=path.name, format="text"
    ):
        faults_runtime.check("lila.read", key=path.name)
        with path.open("r", encoding="utf-8") as handle:
            lines = faults_runtime.filter_lines("lila.read", path.name, handle)
            trace = read_trace_lines(lines)
    if obs_runtime.current() is not None:
        obs_runtime.count("lila.traces_parsed")
        try:
            obs_runtime.count("lila.bytes_read", path.stat().st_size)
        except OSError:
            pass
    return trace
