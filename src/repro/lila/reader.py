"""Parsing LiLa-format trace files back into :class:`Trace` objects.

Since the columnar refactor this module is a thin shim: the actual
parse is one streaming pass through
:class:`~repro.lila.source.TextTraceSource` into a columnar store (see
:mod:`repro.core.store`), and the returned trace is a
:class:`~repro.core.store.FacadeTrace` — the classic ``Trace`` API,
materialized lazily. Error behavior is unchanged message for message;
every :class:`TraceFormatError` now additionally carries ``path`` and
``line`` attributes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.core.trace import Trace
from repro.lila.source import LinesTraceSource, TextTraceSource, build_trace
from repro.obs import runtime as obs_runtime


def read_trace_lines(lines: Iterable[str]) -> Trace:
    """Parse format lines into a validated :class:`Trace`.

    Every failure mode of a damaged file — malformed records, nesting
    violations, intervals left open by truncation, structurally
    impossible traces — surfaces as :class:`TraceFormatError` (with the
    offending line number for record-level damage), never as an
    untyped exception and never as a silently half-parsed trace.

    Raises:
        TraceFormatError: on any malformed record, missing metadata, or
            nesting violation.
    """
    return build_trace(LinesTraceSource(lines))


def read_trace(path: Union[str, Path]) -> Trace:
    """Read and validate a LiLa-format trace file."""
    path = Path(path)
    with obs_runtime.maybe_span(
        "lila.read_trace", metric="lila.parse_ms", path=path.name, format="text"
    ):
        trace = build_trace(TextTraceSource(path, faults=True))
    if obs_runtime.current() is not None:
        obs_runtime.count("lila.traces_parsed")
        try:
            obs_runtime.count("lila.bytes_read", path.stat().st_size)
        except OSError:
            pass
    return trace
