"""One streaming ingestion abstraction over every trace encoding.

A :class:`TraceSource` turns a trace — text file, binary file, or an
in-memory iterable of format lines — into a single validated stream of
records (the ``REC_*`` vocabulary of :mod:`repro.core.store`). Record
syntax is checked as each record is produced, so damage surfaces while
streaming with its position attached: text sources stamp the 1-based
line number, the binary source the byte offset, and both the file path,
onto every :class:`~repro.core.errors.TraceFormatError`.

:func:`build_trace` is the one ingestion driver: it feeds any source
into a :class:`~repro.core.store.ColumnarBuilder` and returns a
:class:`~repro.core.store.FacadeTrace` — the classic ``Trace`` API over
a columnar store, built in one pass without materializing an object per
interval. The legacy entry points (``read_trace``, ``read_trace_lines``,
``read_trace_binary``, ``load_trace``) are thin wrappers over this
module and raise exactly the errors they always did.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.core.errors import LagAlyzerError, TraceFormatError
from repro.core.intervals import IntervalKind
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.core.store import (
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
    ColumnarBuilder,
    ColumnarTrace,
    FacadeTrace,
)
from repro.faults import runtime as faults_runtime
from repro.lila import binary as binary_format
from repro.lila.format import decode_stack, parse_header


class TraceSource:
    """A one-pass, validated record stream over one trace.

    Attributes:
        path: the backing file, or None for in-memory input.
        encoding: ``"text"``, ``"binary"``, or ``"lines"``.
        line: 1-based line number of the record last produced (text).
        offset: byte offset of the field last read (binary).
        wrap_errors: whether the ingestion driver should re-type
            nesting/analysis errors as position-carrying
            :class:`TraceFormatError` (the text readers' contract) or
            let them propagate raw (the binary reader's contract).
    """

    encoding = "unknown"
    wrap_errors = True
    path: Optional[Path] = None
    line: Optional[int] = None
    offset: Optional[int] = None

    def records(self) -> Iterator[tuple]:
        """Yield validated ``REC_*`` records in stream order."""
        raise NotImplementedError

    def open_store(self) -> Optional[ColumnarTrace]:
        """A ready-made store, bypassing the record stream, or ``None``.

        Sources whose on-disk layout *is* the columnar store (the
        `.lilac` column file) override this;
        :func:`build_store` then adopts the store directly instead of
        replaying and re-building every record.
        """
        return None

    def annotate(self, error: TraceFormatError) -> TraceFormatError:
        """Stamp this source's position onto ``error`` (idempotent)."""
        if error.path is None:
            error.path = self.path
        if error.line is None and error.offset is None:
            error.line = self.line
            error.offset = self.offset
        return error

    def label(self) -> str:
        """Short human-readable identity for logs and quarantine."""
        return self.path.name if self.path is not None else f"<{self.encoding}>"


def _parse_ns(token: str, line_no: int, path: Optional[Path]) -> int:
    try:
        return int(token)
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad timestamp {token!r}",
            path=path,
            line=line_no,
        ) from None


#: Successful kind/state token lookups, memoized process-wide: the
#: token vocabulary is tiny and hot (one lookup per O and per t record).
_KINDS_BY_TOKEN: Dict[str, IntervalKind] = {}
_STATES_BY_TOKEN: Dict[str, ThreadState] = {}


class _ParseState:
    """Cross-line parser state shared by pull and push text parsing."""

    __slots__ = ("in_tick",)

    def __init__(self) -> None:
        self.in_tick = False


def _parse_body_line(
    source: "TraceSource", line_no: int, line: str, state: _ParseState
) -> Optional[tuple]:
    """Parse one non-header format line into a validated record.

    Returns ``None`` for blank/comment lines; raises line-stamped
    :class:`TraceFormatError` for any damage — exactly the classic text
    reader's contract, shared by the streaming sources and the push-mode
    :class:`RecordFeed` the ingest daemon drives.
    """
    if not line or line.startswith("#"):
        return None
    path = source.path
    stack_cache = source._stack_cache
    in_tick = state.in_tick
    record, _, rest = line.partition(" ")
    if record == "t":
        if not in_tick:
            raise TraceFormatError(
                f"line {line_no}: t record outside a tick",
                path=path,
                line=line_no,
            )
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(
                f"line {line_no}: malformed t record",
                path=path,
                line=line_no,
            )
        thread_state = _STATES_BY_TOKEN.get(parts[1])
        if thread_state is None:
            try:
                thread_state = ThreadState.from_name(parts[1])
            except ValueError as error:
                raise TraceFormatError(
                    f"line {line_no}: {error}", path=path, line=line_no
                ) from None
            _STATES_BY_TOKEN[parts[1]] = thread_state
        token = parts[2]
        stack = stack_cache.get(token)
        if stack is None:
            try:
                stack = decode_stack(token)
            except TraceFormatError as error:
                raise source.annotate(error)
            stack_cache[token] = stack
        return (REC_ENTRY, parts[0], thread_state, stack)
    elif record == "O":
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(
                f"line {line_no}: malformed O record",
                path=path,
                line=line_no,
            )
        start_ns = _parse_ns(parts[0], line_no, path)
        kind = _KINDS_BY_TOKEN.get(parts[1])
        if kind is None:
            try:
                kind = IntervalKind.from_name(parts[1])
            except ValueError as error:
                raise TraceFormatError(
                    f"line {line_no}: {error}", path=path, line=line_no
                ) from None
            _KINDS_BY_TOKEN[parts[1]] = kind
        return (REC_OPEN, start_ns, kind, parts[2])
    elif record == "C":
        return (REC_CLOSE, _parse_ns(rest, line_no, path))
    elif record == "P":
        state.in_tick = True
        return (REC_TICK, _parse_ns(rest, line_no, path))
    elif record == "G":
        parts = rest.split(" ", 2)
        if len(parts) != 3:
            raise TraceFormatError(
                f"line {line_no}: malformed G record",
                path=path,
                line=line_no,
            )
        return (
            REC_GC,
            _parse_ns(parts[0], line_no, path),
            _parse_ns(parts[1], line_no, path),
            parts[2],
        )
    elif record == "T":
        thread = rest.strip()
        if not thread:
            raise TraceFormatError(
                f"line {line_no}: empty thread name",
                path=path,
                line=line_no,
            )
        state.in_tick = False
        return (REC_THREAD, thread)
    elif record == "M":
        key, _, value = rest.partition(" ")
        if not key or not value:
            raise TraceFormatError(
                f"line {line_no}: malformed M record",
                path=path,
                line=line_no,
            )
        if key.startswith("x."):
            return (REC_META, key[2:], value, True)
        return (REC_META, key, value, False)
    elif record == "F":
        try:
            count = int(rest)
        except ValueError:
            raise TraceFormatError(
                f"line {line_no}: bad filtered-episode count {rest!r}",
                path=path,
                line=line_no,
            ) from None
        return (REC_FILTERED, count)
    raise TraceFormatError(
        f"line {line_no}: unknown record type {record!r}",
        path=path,
        line=line_no,
    )


def _text_records(
    source: "TraceSource", lines: Iterable[str]
) -> Iterator[tuple]:
    """The shared text-format record generator (strict, line-stamped)."""
    iterator = iter(lines)
    try:
        first = next(iterator)
    except StopIteration:
        raise TraceFormatError("empty trace input", path=source.path) from None
    source.line = 1
    try:
        parse_header(first.rstrip("\n"))
    except TraceFormatError as error:
        raise source.annotate(error)

    state = _ParseState()
    for line_no, raw in enumerate(iterator, start=2):
        source.line = line_no
        record = _parse_body_line(source, line_no, raw.rstrip("\n"), state)
        if record is not None:
            yield record


class RecordFeed(TraceSource):
    """Push-mode text-format parser: feed lines, receive records.

    The pull sources above wrap an iterable that must be complete before
    parsing starts; the ingest daemon instead receives lines a batch at
    a time from a live client and needs records *as they arrive*.
    :meth:`feed` accepts one format line (the first must be the header)
    and returns the validated record it encodes, or ``None`` for the
    header and for blank/comment lines. Validation, error messages, and
    line stamping are identical to :class:`TextTraceSource` — both run
    :func:`_parse_body_line`.
    """

    encoding = "push"
    wrap_errors = True

    def __init__(self, label: Optional[str] = None) -> None:
        self.path = None
        self.line = None
        self.offset = None
        self._label = label
        self._stack_cache: dict = {}
        self._state = _ParseState()
        self._line_no = 0

    def label(self) -> str:
        return self._label if self._label is not None else "<push>"

    def feed(self, raw: str) -> Optional[tuple]:
        """Parse the next format line; return its record (or ``None``)."""
        self._line_no += 1
        line_no = self._line_no
        self.line = line_no
        line = raw.rstrip("\n")
        if line_no == 1:
            try:
                parse_header(line)
            except TraceFormatError as error:
                raise self.annotate(error)
            return None
        return _parse_body_line(self, line_no, line, self._state)


class TextTraceSource(TraceSource):
    """Record stream over a text-format (``.lila``) trace file.

    With ``faults=True`` the ``lila.read`` fault-injection site is armed
    exactly as the classic reader armed it: a pre-read check plus the
    line filter, so injected damage surfaces as line-stamped
    :class:`TraceFormatError` from this source's validation.
    """

    encoding = "text"
    wrap_errors = True

    def __init__(self, path: Union[str, Path], faults: bool = False) -> None:
        self.path = Path(path)
        self.line = None
        self.offset = None
        self._faults = faults
        self._stack_cache: dict = {}

    def records(self) -> Iterator[tuple]:
        if self._faults:
            faults_runtime.check("lila.read", key=self.path.name)
        with self.path.open("r", encoding="utf-8") as handle:
            lines: Iterable[str] = handle
            if self._faults:
                lines = faults_runtime.filter_lines(
                    "lila.read", self.path.name, handle
                )
            yield from _text_records(self, lines)


class LinesTraceSource(TraceSource):
    """Record stream over an in-memory iterable of format lines."""

    encoding = "lines"
    wrap_errors = True

    def __init__(self, lines: Iterable[str]) -> None:
        self.path = None
        self.line = None
        self.offset = None
        self._lines = lines
        self._stack_cache: dict = {}

    def records(self) -> Iterator[tuple]:
        return _text_records(self, self._lines)


class _Cursor:
    """Position-tracked reads over binary payload bytes."""

    __slots__ = ("source", "data", "pos", "base")

    def __init__(
        self, source: "BinaryTraceSource", data: bytes, base: int = 0
    ) -> None:
        self.source = source
        self.data = data
        self.pos = 0
        self.base = base

    def read(self, n: int) -> bytes:
        self.source.offset = self.base + self.pos
        end = self.pos + n
        data = self.data[self.pos:end]
        if len(data) != n:
            raise TraceFormatError(
                f"truncated binary trace (wanted {n} bytes, got {len(data)})",
                path=self.source.path,
                offset=self.source.offset,
            )
        self.pos = end
        return data

    def u8(self) -> int:
        return binary_format._U8.unpack(self.read(1))[0]

    def u16(self) -> int:
        return binary_format._U16.unpack(self.read(2))[0]

    def u32(self) -> int:
        return binary_format._U32.unpack(self.read(4))[0]

    def u64(self) -> int:
        return binary_format._U64.unpack(self.read(8))[0]

    def f64(self) -> float:
        return binary_format._F64.unpack(self.read(8))[0]


class BinaryTraceSource(TraceSource):
    """Record stream over a binary (``.lilb``) trace file.

    The CRC footer is verified before any field is trusted, exactly as
    the classic binary reader did; structural damage that survives the
    CRC (out-of-range ids, unknown codes) raises offset-stamped
    :class:`TraceFormatError`. Nesting and bounds violations propagate
    raw (``wrap_errors`` is False), preserving the binary reader's
    historical error contract.
    """

    encoding = "binary"
    wrap_errors = False

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.line = None
        self.offset = 0

    def _fail(self, message: str) -> TraceFormatError:
        return TraceFormatError(message, path=self.path, offset=self.offset)

    def records(self) -> Iterator[tuple]:
        data = self.path.read_bytes()
        cursor = _Cursor(self, data)
        if cursor.read(4) != binary_format.MAGIC:
            raise self._fail("not a binary LiLa trace (bad magic)")
        version = cursor.u16()
        if version != binary_format.VERSION:
            raise self._fail(f"unsupported binary trace version {version}")
        rest = data[6:]
        if len(rest) < 4:
            raise self._fail("truncated binary trace (missing CRC)")
        payload, (expected,) = rest[:-4], binary_format._U32.unpack(rest[-4:])
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != expected:
            raise self._fail(
                f"binary trace is corrupt (CRC {actual:#010x}, "
                f"expected {expected:#010x})"
            )
        cursor = _Cursor(self, payload, base=6)

        strings = [
            cursor.read(cursor.u32()).decode("utf-8")
            for _ in range(cursor.u32())
        ]

        def string(index: int) -> str:
            try:
                return strings[index]
            except IndexError:
                raise self._fail(f"string id {index} out of range") from None

        frames = []
        for _ in range(cursor.u32()):
            class_id, method_id = cursor.u32(), cursor.u32()
            native = cursor.u8() == 1
            frames.append(
                StackFrame(string(class_id), string(method_id), native)
            )

        stacks = []
        for _ in range(cursor.u32()):
            depth = cursor.u16()
            stacks.append(
                StackTrace(frames[cursor.u32()] for _ in range(depth))
            )

        application = string(cursor.u32())
        session_id = string(cursor.u32())
        gui_thread = string(cursor.u32())
        start_ns = cursor.u64()
        end_ns = cursor.u64()
        sample_period_ns = cursor.u64()
        filter_ms = cursor.f64()
        short_count = cursor.u64()
        extras = []
        for _ in range(cursor.u32()):
            key_id, value_id = cursor.u32(), cursor.u32()
            extras.append((string(key_id), string(value_id)))

        yield (REC_META, "application", application, False)
        yield (REC_META, "session_id", session_id, False)
        yield (REC_META, "start_ns", start_ns, False)
        yield (REC_META, "end_ns", end_ns, False)
        yield (REC_META, "gui_thread", gui_thread, False)
        yield (REC_META, "sample_period_ns", sample_period_ns, False)
        yield (REC_META, "filter_ms", filter_ms, False)
        for key, value in extras:
            yield (REC_META, key, value, True)
        yield (REC_FILTERED, short_count)

        for _ in range(cursor.u32()):
            name = string(cursor.u32())
            event_count = cursor.u32()
            yield (REC_THREAD, name)
            for _ in range(event_count):
                tag = cursor.u8()
                if tag == binary_format._TAG_OPEN:
                    t = cursor.u64()
                    kind = binary_format._KINDS_BY_CODE.get(cursor.u8())
                    if kind is None:
                        raise self._fail("unknown interval kind code")
                    yield (REC_OPEN, t, kind, string(cursor.u32()))
                elif tag == binary_format._TAG_CLOSE:
                    yield (REC_CLOSE, cursor.u64())
                elif tag == binary_format._TAG_GC:
                    t0, t1 = cursor.u64(), cursor.u64()
                    yield (REC_GC, t0, t1, string(cursor.u32()))
                else:
                    raise self._fail(f"unknown event tag {tag}")

        for _ in range(cursor.u32()):
            t = cursor.u64()
            entry_count = cursor.u16()
            yield (REC_TICK, t)
            for _ in range(entry_count):
                thread_id = cursor.u32()
                state = binary_format._STATES_BY_CODE.get(cursor.u8())
                if state is None:
                    raise self._fail("unknown thread state code")
                stack_id = cursor.u32()
                try:
                    stack = stacks[stack_id]
                except IndexError:
                    raise self._fail(
                        f"stack id {stack_id} out of range"
                    ) from None
                yield (REC_ENTRY, string(thread_id), state, stack)


def open_source(
    path: Union[str, Path], faults: bool = False
) -> TraceSource:
    """A :class:`TraceSource` over ``path``, encoding autodetected.

    Raises:
        TraceFormatError: when neither encoding's magic matches.
    """
    from repro.lila.autodetect import detect_format

    path = Path(path)
    encoding = detect_format(path)
    if encoding == "binary":
        return BinaryTraceSource(path)
    if encoding == "lilac":
        from repro.lila.colfile import ColumnTraceSource

        return ColumnTraceSource(path)
    return TextTraceSource(path, faults=faults)


def build_store(source: TraceSource) -> ColumnarTrace:
    """Stream ``source`` into a sealed :class:`ColumnarTrace`.

    This is the single ingestion driver behind every reader. Error
    contract (identical to the pre-columnar readers, message for
    message):

    - record-level damage raises :class:`TraceFormatError` stamped with
      the source's position;
    - for ``wrap_errors`` sources (text), nesting violations raised
      mid-stream are re-typed as line-prefixed ``TraceFormatError``, and
      end-of-stream violations (unclosed intervals, bad bounds) as
      unprefixed ``TraceFormatError``;
    - for binary sources, nesting/bounds errors propagate raw.

    Sources that *are* a serialized store (`.lilac`) short-circuit:
    their :meth:`TraceSource.open_store` result is adopted as-is, with
    no records streamed and no columns copied.
    """
    direct = source.open_store()
    if direct is not None:
        from repro.obs import runtime as obs_runtime

        if obs_runtime.current() is not None:
            obs_runtime.set_gauge("store.bytes", direct.nbytes)
        return direct
    builder = ColumnarBuilder()
    feed = builder.feed
    wrap = source.wrap_errors
    for record in source.records():
        try:
            feed(record)
        except TraceFormatError as error:
            raise source.annotate(error)
        except LagAlyzerError as error:
            if not wrap:
                raise
            # Nesting violations from the columnar builder carry no
            # position; re-typing them here pins the damage to a line.
            raise TraceFormatError(
                f"line {source.line}: {error}",
                path=source.path,
                line=source.line,
            ) from None
    builder.flush_samples()

    try:
        builder.check_required_meta()
        metadata = builder.build_metadata()
    except TraceFormatError as error:
        raise source.annotate(error)
    try:
        store = builder.finish(metadata)
    except TraceFormatError as error:
        raise source.annotate(error)
    except LagAlyzerError as error:
        if not wrap:
            raise
        # Intervals left open by a truncated file (or an impossible
        # structure) surface at finish time; same contract: damage
        # always raises the typed parse error.
        raise TraceFormatError(str(error), path=source.path) from None

    from repro.obs import runtime as obs_runtime

    if obs_runtime.current() is not None:
        obs_runtime.count("lila.records_streamed", builder.record_count)
        obs_runtime.set_gauge("store.bytes", store.nbytes)
    return store


def build_trace(source: TraceSource) -> FacadeTrace:
    """Stream ``source`` into a columnar-backed :class:`FacadeTrace`."""
    return FacadeTrace(build_store(source))
