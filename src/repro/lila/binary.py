"""A compact binary trace encoding.

The paper's limitations section notes that LiLa "produces relatively
large traces for real-world sessions", which constrains session length.
This module provides a binary sibling of the text format that attacks
the dominant redundancy: symbols, stack frames, and whole call stacks
repeat constantly, so the encoding interns all three —

1. a **string table** (every symbol, class, method, thread name once),
2. a **frame table** of (class, method, native) triples over string ids,
3. a **stack table** of frame-id tuples —

and samples then cost a few integers each. Interval events use fixed-
width records. The reader reconstructs exactly the same
:class:`~repro.core.trace.Trace` as the text reader (round-trip
tested); ``bench_binary_format.py`` measures the size and speed win.

Layout (little-endian):

=======  =============================================
header   magic ``LILB``, u16 version
strings  u32 count; per string: u32 length + UTF-8 bytes
frames   u32 count; per frame: u32 class, u32 method, u8 native
stacks   u32 count; per stack: u16 depth + depth * u32 frame
meta     u32 string ids: application, session id, gui thread;
         u64 start/end/sample-period; f64 filter;
         u64 filtered-count; u32 extra-count + id pairs
threads  u32 count; per thread: u32 name, u32 event count, events
samples  u32 count; per tick: u64 t, u16 entries,
         per entry: u32 thread, u8 state, u32 stack
footer   u32 CRC-32 of everything after the 6-byte header
=======  =============================================

Interval events: u8 tag (1 open / 2 close / 3 complete-GC), then
open: u64 t + u8 kind + u32 symbol; close: u64 t; GC: u64 t0 + u64 t1
+ u32 symbol.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Dict, List, Tuple, Union

from repro.core.intervals import Interval, IntervalKind
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace

MAGIC = b"LILB"
VERSION = 1

_TAG_OPEN = 1
_TAG_CLOSE = 2
_TAG_GC = 3

_KIND_CODES = {kind: index for index, kind in enumerate(IntervalKind)}
_KINDS_BY_CODE = {index: kind for kind, index in _KIND_CODES.items()}
_STATE_CODES = {state: index for index, state in enumerate(ThreadState)}
_STATES_BY_CODE = {index: state for state, index in _STATE_CODES.items()}

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_U8 = struct.Struct("<B")


class _Interner:
    """Assigns dense ids to hashable values in first-seen order."""

    def __init__(self) -> None:
        self._ids: Dict = {}
        self.values: List = []

    def intern(self, value) -> int:
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        index = len(self.values)
        self._ids[value] = index
        self.values.append(value)
        return index


class _Writer:
    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.strings = _Interner()
        self.frames = _Interner()
        self.stacks = _Interner()

    # -- interning --------------------------------------------------------

    def _frame_id(self, frame: StackFrame) -> int:
        return self.frames.intern(
            (
                self.strings.intern(frame.class_name),
                self.strings.intern(frame.method_name),
                frame.is_native,
            )
        )

    def _stack_id(self, stack: StackTrace) -> int:
        return self.stacks.intern(
            tuple(self._frame_id(frame) for frame in stack.frames)
        )

    # -- encoding ----------------------------------------------------------

    def _interval_events(self, interval: Interval, out: List[bytes]) -> None:
        if interval.kind is IntervalKind.GC and not interval.children:
            out.append(
                _U8.pack(_TAG_GC)
                + _U64.pack(interval.start_ns)
                + _U64.pack(interval.end_ns)
                + _U32.pack(self.strings.intern(interval.symbol))
            )
            return
        out.append(
            _U8.pack(_TAG_OPEN)
            + _U64.pack(interval.start_ns)
            + _U8.pack(_KIND_CODES[interval.kind])
            + _U32.pack(self.strings.intern(interval.symbol))
        )
        for child in interval.children:
            self._interval_events(child, out)
        out.append(_U8.pack(_TAG_CLOSE) + _U64.pack(interval.end_ns))

    def write(self, handle: BinaryIO) -> None:
        import io

        payload = io.BytesIO()
        self._write_payload(payload)
        data = payload.getvalue()
        handle.write(MAGIC)
        handle.write(_U16.pack(VERSION))
        handle.write(data)
        handle.write(_U32.pack(zlib.crc32(data) & 0xFFFFFFFF))

    def _write_payload(self, handle: BinaryIO) -> None:
        trace = self.trace
        meta = trace.metadata

        # Pass 1: build all sections (interning fills the tables).
        thread_sections: List[Tuple[int, List[bytes]]] = []
        for thread_name in trace.thread_names:
            events: List[bytes] = []
            for root in trace.thread_roots[thread_name]:
                self._interval_events(root, events)
            thread_sections.append(
                (self.strings.intern(thread_name), events)
            )

        sample_blobs: List[bytes] = []
        for sample in trace.samples:
            entry_parts = [
                _U64.pack(sample.timestamp_ns),
                _U16.pack(len(sample.threads)),
            ]
            for entry in sample.threads:
                entry_parts.append(
                    _U32.pack(self.strings.intern(entry.thread_name))
                    + _U8.pack(_STATE_CODES[entry.state])
                    + _U32.pack(self._stack_id(entry.stack))
                )
            sample_blobs.append(b"".join(entry_parts))

        meta_ids = (
            self.strings.intern(meta.application),
            self.strings.intern(meta.session_id),
            self.strings.intern(meta.gui_thread),
        )
        extra_ids = [
            (self.strings.intern(key), self.strings.intern(value))
            for key, value in sorted(meta.extra.items())
        ]

        # Pass 2: emit.
        handle.write(_U32.pack(len(self.strings.values)))
        for text in self.strings.values:
            data = text.encode("utf-8")
            handle.write(_U32.pack(len(data)))
            handle.write(data)

        handle.write(_U32.pack(len(self.frames.values)))
        for class_id, method_id, native in self.frames.values:
            handle.write(_U32.pack(class_id))
            handle.write(_U32.pack(method_id))
            handle.write(_U8.pack(1 if native else 0))

        handle.write(_U32.pack(len(self.stacks.values)))
        for frame_ids in self.stacks.values:
            handle.write(_U16.pack(len(frame_ids)))
            for frame_id in frame_ids:
                handle.write(_U32.pack(frame_id))

        for meta_id in meta_ids:
            handle.write(_U32.pack(meta_id))
        handle.write(_U64.pack(meta.start_ns))
        handle.write(_U64.pack(meta.end_ns))
        handle.write(_U64.pack(meta.sample_period_ns))
        handle.write(_F64.pack(meta.filter_ms))
        handle.write(_U64.pack(trace.short_episode_count))
        handle.write(_U32.pack(len(extra_ids)))
        for key_id, value_id in extra_ids:
            handle.write(_U32.pack(key_id))
            handle.write(_U32.pack(value_id))

        handle.write(_U32.pack(len(thread_sections)))
        for name_id, events in thread_sections:
            handle.write(_U32.pack(name_id))
            handle.write(_U32.pack(len(events)))
            for event in events:
                handle.write(event)

        handle.write(_U32.pack(len(sample_blobs)))
        for blob in sample_blobs:
            handle.write(blob)


def write_trace_binary(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in the binary format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        _Writer(trace).write(handle)
    return path


def read_trace_binary(path: Union[str, Path]) -> Trace:
    """Read and validate a binary trace file.

    The decode is one streaming pass through
    :class:`~repro.lila.source.BinaryTraceSource` into a columnar
    store; the result is a :class:`~repro.core.store.FacadeTrace` that
    reconstructs exactly the same :class:`Trace` the eager reader
    produced. Structural damage raises :class:`TraceFormatError`
    stamped with the byte offset; nesting and bounds violations
    propagate raw, as they always did for the binary path.
    """
    from repro.lila.source import BinaryTraceSource, build_trace

    return build_trace(BinaryTraceSource(path))
