"""Loading traces regardless of encoding.

Both encodings are self-identifying (``#%lila`` for text, ``LILB`` for
binary), so callers should not have to care: :func:`load_trace` sniffs
the first bytes and dispatches.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.errors import TraceFormatError
from repro.core.trace import Trace
from repro.lila import binary as binary_format
from repro.lila import format as text_format
from repro.lila.reader import read_trace


def detect_format(path: Union[str, Path]) -> str:
    """``"text"`` or ``"binary"``, by magic bytes.

    Raises:
        TraceFormatError: when neither magic matches.
    """
    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(8)
    if head.startswith(binary_format.MAGIC):
        return "binary"
    if head.startswith(text_format.MAGIC.encode("utf-8")):
        return "text"
    raise TraceFormatError(
        f"{path}: not a LiLa trace in either encoding "
        f"(first bytes: {head!r})"
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file in whichever encoding it uses."""
    if detect_format(path) == "binary":
        return binary_format.read_trace_binary(path)
    return read_trace(path)
