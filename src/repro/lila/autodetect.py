"""Loading traces regardless of encoding.

All three encodings are self-identifying (``#%lila`` for text, ``LILB``
for binary, ``LILC`` for the mmap-backed column file), so callers
should not have to care: :func:`load_trace` sniffs the first bytes and
dispatches.
"""

from __future__ import annotations

import glob as glob_mod
from pathlib import Path
from typing import List, Sequence, Union

from repro.core.errors import TraceFormatError
from repro.core.trace import Trace
from repro.lila import binary as binary_format
from repro.lila import format as text_format
from repro.lila.reader import read_trace

#: File suffixes picked up when a directory is given to
#: :func:`expand_trace_paths` (text, binary, and column encodings).
TRACE_SUFFIXES = (".lila", ".lilb", ".lilac")

_GLOB_CHARS = frozenset("*?[")


def detect_format(path: Union[str, Path]) -> str:
    """``"text"``, ``"binary"``, or ``"lilac"``, by magic bytes.

    Raises:
        TraceFormatError: when no magic matches.
    """
    from repro.lila import colfile

    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(8)
    if head.startswith(binary_format.MAGIC):
        return "binary"
    if head.startswith(colfile.MAGIC):
        return "lilac"
    if head.startswith(text_format.MAGIC.encode("utf-8")):
        return "text"
    raise TraceFormatError(
        f"{path}: not a LiLa trace in any encoding "
        f"(first bytes: {head!r})"
    )


def expand_trace_paths(
    paths: Union[str, Path, Sequence[Union[str, Path]]],
) -> List[Path]:
    """Resolve files, directories, and glob patterns to trace files.

    Each entry may be an explicit file path, a directory (all
    ``*.lila`` / ``*.lilb`` files inside, sorted), or a glob pattern
    (matches sorted). Order is preserved across entries so session
    order stays under the caller's control.

    Raises:
        TraceFormatError: when an entry matches no file at all.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    resolved: List[Path] = []
    for entry in paths:
        text = str(entry)
        path = Path(entry)
        if path.is_dir():
            matches = sorted(
                child
                for child in path.iterdir()
                if child.is_file() and child.suffix in TRACE_SUFFIXES
            )
            if not matches:
                raise TraceFormatError(
                    f"{path}: directory contains no trace files "
                    f"({'/'.join(TRACE_SUFFIXES)})"
                )
            resolved.extend(matches)
        elif _GLOB_CHARS.intersection(text):
            matches = sorted(Path(m) for m in glob_mod.glob(text))
            if not matches:
                raise TraceFormatError(f"{text}: glob matched no trace files")
            resolved.extend(m for m in matches if m.is_file())
        else:
            resolved.append(path)
    if not resolved:
        raise TraceFormatError("no trace paths given")
    return resolved


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file in whichever encoding it uses."""
    from repro.obs import runtime as obs_runtime

    encoding = detect_format(path)
    if encoding == "binary" or encoding == "lilac":
        with obs_runtime.maybe_span(
            "lila.read_trace",
            metric="lila.parse_ms",
            path=Path(path).name,
            format=encoding,
        ):
            if encoding == "binary":
                trace = binary_format.read_trace_binary(path)
            else:
                from repro.lila.colfile import open_column_trace

                trace = open_column_trace(path)
        if obs_runtime.current() is not None:
            obs_runtime.count("lila.traces_parsed")
            try:
                obs_runtime.count(
                    "lila.bytes_read", Path(path).stat().st_size
                )
            except OSError:
                pass
        return trace
    return read_trace(path)
