"""Streaming access to text traces: bounded memory for long sessions.

The paper's limitations section: "LagAlyzer is an offline tool that
needs to load the complete session trace into memory for analysis and
visualization", which forced the authors to filter traces and keep
sessions short. This module lifts that constraint for the text format:
:func:`iter_episodes` yields one fully formed
:class:`~repro.core.episodes.Episode` at a time — interval tree plus
its slice of call-stack samples — holding only the *current* episode in
memory, using two :class:`~repro.lila.source.TextTraceSource` cursors
over the same file (one for interval records, one for the sample
section). :func:`stream_session_stats` computes a Table III row over an
arbitrarily long trace in O(1) memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS, Episode
from repro.core.errors import TraceFormatError
from repro.core.intervals import IntervalKind, IntervalTreeBuilder
from repro.core.samples import Sample, ThreadSample
from repro.core.statistics import SECONDS_PER_MINUTE, SessionStats
from repro.core.patterns import pattern_key
from repro.core.store import (
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
)
from repro.lila.source import TextTraceSource


def _read_metadata(path: Path) -> Dict[str, object]:
    """First pass: header + M/F records (cheap, stops at first T)."""
    meta: Dict[str, object] = {}
    for record in TextTraceSource(path).records():
        tag = record[0]
        if tag == REC_META:
            if not record[3]:
                meta[record[1]] = record[2]
        elif tag == REC_FILTERED:
            meta["__filtered__"] = record[1]
        elif tag == REC_THREAD:
            break
    return meta


def _iter_samples(path: Path) -> Iterator[Sample]:
    """Yield sampling ticks in file order (they are time-sorted)."""
    tick_ns: Optional[int] = None
    entries: List[ThreadSample] = []
    for record in TextTraceSource(path).records():
        tag = record[0]
        if tag == REC_TICK:
            if tick_ns is not None:
                yield Sample(tick_ns, entries)
            tick_ns = record[1]
            entries = []
        elif tag == REC_ENTRY:
            entries.append(ThreadSample(record[1], record[2], record[3]))
    if tick_ns is not None:
        yield Sample(tick_ns, entries)


def iter_episodes(
    path: Union[str, Path], gui_thread: Optional[str] = None
) -> Iterator[Episode]:
    """Stream the GUI thread's episodes from a text trace file.

    Each yielded episode carries its interval tree and the sampling
    ticks that fall within it; only one episode is materialized at a
    time. Non-dispatch roots (GCs between episodes) are skipped, as in
    the in-memory model.

    Args:
        path: a text-format trace file.
        gui_thread: dispatch thread to stream (defaults to the trace's
            ``gui_thread`` metadata).
    """
    from repro.obs import runtime as obs_runtime

    path = Path(path)
    meta = _read_metadata(path)
    if gui_thread is None:
        gui_thread = str(meta.get("gui_thread", ""))
        if not gui_thread:
            raise TraceFormatError("missing gui_thread metadata", path=path)

    samples = _iter_samples(path)
    pending_sample: Optional[Sample] = None
    index = 0

    def collect_samples(start_ns: int, end_ns: int) -> List[Sample]:
        nonlocal pending_sample
        collected: List[Sample] = []
        while True:
            if pending_sample is None:
                pending_sample = next(samples, None)
                if pending_sample is None:
                    return collected
            if pending_sample.timestamp_ns < start_ns:
                pending_sample = None  # between episodes: not needed
                continue
            if pending_sample.timestamp_ns >= end_ns:
                return collected
            collected.append(pending_sample)
            pending_sample = None

    builder: Optional[IntervalTreeBuilder] = None
    in_gui_section = False
    for record in TextTraceSource(path).records():
        tag = record[0]
        if tag == REC_THREAD:
            in_gui_section = record[1] == gui_thread
            if in_gui_section and builder is None:
                builder = IntervalTreeBuilder()
            continue
        if not in_gui_section:
            continue
        if tag == REC_OPEN:
            builder.open(record[2], record[3], record[1])
        elif tag == REC_GC:
            builder.add_complete(
                IntervalKind.GC, record[3], record[1], record[2]
            )
        elif tag == REC_CLOSE:
            root = builder.close(record[1])
            if builder.open_depth == 0:
                if root.kind is IntervalKind.DISPATCH:
                    episode = Episode(
                        root,
                        index=index,
                        gui_thread=gui_thread,
                        samples=collect_samples(
                            root.start_ns, root.end_ns
                        ),
                    )
                    index += 1
                    obs_runtime.count("lila.episodes_streamed")
                    yield episode
    if builder is not None and builder.open_depth:
        raise TraceFormatError("unclosed intervals at end of trace", path=path)


def stream_session_stats(
    path: Union[str, Path],
    threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
) -> SessionStats:
    """A Table III row computed in one streaming pass, O(1) memory.

    Pattern statistics are computed over pattern *keys* (bounded by the
    number of distinct structures, not episodes); everything else is
    running sums.
    """
    path = Path(path)
    meta = _read_metadata(path)
    e2e_ns = int(meta.get("end_ns", "0")) - int(meta.get("start_ns", "0"))

    traced = 0
    perceptible = 0
    in_episode_ns = 0
    key_stats: Dict[str, int] = {}
    key_descs: Dict[str, tuple] = {}
    covered = 0

    for episode in iter_episodes(path):
        traced += 1
        in_episode_ns += episode.duration_ns
        if episode.is_perceptible(threshold_ms):
            perceptible += 1
        if episode.has_structure:
            covered += 1
            key = pattern_key(episode)
            key_stats[key] = key_stats.get(key, 0) + 1
            if key not in key_descs:
                key_descs[key] = (
                    episode.descendant_count(include_gc=False),
                    episode.tree_depth(include_gc=False),
                )

    distinct = len(key_stats)
    singletons = sum(1 for count in key_stats.values() if count == 1)
    in_episode_minutes = in_episode_ns / 1e9 / SECONDS_PER_MINUTE
    return SessionStats(
        application=str(meta.get("application", "?")),
        e2e_s=e2e_ns / 1e9,
        in_episode_pct=(
            100.0 * in_episode_ns / e2e_ns if e2e_ns else 0.0
        ),
        below_filter=float(meta.get("__filtered__", "0")),
        traced=float(traced),
        perceptible=float(perceptible),
        long_per_min=(
            perceptible / in_episode_minutes if in_episode_minutes else 0.0
        ),
        distinct_patterns=float(distinct),
        covered_episodes=float(covered),
        singleton_pct=(100.0 * singletons / distinct if distinct else 0.0),
        mean_descendants=(
            sum(d for d, _ in key_descs.values()) / distinct
            if distinct
            else 0.0
        ),
        mean_depth=(
            sum(d for _, d in key_descs.values()) / distinct
            if distinct
            else 0.0
        ),
    )
