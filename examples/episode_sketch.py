#!/usr/bin/env python
"""Recreating the paper's Figure 1: an episode sketch.

The paper's example episode takes 1705 ms: a JFrame.paint cascades down
to a JToolBar, inside which a long native DrawLine call contains a
466 ms garbage collection — and the sample dots vanish around the
collection because JVMTI sampling stops at the safepoint (the blackout
the paper dissects).

This example drives the simulator's low-level API directly to produce
exactly that scenario, then renders the sketch to SVG.

Run:  python examples/episode_sketch.py [output.svg]
"""

import sys

from repro.core.intervals import IntervalKind
from repro.vm.behavior import Behavior, NativeCall, Paint, native_stack
from repro.vm.components import Component
from repro.vm.heap import HeapConfig
from repro.vm.jvm import PostedEvent, SessionConfig, SimulatedJVM
from repro.viz.sketch import render_episode_sketch

GUI_THREAD = "AWT-EventQueue-0"


def figure1_window() -> Component:
    """The component chain of Figure 1: JFrame -> ... -> JToolBar."""
    toolbar = Component(
        "javax.swing.JToolBar", self_paint_ms=430.0,
        alloc_bytes_per_paint=100 * 1024 * 1024,  # heavy allocation -> GC
    )
    panel = Component("javax.swing.JPanel", [toolbar], self_paint_ms=60.0)
    layered = Component(
        "javax.swing.JLayeredPane", [panel], self_paint_ms=60.0
    )
    root_pane = Component("javax.swing.JRootPane", [layered], self_paint_ms=40.0)
    return Component("javax.swing.JFrame", [root_pane], self_paint_ms=30.0)


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "episode_sketch.svg"

    # A heap sized so the toolbar's allocations trigger one major GC
    # right in the middle of the native call.
    config = SessionConfig(
        application="Figure1Demo",
        session_id="demo",
        seed=7,
        duration_s=5.0,
        heap=HeapConfig(
            young_capacity_bytes=32 * 1024 * 1024,
            old_capacity_bytes=40 * 1024 * 1024,
            promotion_fraction=1.0,   # promote everything -> major GC soon
            major_pause_ms=466.0,
            pause_jitter=0.0,
        ),
    )
    jvm = SimulatedJVM(config)

    behavior = Behavior(
        [
            Paint(figure1_window(), sigma=0.0),
            NativeCall(
                "sun.java2d.loops.DrawLine.DrawLine",
                377.0,
                native_stack("sun.java2d.loops.DrawLine", "DrawLine"),
                sigma=0.0,
                alloc_bytes_per_ms=220 * 1024,
            ),
        ]
    )
    trace = jvm.run([PostedEvent(1_000_000_000, behavior)])

    episode = max(trace.episodes, key=lambda ep: ep.duration_ns)
    print(f"episode lag: {episode.duration_ms:.0f} ms")
    print("interval tree:")
    for node in episode.root.preorder():
        depth = 0
        parent = node.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        print(f"  {'  ' * depth}{node.kind.value:<9s} "
              f"{node.symbol:<45s} {node.duration_ms:7.0f} ms")

    gc_nodes = episode.intervals_of_kind(IntervalKind.GC)
    in_gc = [
        s for s in episode.samples
        if any(gc.start_ns <= s.timestamp_ns < gc.end_ns for gc in gc_nodes)
    ]
    print(
        f"samples during episode: {len(episode.samples)}; "
        f"during the GC: {len(in_gc)} (the blackout)"
    )

    path = render_episode_sketch(
        episode, title="Figure 1 scenario: paint -> native -> GC"
    ).save(output)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
