#!/usr/bin/env python
"""Regression hunting: diffing pattern tables between two builds.

LagAlyzer's pattern keys are purely structural, so they are stable
across runs — which makes them natural join keys for before/after
comparisons. This example simulates a "nightly" scenario: a baseline
FreeMind build, and a candidate build where one handler's model update
got 8x slower (injected into the simulated episode stream). The
comparison report pinpoints the regressed pattern.

Run:  python examples/regression_hunt.py
"""

from repro import LagAlyzer, simulate_session
from repro.core.compare import Verdict, compare_tables
from repro.core.intervals import NS_PER_MS

SCALE = 0.2


def slow_down_pattern(trace, factor=8.0):
    """Simulate a regressed build: stretch one recurring pattern's work.

    (In real life the candidate build's own sessions would be traced;
    here we inject the slowdown into the baseline's episode stream so
    the example is self-contained.)
    """
    from repro.core.patterns import PatternTable

    table = PatternTable.from_episodes(trace.episodes)
    victim = table.by_count()[2]  # a recurring, currently-fast pattern
    for episode in victim.episodes:
        stretch = round(episode.duration_ns * (factor - 1.0))
        episode.root.end_ns += stretch
        for child in episode.root.children:
            child.end_ns = min(child.end_ns + stretch, episode.root.end_ns)
    return victim


def main() -> None:
    print("tracing the baseline build...")
    baseline = simulate_session("FreeMind", seed=31, scale=SCALE)
    before = LagAlyzer.from_traces([baseline]).pattern_table()

    print("tracing the candidate build (with a hidden 8x slowdown)...")
    candidate = simulate_session("FreeMind", seed=31, scale=SCALE)
    victim = slow_down_pattern(candidate)
    after = LagAlyzer.from_traces([candidate]).pattern_table()

    report = compare_tables(before, after)
    print()
    print(f"comparison: {report.summary()}")
    print()
    print("worst regressions:")
    for delta in report.regressions[:5]:
        print(f"  {delta.describe()}")

    top = report.regressions[0]
    injected_symbol = victim.representative.root.children[0].symbol
    found_symbol = top.after.representative.root.children[0].symbol
    verdict = "FOUND" if found_symbol == injected_symbol else "MISSED"
    print()
    print(f"injected slowdown in: {injected_symbol}")
    print(f"top regression is:    {found_symbol}  [{verdict}]")


if __name__ == "__main__":
    main()
