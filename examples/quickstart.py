#!/usr/bin/env python
"""Quickstart: simulate an interactive session and analyze its lag.

Runs one session of JMol (the paper's worst perceptible performer — a
timer-driven 3D molecule animation), then asks LagAlyzer the questions
the paper's pattern browser answers: which episode patterns exist, which
are perceptibly slow, and what triggered / caused the lag.

Run:  python examples/quickstart.py
"""

from repro import LagAlyzer, simulate_session
from repro.viz.browser import render_pattern_browser

SCALE = 0.25  # quarter-length session so the example runs in seconds


def main() -> None:
    print("simulating a JMol session (~2 min of virtual use)...")
    trace = simulate_session("JMol", seed=42, scale=SCALE)
    print(f"  {trace}")

    analyzer = LagAlyzer.from_traces([trace])

    stats = analyzer.mean_session_stats()
    print()
    print(f"end-to-end time: {stats.e2e_s:.0f} s")
    print(f"in-episode time: {stats.in_episode_pct:.0f}%")
    print(
        f"episodes: {stats.below_filter:.0f} below the 3 ms trace filter, "
        f"{stats.traced:.0f} traced, {stats.perceptible:.0f} perceptible "
        f"(>= 100 ms)"
    )
    print(f"perceptible episodes per in-episode minute: {stats.long_per_min:.0f}")

    print()
    print("pattern browser (perceptible patterns only):")
    print(
        render_pattern_browser(
            analyzer.pattern_table(), limit=10, perceptible_only=True
        )
    )

    print()
    triggers = analyzer.trigger_summary(perceptible_only=True).percentages()
    print("what triggered the perceptible episodes:")
    for trigger, pct in triggers.items():
        print(f"  {trigger.value:<13s} {pct:5.1f}%")

    location = analyzer.location_summary(perceptible_only=True)
    print()
    print("where the perceptible time went:")
    for label, pct in location.percentages().items():
        print(f"  {label:<13s} {pct:5.1f}%")


if __name__ == "__main__":
    main()
