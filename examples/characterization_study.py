#!/usr/bin/env python
"""The full characterization study (Section IV of the paper).

Simulates interactive sessions for all 14 applications, runs every
analysis, prints Table III, and writes Figures 3-8 as SVG plus an
EXPERIMENTS.md comparing measured values against the paper's.

Run:  python examples/characterization_study.py [outdir]

By default this runs a quarter-scale study (about a minute); pass
``--full`` for the paper's full 4x8-minute sessions per application.
"""

import sys
from pathlib import Path

from repro.study.report import render_figures, write_experiments_md
from repro.study.runner import StudyConfig, run_study
from repro.study.tables import format_table3


def main() -> None:
    args = [a for a in sys.argv[1:]]
    full = "--full" in args
    args = [a for a in args if a != "--full"]
    outdir = Path(args[0]) if args else Path("study-output")

    config = StudyConfig(
        sessions=4 if full else 1,
        scale=1.0 if full else 0.25,
    )
    print(
        f"running {'full' if full else 'quarter-scale'} study "
        f"({config.sessions} session(s)/app)..."
    )
    result = run_study(config, progress=True)

    print()
    print(
        format_table3(
            [app.mean_stats for app in result.ordered()], result.mean_stats
        )
    )

    figures = render_figures(result, outdir)
    report = write_experiments_md(result, outdir / "EXPERIMENTS.md")
    print()
    print(f"wrote {len(figures)} figure SVGs and {report}")


if __name__ == "__main__":
    main()
