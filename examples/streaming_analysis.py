#!/usr/bin/env python
"""Streaming analysis: traces bigger than memory.

The paper's limitations section concedes that LagAlyzer "needs to load
the complete session trace into memory", which forced short sessions
and aggressive filtering. The streaming reader lifts that: episodes are
materialized one at a time (two cursors over the trace file), so a
Table III row — or any custom running analysis — works on traces of any
length in bounded memory.

This example writes a session trace to disk, then computes statistics
two ways and confirms they agree; it also demonstrates a custom
streaming analysis (a worst-lag top-10) written against the iterator.

Run:  python examples/streaming_analysis.py
"""

import heapq
import tempfile
from pathlib import Path

from repro import LagAlyzer, simulate_session
from repro.lila.streaming import iter_episodes, stream_session_stats
from repro.lila.writer import write_trace

SCALE = 0.3


def main() -> None:
    print("simulating and writing an ArgoUML session trace...")
    trace = simulate_session("ArgoUML", seed=9, scale=SCALE)
    with tempfile.TemporaryDirectory() as tmp:
        path = write_trace(trace, Path(tmp) / "argouml.lila")
        size_kib = path.stat().st_size / 1024
        print(f"  {path.name}: {size_kib:.0f} KiB")

        print()
        print("Table III row, computed in one streaming pass:")
        streamed = stream_session_stats(path)
        print(
            f"  traced={streamed.traced:.0f} "
            f"perceptible={streamed.perceptible:.0f} "
            f"in-eps={streamed.in_episode_pct:.0f}% "
            f"patterns={streamed.distinct_patterns:.0f}"
        )

        in_memory = LagAlyzer.load([path]).mean_session_stats()
        agree = (
            streamed.traced == in_memory.traced
            and streamed.perceptible == in_memory.perceptible
            and streamed.distinct_patterns == in_memory.distinct_patterns
        )
        print(f"  matches the in-memory analysis: {agree}")

        print()
        print("custom streaming analysis — the 10 worst episodes:")
        worst = []  # (lag_ms, index) min-heap of the current top 10
        episode_count = 0
        for episode in iter_episodes(path):
            episode_count += 1
            item = (episode.duration_ms, episode.index)
            if len(worst) < 10:
                heapq.heappush(worst, item)
            else:
                heapq.heappushpop(worst, item)
        for lag_ms, index in sorted(worst, reverse=True):
            print(f"  episode #{index:<6d} {lag_ms:8.1f} ms")
        print(
            f"  ({episode_count} episodes scanned; at no point were more "
            f"than one episode and a 10-entry heap in memory)"
        )


if __name__ == "__main__":
    main()
