#!/usr/bin/env python
"""Writing a custom analysis on LagAlyzer's core API.

The paper: "Developers who want to write their own analysis can
implement it using the straightforward API provided by the core." This
example implements one the paper motivates but does not ship — a
GC-pressure report per pattern: since pattern keys are GC-blind, a
pattern whose episodes *always* contain collections points at an
allocation problem in that code path (Section II-D's diagnostic).

Run:  python examples/custom_analysis.py
"""

from repro import LagAlyzer, simulate_session
from repro.core.intervals import IntervalKind

SCALE = 0.35


def gc_pressure_report(analyzer: LagAlyzer, top: int = 8) -> None:
    """Rank patterns by how consistently their episodes contain GCs."""
    rows = []
    for pattern in analyzer.pattern_table():
        if pattern.count < 3:
            continue  # need recurrence to call it consistent
        gc_episodes = pattern.gc_episode_count()
        if gc_episodes == 0:
            continue
        gc_ms = sum(
            gc.duration_ms
            for episode in pattern.episodes
            for gc in episode.intervals_of_kind(IntervalKind.GC)
        )
        rows.append(
            (
                gc_episodes / pattern.count,
                gc_ms,
                pattern,
            )
        )
    rows.sort(key=lambda row: (row[0], row[1]), reverse=True)

    print(
        f"{'GC eps':>7s} {'of':>5s} {'GC time':>9s} {'avg lag':>9s}  pattern"
    )
    for fraction, gc_ms, pattern in rows[:top]:
        first = pattern.representative.root.children
        label = first[0].symbol if first else "(gc only)"
        print(
            f"{fraction * 100:6.0f}% {pattern.count:>5d} "
            f"{gc_ms:8.0f}ms {pattern.avg_lag_ms:8.0f}ms  {label}"
        )


def main() -> None:
    # ArgoUML: the paper's example of a generally high allocation rate
    # ("GC is prevalent throughout program execution").
    print("simulating an ArgoUML session...")
    trace = simulate_session("ArgoUML", seed=11, scale=SCALE)
    analyzer = LagAlyzer.from_traces([trace])

    total_gc_ms = sum(gc.duration_ms for gc in trace.gc_intervals())
    print(
        f"{len(trace.gc_intervals())} collections, "
        f"{total_gc_ms:.0f} ms total GC time in "
        f"{trace.metadata.duration_s:.0f} s of session"
    )
    print()
    print("patterns under GC pressure (candidates for allocation tuning):")
    gc_pressure_report(analyzer)


if __name__ == "__main__":
    main()
