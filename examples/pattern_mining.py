#!/usr/bin/env python
"""Pattern mining across multiple sessions (Sections II-C to II-E).

The paper integrates several traces into one pattern analysis: patterns
that recur across sessions with consistent lag are the deterministic
problems worth fixing first. This example runs two GanttProject sessions
(the paper's pattern-richest application), mines patterns over both,
classifies them by occurrence, and shows the perceptibility-threshold
ablation (100 ms vs the literature's 150/195 ms).

Run:  python examples/pattern_mining.py
"""

from repro import LagAlyzer
from repro.apps.sessions import simulate_sessions
from repro.core.api import AnalysisConfig
from repro.core.occurrence import Occurrence, classify_pattern, summarize
from repro.viz.browser import render_episode_list, render_pattern_browser

SCALE = 0.2


def main() -> None:
    print("simulating 2 GanttProject sessions...")
    traces = simulate_sessions("GanttProject", count=2, seed=7, scale=SCALE)
    analyzer = LagAlyzer.from_traces(traces)
    table = analyzer.pattern_table()

    print(
        f"{table.distinct_count} patterns cover {table.covered_episodes} "
        f"episodes ({table.excluded_episodes} structureless episodes excluded); "
        f"{table.singleton_count} singletons"
    )

    print()
    print("occurrence classes (Figure 4 semantics):")
    occurrence = summarize(table)
    for kind, count in occurrence.counts.items():
        print(f"  {kind.value:<10s} {count:4d} patterns")
    print(
        f"  consistently fast-or-slow: "
        f"{100 * occurrence.consistent_fraction:.0f}% of patterns"
    )

    print()
    print("the deterministic problems (always-slow patterns):")
    always = [
        p for p in table.rows() if classify_pattern(p) is Occurrence.ALWAYS
    ][:5]
    for pattern in always:
        print(
            f"  {pattern.count:4d} episodes, avg {pattern.avg_lag_ms:6.0f} ms"
            f" — {pattern.representative.root.children[0].symbol}"
        )

    print()
    print("browsing into the worst pattern:")
    worst = table.perceptible_only().rows()[0]
    print(render_episode_list(worst, limit=8))

    print()
    print("threshold ablation (how many episodes count as perceptible):")
    for threshold in (100.0, 150.0, 195.0):
        config = AnalysisConfig(perceptible_threshold_ms=threshold)
        ablated = LagAlyzer.from_traces(traces, config=config)
        print(
            f"  {threshold:5.0f} ms -> {len(ablated.perceptible_episodes()):4d} "
            f"perceptible episodes, "
            f"{len(ablated.pattern_table().perceptible_only(threshold))} "
            f"patterns with perceptible episodes"
        )


if __name__ == "__main__":
    main()
