"""Tests for the study CSV export."""

import csv

import pytest

from repro.study.export import write_study_csvs
from repro.study.runner import StudyConfig, run_study


@pytest.fixture(scope="module")
def tiny_result():
    return run_study(
        StudyConfig(
            sessions=1, scale=0.05, applications=("CrosswordSage", "JMol")
        )
    )


class TestStudyCsvs:
    def test_all_files_written(self, tiny_result, tmp_path):
        paths = write_study_csvs(tiny_result, tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "table3.csv", "fig3.csv", "fig4.csv", "fig5.csv",
            "fig6.csv", "fig7.csv", "fig8.csv",
        }
        for path in paths:
            assert path.exists()

    def test_table3_shape(self, tiny_result, tmp_path):
        write_study_csvs(tiny_result, tmp_path)
        with (tmp_path / "table3.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3  # two apps + mean
        assert rows[-1]["application"] == "Mean"
        assert float(rows[0]["traced"]) > 0

    def test_fig3_curve_shape(self, tiny_result, tmp_path):
        write_study_csvs(tiny_result, tmp_path)
        with (tmp_path / "fig3.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 101
        assert float(rows[-1]["JMol"]) > 99.0

    def test_fig5_long_format(self, tiny_result, tmp_path):
        write_study_csvs(tiny_result, tmp_path)
        with (tmp_path / "fig5.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        scopes = {row["scope"] for row in rows}
        assert scopes == {"all", "perceptible"}
        categories = {row["category"] for row in rows}
        assert "input" in categories and "output" in categories

    def test_fig7_values(self, tiny_result, tmp_path):
        write_study_csvs(tiny_result, tmp_path)
        with (tmp_path / "fig7.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert all(float(row["mean_runnable"]) >= 0 for row in rows)
