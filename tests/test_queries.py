"""Tests for the chainable episode query API."""

import pytest

from repro.core.intervals import IntervalKind
from repro.core.queries import EpisodeQuery
from repro.core.triggers import Trigger

from helpers import dispatch, episode, gc_iv, paint_iv, simple_episode


@pytest.fixture()
def population():
    return [
        simple_episode(10.0, symbol="a.Fast.m", start_ms=0.0, index=0),
        simple_episode(200.0, symbol="b.Slow.m", start_ms=1000.0, index=1),
        episode(
            dispatch(5000.0, 5400.0, [
                paint_iv("c.View.paint", 5000.0, 5300.0),
                gc_iv(5310.0, 5390.0),
            ]),
            index=2,
        ),
        episode(dispatch(9000.0, 9050.0), index=3),  # structureless
    ]


class TestFilters:
    def test_perceptible(self, population):
        query = EpisodeQuery(population).perceptible()
        assert query.count() == 2

    def test_duration_filters(self, population):
        assert EpisodeQuery(population).faster_than(100.0).count() == 2
        assert EpisodeQuery(population).slower_than(300.0).count() == 1

    def test_triggered_by(self, population):
        assert EpisodeQuery(population).triggered_by(Trigger.INPUT).count() == 2
        assert EpisodeQuery(population).triggered_by(
            Trigger.OUTPUT
        ).count() == 1
        assert EpisodeQuery(population).triggered_by(
            Trigger.UNSPECIFIED
        ).count() == 1

    def test_containing(self, population):
        assert EpisodeQuery(population).containing(IntervalKind.GC).count() == 1
        assert EpisodeQuery(population).not_containing(
            IntervalKind.GC
        ).count() == 3

    def test_touching_symbol(self, population):
        assert EpisodeQuery(population).touching_symbol("Slow").count() == 1

    def test_between_seconds(self, population):
        assert EpisodeQuery(population).between_seconds(0.5, 6.0).count() == 2

    def test_with_structure(self, population):
        assert EpisodeQuery(population).with_structure().count() == 3

    def test_chaining(self, population):
        query = (
            EpisodeQuery(population)
            .perceptible()
            .triggered_by(Trigger.OUTPUT)
            .containing(IntervalKind.GC)
        )
        assert query.count() == 1

    def test_immutability(self, population):
        base = EpisodeQuery(population)
        base.perceptible()
        assert base.count() == 4

    def test_where_custom(self, population):
        odd = EpisodeQuery(population).where(lambda ep: ep.index % 2 == 1)
        assert odd.count() == 2


class TestTerminals:
    def test_worst(self, population):
        worst = EpisodeQuery(population).worst(2)
        assert [ep.index for ep in worst] == [2, 1]

    def test_first(self, population):
        assert EpisodeQuery(population).first().index == 0
        assert EpisodeQuery([]).first() is None

    def test_total_lag(self, population):
        assert EpisodeQuery(population).total_lag_ms() == pytest.approx(
            10.0 + 200.0 + 400.0 + 50.0
        )

    def test_iteration_and_len(self, population):
        query = EpisodeQuery(population)
        assert len(query) == 4
        assert len(list(query)) == 4

    def test_to_list_copy(self, population):
        query = EpisodeQuery(population)
        result = query.to_list()
        result.clear()
        assert query.count() == 4
