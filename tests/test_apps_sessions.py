"""Tests for session scripting and the public simulate API."""

import pytest

from repro.apps.sessions import (
    SessionScript,
    build_catalog,
    simulate_session,
    simulate_sessions,
)
from repro.apps.catalog import get_spec
from repro.core.intervals import IntervalKind
from repro.vm.jvm import MicroBurst, PostedEvent

SCALE = 0.08


class TestSessionScript:
    def _script(self, app="CrosswordSage", session_index=0):
        spec = get_spec(app)
        catalog = build_catalog(spec, seed=99)
        return SessionScript(spec, catalog, session_index, seed=99, scale=SCALE)

    def test_rejects_bad_scale(self):
        spec = get_spec("CrosswordSage")
        catalog = build_catalog(spec, seed=99)
        with pytest.raises(ValueError):
            SessionScript(spec, catalog, 0, seed=99, scale=0.0)
        with pytest.raises(ValueError):
            SessionScript(spec, catalog, 0, seed=99, scale=1.5)

    def test_events_within_session(self):
        script = self._script()
        duration_ns = round(script.duration_s * 1e9)
        for event in script.events():
            assert 0 <= event.time_ns <= duration_ns * 1.01

    def test_event_mix(self):
        events = self._script().events()
        assert any(isinstance(e, PostedEvent) for e in events)
        assert any(isinstance(e, MicroBurst) for e in events)

    def test_sessions_differ_in_timing(self):
        a = self._script(session_index=0).events()
        b = self._script(session_index=1).events()
        times_a = sorted(e.time_ns for e in a)
        times_b = sorted(e.time_ns for e in b)
        assert times_a != times_b

    def test_script_deterministic(self):
        a = self._script().events()
        b = self._script().events()
        assert [e.time_ns for e in a] == [e.time_ns for e in b]

    def test_animation_posts_for_jmol(self):
        script = self._script("JMol")
        posted = [e for e in script.events() if isinstance(e, PostedEvent)]
        # Animation posts share a single behavior object.
        from collections import Counter

        behaviors = Counter(id(e.behavior) for e in posted)
        assert behaviors.most_common(1)[0][1] > 50

    def test_explicit_gc_events_for_arabeske(self):
        script = self._script("Arabeske")
        from repro.vm.behavior import ExplicitGc

        posted = [e for e in script.events() if isinstance(e, PostedEvent)]
        with_gc = [
            e for e in posted
            if any(isinstance(s, ExplicitGc) for s in e.behavior.steps)
        ]
        assert with_gc

    def test_background_timelines_for_findbugs(self):
        script = self._script("FindBugs")
        names = {t.thread_name for t in script.background_timelines()}
        assert "findbugs-analysis" in names
        loader = next(
            t for t in script.background_timelines()
            if t.thread_name == "findbugs-analysis"
        )
        assert loader.busy_ns() > 0


class TestSimulateSession:
    def test_returns_valid_trace(self):
        trace = simulate_session("CrosswordSage", scale=SCALE)
        trace.validate()
        assert trace.application == "CrosswordSage"
        assert trace.episodes
        assert trace.short_episode_count > 0

    def test_deterministic(self):
        a = simulate_session("CrosswordSage", seed=5, scale=SCALE)
        b = simulate_session("CrosswordSage", seed=5, scale=SCALE)
        assert len(a.episodes) == len(b.episodes)
        assert a.metadata.end_ns == b.metadata.end_ns
        assert [e.duration_ns for e in a.episodes] == [
            e.duration_ns for e in b.episodes
        ]

    def test_seed_changes_output(self):
        a = simulate_session("CrosswordSage", seed=5, scale=SCALE)
        b = simulate_session("CrosswordSage", seed=6, scale=SCALE)
        assert [e.duration_ns for e in a.episodes] != [
            e.duration_ns for e in b.episodes
        ]

    def test_simulate_sessions_count(self):
        traces = simulate_sessions("CrosswordSage", count=2, scale=SCALE)
        assert len(traces) == 2
        assert traces[0].metadata.session_id != traces[1].metadata.session_id

    def test_patterns_recur_across_sessions(self):
        # Sessions share the catalog: their pattern keys must overlap.
        from repro.core.patterns import PatternTable

        traces = simulate_sessions("CrosswordSage", count=2, scale=SCALE)
        keys = [
            {p.key for p in PatternTable.from_episodes(t.episodes)}
            for t in traces
        ]
        shared = keys[0] & keys[1]
        assert len(shared) >= 3

    def test_samples_inside_episodes(self):
        trace = simulate_session("CrosswordSage", scale=SCALE)
        spans = [(ep.start_ns, ep.end_ns) for ep in trace.episodes]
        for sample in trace.samples:
            assert any(s <= sample.timestamp_ns < e for s, e in spans)

    def test_gc_replicated_to_daemon_threads(self):
        trace = simulate_session("ArgoUML", scale=SCALE)
        gui_gcs = len(trace.gc_intervals())
        if gui_gcs == 0:
            pytest.skip("no GC occurred at this scale")
        finalizer_roots = trace.thread_roots["Finalizer"]
        assert len(finalizer_roots) == gui_gcs
        assert all(r.kind is IntervalKind.GC for r in finalizer_roots)
