"""Tests for the lagalyzer command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_subcommand_prints_help_and_succeeds(self, capsys):
        # Since PR 6, a bare invocation is a help screen, not an error.
        args = build_parser().parse_args([])
        assert args.command is None
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "usage:" in out
        assert "ingest" in out

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--app", "JMol"])
        assert args.app == "JMol"
        assert args.scale == 1.0
        assert args.output == "session.lila"


class TestCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "t.lila"
        code = main([
            "simulate", "--app", "CrosswordSage",
            "--scale", "0.05", "-o", str(path),
        ])
        assert code == 0
        return path

    def test_simulate_writes_trace(self, trace_file):
        assert trace_file.exists()
        assert trace_file.read_text().startswith("#%lila")

    def test_analyze(self, trace_file, capsys):
        code = main(["analyze", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Application: CrosswordSage" in out
        assert "Min[ms]" in out

    def test_analyze_perceptible_only(self, trace_file, capsys):
        code = main(["analyze", str(trace_file), "--perceptible-only",
                     "--threshold", "50"])
        assert code == 0

    def test_sketch_default_episode(self, trace_file, tmp_path, capsys):
        out_svg = tmp_path / "sketch.svg"
        code = main(["sketch", str(trace_file), "-o", str(out_svg)])
        assert code == 0
        assert out_svg.read_text().startswith("<svg")

    def test_sketch_specific_episode(self, trace_file, tmp_path):
        out_svg = tmp_path / "sketch.svg"
        code = main(["sketch", str(trace_file), "--episode", "0",
                     "-o", str(out_svg)])
        assert code == 0

    def test_sketch_bad_index(self, trace_file, tmp_path, capsys):
        code = main(["sketch", str(trace_file), "--episode", "999999",
                     "-o", str(tmp_path / "x.svg")])
        assert code == 1
        assert "out of range" in capsys.readouterr().err

    def test_timeline(self, trace_file, tmp_path):
        out_svg = tmp_path / "timeline.svg"
        code = main(["timeline", str(trace_file), "-o", str(out_svg)])
        assert code == 0
        assert out_svg.read_text().startswith("<svg")

    def test_lint_valid_trace(self, trace_file, capsys):
        code = main(["lint", str(trace_file)])
        assert code == 0
        assert str(trace_file) in capsys.readouterr().out

    def test_lint_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.lila"
        bad.write_text("not a trace\n")
        code = main(["lint", str(bad)])
        assert code == 2
        assert "FMT000" in capsys.readouterr().out

    def test_export_json(self, trace_file, tmp_path):
        out = tmp_path / "analysis.json"
        code = main(["export", str(trace_file), "-o", str(out)])
        assert code == 0
        import json

        assert json.loads(out.read_text())["application"] == "CrosswordSage"

    def test_export_csv(self, trace_file, tmp_path):
        out = tmp_path / "patterns.csv"
        code = main([
            "export", str(trace_file), "--format", "csv", "-o", str(out),
        ])
        assert code == 0
        assert out.read_text().startswith("rank,")

    def test_compare_same_traces(self, trace_file, capsys):
        code = main([
            "compare", "--before", str(trace_file),
            "--after", str(trace_file),
        ])
        assert code == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_analyze_inspect(self, trace_file, capsys):
        code = main(["analyze", str(trace_file), "--inspect", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "drill-down into pattern #1" in out
        assert "location:" in out

    def test_analyze_inspect_out_of_range(self, trace_file, capsys):
        code = main(["analyze", str(trace_file), "--inspect", "99999"])
        assert code == 1
        assert "out of range" in capsys.readouterr().err

    def test_analyze_lag_distribution_line(self, trace_file, capsys):
        code = main(["analyze", str(trace_file)])
        assert code == 0
        assert "Lag distribution: n=" in capsys.readouterr().out
