"""Cross-process trace propagation over the ingest wire.

Covers the protocol-minor-1 wire format (context blocks in HELLO and
BATCH frames, byte-compatibility with minor 0 when absent), the
deterministic seed-derived sampling decision, and the acceptance
property end to end: with an observer installed, the daemon's
``ingest.server.frame`` / ``ingest.server.flush`` spans parent under
the client's ``ingest.client.send`` spans so ``Observer.absorb``
renders one send→ack→flush tree — under a serial session and under
concurrent sessions alike.
"""

from __future__ import annotations

import gzip
import json
import struct
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.ingest import IngestServer, TraceClient, protocol
from repro.ingest.protocol import ProtocolError
from repro.obs import Observer, TraceContext
from repro.obs import runtime as obs_runtime
from repro.obs.context import (
    carrier_span,
    hash_fraction,
    sample_decision,
    trace_id_for,
)


def record_lines(count: int = 8, offset: int = 0):
    """Spool-able record lines (the daemon stores them verbatim)."""
    return [f"record-{offset + i}" for i in range(count)]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


class TestBatchWireFormat:
    def test_no_context_is_byte_identical_to_minor_0(self):
        lines = record_lines(3)
        payload = protocol.encode_batch(lines)
        legacy = struct.pack("!I", len(lines)) + gzip.compress(
            "\n".join(lines).encode("utf-8"), mtime=0
        )
        assert payload == legacy
        # High bit clear: a minor-0 receiver reads the count unchanged.
        (count,) = struct.unpack("!I", payload[:4])
        assert count == len(lines)

    def test_context_roundtrip(self):
        lines = record_lines(5)
        context = TraceContext.mint("s-ctx", seed=7)
        payload = protocol.encode_batch(lines, context=context.to_dict())
        decoded_lines, raw = protocol.decode_batch_context(payload)
        assert decoded_lines == lines
        assert TraceContext.from_dict(raw) == context

    def test_decode_batch_drops_context(self):
        lines = record_lines(4)
        context = TraceContext.mint("s-drop")
        payload = protocol.encode_batch(lines, context=context.to_dict())
        assert protocol.decode_batch(payload) == lines

    def test_truncated_context_block_raises(self):
        context = TraceContext.mint("s-trunc")
        payload = protocol.encode_batch(
            record_lines(2), context=context.to_dict()
        )
        # Chop inside the context blob: the frame is structurally
        # damaged (payload, not telemetry) and must be rejected.
        with pytest.raises(ProtocolError, match="context block truncated"):
            protocol.decode_batch_context(payload[:7])

    def test_malformed_context_json_degrades_to_none(self):
        lines = record_lines(2)
        blob = b"{not json"
        payload = (
            struct.pack("!I", len(lines) | 0x80000000)
            + struct.pack("!H", len(blob))
            + blob
            + gzip.compress("\n".join(lines).encode("utf-8"), mtime=0)
        )
        decoded_lines, raw = protocol.decode_batch_context(payload)
        assert decoded_lines == lines
        assert raw is None

    def test_hello_context_roundtrip(self):
        context = TraceContext.mint("s-hello")
        payload = protocol.encode_hello(
            "s-hello", "App", context=context.to_dict()
        )
        session, application, raw = protocol.decode_hello_context(payload)
        assert (session, application) == ("s-hello", "App")
        assert TraceContext.from_dict(raw) == context
        # Legacy decoder ignores the extra key entirely.
        assert protocol.decode_hello(payload) == ("s-hello", "App")

    def test_hello_without_context(self):
        payload = protocol.encode_hello("s0", "App")
        assert b"trace" not in payload
        _, _, raw = protocol.decode_hello_context(payload)
        assert raw is None


# ----------------------------------------------------------------------
# Deterministic sampling and context identity
# ----------------------------------------------------------------------


class TestSampling:
    def test_hash_fraction_is_deterministic_and_uniform_ish(self):
        a = hash_fraction(42, "obs.sample", "s0")
        assert a == hash_fraction(42, "obs.sample", "s0")
        assert 0.0 <= a < 1.0
        assert a != hash_fraction(43, "obs.sample", "s0")

    def test_rate_edges(self):
        assert sample_decision(0, "any", 1.0) is True
        assert sample_decision(0, "any", 0.0) is False

    def test_partial_rate_matches_hash(self):
        for key in ("s0", "s1", "s2", "s3"):
            expected = hash_fraction(5, "obs.sample", key) < 0.5
            assert sample_decision(5, key, 0.5) is expected

    def test_trace_id_is_stable_per_key_and_seed(self):
        assert trace_id_for("s0", 1) == trace_id_for("s0", 1)
        assert trace_id_for("s0", 1) != trace_id_for("s0", 2)
        assert trace_id_for("s0", 1) != trace_id_for("s1", 1)
        assert len(trace_id_for("s0")) == 16

    def test_mint_and_child_share_trace_id(self):
        root = TraceContext.mint("s0", seed=3)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.sampled is root.sampled

    def test_from_dict_rejects_malformed(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace_id": "t"}) is None
        assert TraceContext.from_dict(
            {"trace_id": "", "span_id": "s"}
        ) is None
        assert TraceContext.from_dict(
            {"trace_id": 5, "span_id": "s"}
        ) is None

    def test_carrier_span_is_noop_without_observer(self):
        context = TraceContext.mint("s0")
        with carrier_span("x", context) as span:
            assert span is None

    def test_carrier_span_adopts_the_propagated_id(self):
        obs = Observer()
        context = TraceContext.mint("s0", seed=9)
        with obs_runtime.installed(obs):
            with carrier_span("ingest.client.send", context, seq=1):
                pass
        (span,) = obs.spans()
        assert span.span_id == context.span_id
        assert span.attrs["trace_id"] == context.trace_id


# ----------------------------------------------------------------------
# End to end: one send→ack→flush tree per batch
# ----------------------------------------------------------------------


def _run_sessions(tmp_path, n_sessions, workers, **client_kwargs):
    """Replay ``n_sessions`` through a live daemon; the observer's spans."""
    obs = Observer()
    with obs_runtime.installed(obs):
        server = IngestServer(spool_dir=tmp_path / "spools")
        server.start()
        try:
            def one(index: int):
                client = TraceClient(
                    server.address,
                    session=f"s{index}",
                    application="App",
                    batch_records=4,
                    **client_kwargs,
                )
                with client:
                    client.extend(record_lines(12, offset=index * 100))
                return client

            if workers == 0:
                clients = [one(i) for i in range(n_sessions)]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    clients = list(pool.map(one, range(n_sessions)))
        finally:
            server.stop()
        stats = server.stats()
    return obs.spans(), clients, stats


class TestSpanTreeParity:
    @pytest.mark.parametrize(
        ("n_sessions", "workers"), [(1, 0), (2, 2)],
        ids=["serial", "concurrent"],
    )
    def test_server_spans_parent_under_client_sends(
        self, tmp_path, n_sessions, workers
    ):
        spans, clients, stats = _run_sessions(
            tmp_path, n_sessions, workers
        )
        sends = [s for s in spans if s.name == "ingest.client.send"]
        frames = [s for s in spans if s.name == "ingest.server.frame"]
        flushes = [s for s in spans if s.name == "ingest.server.flush"]
        assert sends and frames and flushes
        send_ids = {s.span_id for s in sends}
        # The acceptance property: every daemon-side span attaches to
        # the client send span that caused it — one tree per batch.
        for span in frames + flushes:
            assert span.parent_id in send_ids, span.name
        # And every span of a session carries that session's trace id.
        for client in clients:
            trace_id = client.trace_context.trace_id
            session_spans = [
                s for s in spans
                if s.attrs.get("session") == client.session
            ]
            assert session_spans
            for span in session_spans:
                assert span.attrs["trace_id"] == trace_id
        assert stats["records_flushed"] == 12 * n_sessions

    def test_trace_ids_are_deterministic_across_runs(self, tmp_path):
        spans_a, clients_a, _ = _run_sessions(tmp_path / "a", 1, 0)
        spans_b, clients_b, _ = _run_sessions(tmp_path / "b", 1, 0)
        assert (
            clients_a[0].trace_context.trace_id
            == clients_b[0].trace_context.trace_id
        )

    def test_sampling_off_sends_no_context(self, tmp_path):
        spans, clients, stats = _run_sessions(
            tmp_path, 1, 0, sample_rate=0.0
        )
        assert not [s for s in spans if s.name.startswith("ingest.")]
        assert stats["records_flushed"] == 12  # ingest unaffected

    def test_propagate_off_sends_no_context(self, tmp_path):
        spans, clients, stats = _run_sessions(
            tmp_path, 1, 0, propagate=False
        )
        assert not [s for s in spans if s.name.startswith("ingest.")]
        assert stats["records_flushed"] == 12

    def test_unpropagated_traffic_still_flushes(self, tmp_path):
        # No observer installed at all: the old wire format, end to end.
        server = IngestServer(spool_dir=tmp_path / "spools")
        server.start()
        try:
            with TraceClient(
                server.address, session="legacy", application="App"
            ) as client:
                client.extend(record_lines(6))
        finally:
            server.stop()
        assert server.stats()["records_flushed"] == 6
        (row,) = server.session_summaries()
        assert row["trace_id"] is None
