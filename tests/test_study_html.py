"""Tests for the HTML study report."""

import pytest

from repro.study.html import render_html_report, write_html_report
from repro.study.runner import StudyConfig, run_study


@pytest.fixture(scope="module")
def tiny_result():
    return run_study(
        StudyConfig(
            sessions=1, scale=0.05, applications=("CrosswordSage", "JMol")
        )
    )


class TestHtmlReport:
    def test_is_complete_document(self, tiny_result):
        html = render_html_report(tiny_result)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")

    def test_embeds_all_figures_inline(self, tiny_result):
        html = render_html_report(tiny_result)
        # fig3 + fig4 + 2 each for figures 5-8 = 10 inline SVGs.
        assert html.count("<svg") == 10
        assert "src=" not in html  # nothing external

    def test_contains_tables(self, tiny_result):
        html = render_html_report(tiny_result)
        assert "Table II" in html
        assert "Table III" in html
        assert "CrosswordSage" in html

    def test_mentions_config(self, tiny_result):
        html = render_html_report(tiny_result)
        assert "scale 0.05" in html

    def test_write(self, tiny_result, tmp_path):
        path = write_html_report(tiny_result, tmp_path / "report.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")
