"""Unit tests for the virtual clock and deterministic RNG streams."""

import pytest

from repro.core.errors import SimulationError
from repro.vm.clock import VirtualClock
from repro.vm.rng import RngStream


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_ns(self):
        clock = VirtualClock()
        assert clock.advance_ns(1500) == 1500
        assert clock.now_ns == 1500

    def test_advance_ms(self):
        clock = VirtualClock()
        clock.advance_ms(2.5)
        assert clock.now_ns == 2_500_000
        assert clock.now_ms == pytest.approx(2.5)

    def test_advance_to_future_only(self):
        clock = VirtualClock(1000)
        clock.advance_to(5000)
        assert clock.now_ns == 5000
        clock.advance_to(100)  # in the past: no-op
        assert clock.now_ns == 5000

    def test_rejects_backwards(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance_ns(-1)


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_forks_are_independent_of_parent_consumption(self):
        a = RngStream(42)
        fork_before = a.fork("child")
        a.random()  # consume from the parent
        fork_after = RngStream(42).fork("child")
        assert fork_before.random() == fork_after.random()

    def test_sibling_forks_differ(self):
        root = RngStream(42)
        assert root.fork("a").random() != root.fork("b").random()

    def test_lognormal_median(self):
        rng = RngStream(7)
        draws = sorted(rng.lognormal_ms(50.0, 0.5) for _ in range(2001))
        assert draws[1000] == pytest.approx(50.0, rel=0.15)
        assert all(d > 0 for d in draws)

    def test_exponential_mean(self):
        rng = RngStream(7)
        draws = [rng.exponential_ms(20.0) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(20.0, rel=0.1)

    def test_exponential_zero_mean(self):
        assert RngStream(1).exponential_ms(0.0) == 0.0

    def test_poisson_small_mean(self):
        rng = RngStream(7)
        draws = [rng.poisson(3.0) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.1)

    def test_poisson_large_mean_uses_normal_approx(self):
        rng = RngStream(7)
        draws = [rng.poisson(10_000.0) for _ in range(200)]
        assert sum(draws) / len(draws) == pytest.approx(10_000.0, rel=0.05)
        assert all(isinstance(d, int) and d >= 0 for d in draws)

    def test_poisson_zero(self):
        assert RngStream(1).poisson(0.0) == 0

    def test_zipf_weights(self):
        weights = RngStream(1).zipf_weights(5, exponent=1.0)
        assert weights[0] == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[4] == pytest.approx(0.2)

    def test_chance_extremes(self):
        rng = RngStream(3)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_weighted_choice_respects_weights(self):
        rng = RngStream(3)
        picks = [
            rng.weighted_choice(("a", "b"), (0.99, 0.01)) for _ in range(500)
        ]
        assert picks.count("a") > 400

    def test_jitter_ns_non_negative(self):
        rng = RngStream(3)
        assert all(rng.jitter_ns(100, 1.5) >= 0 for _ in range(200))
