"""Unit tests for the LagAlyzer facade."""

import pytest

from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.errors import AnalysisError
from repro.core.occurrence import OccurrenceSummary
from repro.core.triggers import Trigger

from helpers import dispatch, listener_iv, make_trace


def _trace(application="TestApp"):
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)]),
        dispatch(100.0, 280.0, [listener_iv("b.B.m", 100.0, 279.0)]),
    ]
    return make_trace(roots, e2e_ms=10_000.0, application=application)


class TestConstruction:
    def test_requires_traces(self):
        with pytest.raises(AnalysisError, match="at least one"):
            LagAlyzer([])

    def test_rejects_mixed_applications(self):
        with pytest.raises(AnalysisError, match="same application"):
            LagAlyzer([_trace("A"), _trace("B")])

    def test_from_traces(self):
        analyzer = LagAlyzer.from_traces([_trace()])
        assert analyzer.application == "TestApp"

    def test_load_from_files(self, tmp_path):
        from repro.lila.writer import write_trace

        paths = [
            write_trace(_trace(), tmp_path / "s0.lila"),
            write_trace(_trace(), tmp_path / "s1.lila"),
        ]
        analyzer = LagAlyzer.load(paths)
        assert len(analyzer.traces) == 2


class TestQueries:
    def test_episodes_span_sessions(self):
        analyzer = LagAlyzer.from_traces([_trace(), _trace()])
        assert len(analyzer.episodes) == 4

    def test_perceptible_uses_config_threshold(self):
        strict = LagAlyzer.from_traces(
            [_trace()], config=AnalysisConfig(perceptible_threshold_ms=300.0)
        )
        assert len(strict.perceptible_episodes()) == 0
        default = LagAlyzer.from_traces([_trace()])
        assert len(default.perceptible_episodes()) == 1

    def test_pattern_table_cached(self):
        analyzer = LagAlyzer.from_traces([_trace()])
        assert analyzer.pattern_table() is analyzer.pattern_table()

    def test_pattern_of_episode(self):
        analyzer = LagAlyzer.from_traces([_trace()])
        episode = analyzer.episodes[0]
        pattern = analyzer.pattern_of(episode)
        assert pattern is not None
        assert episode in pattern.episodes

    def test_pattern_of_structureless_is_none(self):
        trace = make_trace([dispatch(0.0, 50.0)])
        analyzer = LagAlyzer.from_traces([trace])
        assert analyzer.pattern_of(analyzer.episodes[0]) is None

    def test_all_summaries_run(self):
        analyzer = LagAlyzer.from_traces([_trace()])
        assert isinstance(analyzer.occurrence_summary(), OccurrenceSummary)
        assert analyzer.trigger_summary().total == 2
        assert analyzer.trigger_summary(perceptible_only=True).total == 1
        assert analyzer.location_summary().episode_ns > 0
        analyzer.concurrency_summary()
        analyzer.threadstate_summary()

    def test_trigger_summary_classification(self):
        analyzer = LagAlyzer.from_traces([_trace()])
        assert analyzer.trigger_summary().counts[Trigger.INPUT] == 2

    def test_session_stats_per_trace(self):
        analyzer = LagAlyzer.from_traces([_trace(), _trace()])
        rows = analyzer.session_stats()
        assert len(rows) == 2
        mean = analyzer.mean_session_stats()
        assert mean.application == "TestApp"
        assert mean.traced == pytest.approx(2.0)

    def test_config_with_threshold(self):
        config = AnalysisConfig().with_threshold(150.0)
        assert config.perceptible_threshold_ms == 150.0
        # Original untouched (frozen dataclass copy).
        assert AnalysisConfig().perceptible_threshold_ms == 100.0
