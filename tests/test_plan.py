"""Fused analysis plans: byte-identity with the per-analysis path.

The whole point of :mod:`repro.core.plan` is that fusing N analyses
into one pass per trace changes *nothing* about the numbers — partials,
reduced summaries, quarantine behavior, and cache contents must match
the classic one-analysis-at-a-time path bit for bit. These tests pin
that contract over the checked-in golden corpus (columnar traces) and
freshly simulated object-graph traces, for every registered analysis,
with and without the perceptible-only filter, and under mid-plan fault
injection.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.core import analyses as analyses_mod
from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.errors import AnalysisError
from repro.core.plan import StageContext, build_plan, plan_fingerprint
from repro.engine.engine import AnalysisEngine
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults import runtime as faults_runtime
from repro.obs import Observer
from repro.obs import runtime as obs_runtime

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATHS = [
    GOLDEN_DIR / f"CrosswordSage-session-{index}.lila" for index in range(3)
]
ALL_NAMES = tuple(analyses_mod.REGISTRY)
CONFIG = AnalysisConfig(perceptible_threshold_ms=100.0)


@pytest.fixture(scope="module")
def golden_traces():
    """The golden corpus, loaded the normal way (columnar-backed)."""
    traces = LagAlyzer.load(GOLDEN_PATHS, config=CONFIG).traces
    assert all(getattr(t, "columnar", None) is not None for t in traces)
    return traces


@pytest.fixture(scope="module")
def object_traces():
    """Simulated plain object-graph traces (no columnar store)."""
    from repro.apps.sessions import simulate_sessions

    traces = simulate_sessions("CrosswordSage", 2, scale=0.05)
    assert all(getattr(t, "columnar", None) is None for t in traces)
    return traces


def _flag_matrix():
    """(analysis name, perceptible_only) for every legal combination."""
    for name in ALL_NAMES:
        yield name, False
        if analyses_mod.get_analysis(name).supports_perceptible_only:
            yield name, True


# ---------------------------------------------------------------------------
# Parity: fused pass vs per-analysis path
# ---------------------------------------------------------------------------


def _assert_parity(traces):
    plan = build_plan(ALL_NAMES)
    fused_per_trace = [plan.execute(trace, CONFIG) for trace in traces]
    for name in ALL_NAMES:
        analysis = analyses_mod.get_analysis(name)
        for trace, fused in zip(traces, fused_per_trace):
            legacy_partial = analysis.map_trace(trace, CONFIG)
            assert pickle.dumps(fused[name]) == pickle.dumps(
                legacy_partial
            ), f"fused partial for {name} drifted"
    for name, flag in _flag_matrix():
        analysis = analyses_mod.get_analysis(name)
        legacy = analysis.summarize(traces, CONFIG, perceptible_only=flag)
        fused = analysis.reduce(
            [partials[name] for partials in fused_per_trace],
            perceptible_only=flag,
        )
        assert pickle.dumps(fused) == pickle.dumps(
            legacy
        ), f"fused summary for {name} (perceptible_only={flag}) drifted"


def test_fused_matches_legacy_on_golden_corpus(golden_traces):
    _assert_parity(golden_traces)


def test_fused_matches_legacy_on_object_traces(object_traces):
    _assert_parity(object_traces)


def test_api_summaries_matches_individual_summary_calls(golden_traces):
    analyzer = LagAlyzer(golden_traces, config=CONFIG)
    fused = analyzer.summaries()
    assert set(fused) == set(ALL_NAMES)
    for name in ALL_NAMES:
        assert pickle.dumps(fused[name]) == pickle.dumps(
            analyzer.summary(name)
        )


def test_engine_summarize_all_matches_serial(golden_traces, tmp_path):
    engine = AnalysisEngine(
        workers=1, cache_dir=tmp_path / "cache", use_cache=True
    )
    via_engine = engine.summarize_all(ALL_NAMES, golden_traces, CONFIG)
    warm = engine.summarize_all(ALL_NAMES, golden_traces, CONFIG)
    analyzer = LagAlyzer(golden_traces, config=CONFIG)
    serial = analyzer.summaries()
    for name in ALL_NAMES:
        assert pickle.dumps(via_engine[name]) == pickle.dumps(serial[name])
        assert pickle.dumps(warm[name]) == pickle.dumps(serial[name])


# ---------------------------------------------------------------------------
# Plan mechanics: sharing, fingerprints, construction
# ---------------------------------------------------------------------------


def test_stage_context_memoizes_and_counts_hits(golden_traces):
    ctx = StageContext(golden_traces[0], CONFIG)
    first = ctx.episode_split()
    assert ctx.shared_hits == 0
    again = ctx.episode_split()
    assert again is first
    assert ctx.shared_hits == 1
    # A stage keyed by different mining parameters is a different stage.
    counts_a = ctx.pattern_counts(100.0, False, False)
    counts_b = ctx.pattern_counts(150.0, False, False)
    assert ctx.shared_hits == 1
    assert ctx.pattern_counts(100.0, False, False) is counts_a
    assert counts_b is not counts_a
    assert ctx.shared_hits == 2


def test_full_plan_shares_stages_and_counts(golden_traces):
    obs = Observer()
    plan = build_plan(ALL_NAMES)
    with obs_runtime.installed(obs):
        plan.execute(golden_traces[0], CONFIG)
    counters = obs.metrics.as_dict()["counters"]
    assert counters["engine.fused_passes"] == 1
    assert counters["plan.operators"] == len(ALL_NAMES)
    # Seven analyses over one trace: the episode split and pattern
    # tallies are each computed once and served from the memo after.
    assert counters["plan.shared_hits"] > 0
    assert "pattern_counts" in plan.shared_stage_names()
    assert "episode_split" in plan.shared_stage_names()


def test_plan_fingerprint_is_order_insensitive():
    assert plan_fingerprint(["triggers", "location"]) == plan_fingerprint(
        ["location", "triggers"]
    )
    assert plan_fingerprint(["triggers", "triggers"]) == plan_fingerprint(
        ["triggers"]
    )
    assert plan_fingerprint(["triggers"]) != plan_fingerprint(["location"])
    assert build_plan(ALL_NAMES).fingerprint() == plan_fingerprint(ALL_NAMES)


def test_build_plan_dedupes_and_rejects_unknown_names():
    plan = build_plan(["triggers", "location", "triggers"])
    assert plan.names == ("triggers", "location")
    with pytest.raises(AnalysisError):
        build_plan(["triggers", "no-such-analysis"])


def test_single_operator_plan_describes_without_sharing():
    plan = build_plan(["triggers"])
    assert plan.shared_stage_names() == []
    text = "\n".join(plan.describe())
    assert "single-operator plan" in text


# ---------------------------------------------------------------------------
# Fault injection: mid-plan failure quarantines like the legacy path
# ---------------------------------------------------------------------------


def _truncation_plan(session_id: str) -> FaultPlan:
    return FaultPlan(
        seed=13,
        rules=(
            FaultRule(
                kind="trace_truncated",
                site="trace.map",
                at=(f"CrosswordSage/{session_id}",),
            ),
        ),
    )


def test_midplan_fault_quarantines_trace_exactly_like_legacy(golden_traces):
    engine = AnalysisEngine(workers=1, use_cache=False)
    injector = FaultInjector(_truncation_plan("session-1"))
    with faults_runtime.installed(injector):
        faulted = engine.summarize_all(ALL_NAMES, golden_traces, CONFIG)
    (entry,) = engine.quarantined
    assert entry.index == 1
    assert entry.session_id == "session-1"
    # The fused pass maps each trace once, so the fault fires once for
    # the damaged trace — not once per analysis.
    assert len(injector.events) == 1
    # Surviving sessions are byte-identical to analyzing them alone.
    survivors = [golden_traces[0], golden_traces[2]]
    clean = AnalysisEngine(workers=1, use_cache=False).summarize_all(
        ALL_NAMES, survivors, CONFIG
    )
    for name in ALL_NAMES:
        assert pickle.dumps(faulted[name]) == pickle.dumps(clean[name])


def test_midplan_fault_matches_per_analysis_quarantine(golden_traces):
    fused_engine = AnalysisEngine(workers=1, use_cache=False)
    with faults_runtime.installed(
        FaultInjector(_truncation_plan("session-0"))
    ):
        fused = fused_engine.summarize_all(ALL_NAMES, golden_traces, CONFIG)
    fused_quarantined = [e.describe() for e in fused_engine.quarantined]
    legacy: dict = {}
    legacy_engine = AnalysisEngine(workers=1, use_cache=False)
    for name in ALL_NAMES:
        with faults_runtime.installed(
            FaultInjector(_truncation_plan("session-0"))
        ):
            legacy[name] = legacy_engine.summarize(
                name, golden_traces, CONFIG
            )
    assert [e.describe() for e in legacy_engine.quarantined][
        -1:
    ] == fused_quarantined
    for name in ALL_NAMES:
        assert pickle.dumps(fused[name]) == pickle.dumps(legacy[name])
