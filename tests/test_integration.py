"""End-to-end integration tests.

These run the real pipeline — simulate a session, serialize it to the
LiLa format, read it back, analyze — and check that the paper's
qualitative claims (the "shape" of the results) hold at reduced scale.
"""

import pytest

from repro import LagAlyzer, simulate_session
from repro.apps.sessions import simulate_sessions
from repro.core.triggers import Trigger
from repro.lila.reader import read_trace
from repro.lila.writer import write_trace

SCALE = 0.2
SEED = 20100401


@pytest.fixture(scope="module")
def jmol_trace():
    return simulate_session("JMol", seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def euclide_analyzer():
    trace = simulate_session("Euclide", seed=SEED, scale=SCALE)
    return LagAlyzer.from_traces([trace])


class TestFileRoundtripEquivalence:
    def test_analysis_identical_after_roundtrip(self, jmol_trace, tmp_path):
        path = write_trace(jmol_trace, tmp_path / "jmol.lila")
        loaded = read_trace(path)

        direct = LagAlyzer.from_traces([jmol_trace])
        via_file = LagAlyzer.from_traces([loaded])

        assert len(direct.episodes) == len(via_file.episodes)
        assert (
            direct.pattern_table().distinct_count
            == via_file.pattern_table().distinct_count
        )
        assert direct.trigger_summary().counts == (
            via_file.trigger_summary().counts
        )
        assert direct.threadstate_summary().counts == (
            via_file.threadstate_summary().counts
        )
        assert direct.mean_session_stats().as_dict() == pytest.approx(
            via_file.mean_session_stats().as_dict()
        )


class TestPaperShapeClaims:
    def test_jmol_output_dominates_perceptible(self, jmol_trace):
        analyzer = LagAlyzer.from_traces([jmol_trace])
        triggers = analyzer.trigger_summary(perceptible_only=True)
        assert triggers.fraction(Trigger.OUTPUT) > 0.8

    def test_jmol_one_pattern_dominates(self, jmol_trace):
        analyzer = LagAlyzer.from_traces([jmol_trace])
        perceptible = analyzer.pattern_table().perceptible_only()
        top = perceptible.by_count()[0]
        total = sum(
            p.perceptible_count() for p in perceptible
        )
        assert top.perceptible_count() / total > 0.5

    def test_euclide_sleep_dominates_causes(self, euclide_analyzer):
        states = euclide_analyzer.threadstate_summary(perceptible_only=True)
        assert states.sleeping_fraction > 0.25
        assert states.sleeping_fraction > states.blocked_fraction
        assert states.sleeping_fraction > states.waiting_fraction

    def test_euclide_library_dominates_location(self, euclide_analyzer):
        location = euclide_analyzer.location_summary(perceptible_only=True)
        assert location.library_fraction > 0.6

    def test_aggregate_hides_what_perceptible_reveals(self, euclide_analyzer):
        # Figure 8's headline: over *all* episodes the sleep share is
        # far smaller than over perceptible ones.
        all_eps = euclide_analyzer.threadstate_summary()
        perceptible = euclide_analyzer.threadstate_summary(
            perceptible_only=True
        )
        assert perceptible.sleeping_fraction > 2 * all_eps.sleeping_fraction

    def test_arabeske_gc_heavy(self):
        trace = simulate_session("Arabeske", seed=SEED, scale=SCALE)
        analyzer = LagAlyzer.from_traces([trace])
        location = analyzer.location_summary(perceptible_only=True)
        assert location.gc_fraction > 0.3
        triggers = analyzer.trigger_summary(perceptible_only=True)
        assert triggers.fraction(Trigger.UNSPECIFIED) > 0.3

    def test_findbugs_concurrency_above_one(self):
        trace = simulate_session("FindBugs", seed=SEED, scale=SCALE)
        analyzer = LagAlyzer.from_traces([trace])
        assert analyzer.concurrency_summary().mean_runnable > 1.1

    def test_pareto_pattern_coverage(self):
        # Figure 3: a small fraction of patterns covers most episodes.
        traces = simulate_sessions("SwingSet", count=1, seed=SEED, scale=SCALE)
        analyzer = LagAlyzer.from_traces(traces)
        cdf = analyzer.pattern_table().cumulative_episode_distribution()
        assert cdf[20] > 55.0  # top 20% of patterns >> 20% of episodes

    def test_gc_blackout_visible_in_samples(self):
        trace = simulate_session("Arabeske", seed=SEED, scale=SCALE)
        gcs = trace.gc_intervals()
        if not gcs:
            pytest.skip("no GC at this scale")
        for gc in gcs:
            inside = [
                s for s in trace.samples
                if gc.start_ns <= s.timestamp_ns < gc.end_ns
            ]
            assert inside == []

    def test_multi_session_analysis(self):
        traces = simulate_sessions(
            "CrosswordSage", count=2, seed=SEED, scale=SCALE
        )
        analyzer = LagAlyzer.from_traces(traces)
        stats = analyzer.session_stats()
        assert len(stats) == 2
        # Cross-session integration: patterns are shared.
        table = analyzer.pattern_table()
        assert any(p.count > 2 for p in table)
