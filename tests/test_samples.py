"""Unit tests for stack frames, stacks, thread states, and samples."""

import pytest

from repro.core.samples import (
    EMPTY_STACK,
    StackFrame,
    StackTrace,
    ThreadState,
    samples_in_range,
)

from helpers import GUI, gui_sample, ms


class TestThreadState:
    def test_four_states(self):
        assert {s.value for s in ThreadState} == {
            "runnable", "blocked", "waiting", "sleeping",
        }

    def test_from_name(self):
        assert ThreadState.from_name("BLOCKED") is ThreadState.BLOCKED

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown thread state"):
            ThreadState.from_name("parked")


class TestStackFrame:
    def test_qualified_name(self):
        frame = StackFrame("javax.swing.JFrame", "paint")
        assert frame.qualified_name == "javax.swing.JFrame.paint"

    def test_library_classification(self):
        assert StackFrame("javax.swing.JFrame", "paint").is_library()
        assert StackFrame("sun.font.GlyphLayout", "layout").is_library()
        assert StackFrame("com.apple.laf.AquaComboBoxUI", "x").is_library()
        assert not StackFrame("org.jmol.Canvas", "render").is_library()

    def test_library_custom_prefixes(self):
        frame = StackFrame("org.jmol.Canvas", "render")
        assert frame.is_library(prefixes=("org.jmol.",))

    def test_equality_and_hash(self):
        a = StackFrame("a.B", "m")
        b = StackFrame("a.B", "m")
        native = StackFrame("a.B", "m", is_native=True)
        assert a == b
        assert hash(a) == hash(b)
        assert a != native

    def test_equality_other_type(self):
        assert StackFrame("a.B", "m") != "a.B.m"


class TestStackTrace:
    def test_leaf_is_first_frame(self):
        leaf = StackFrame("a.Leaf", "m")
        base = StackFrame("a.Base", "run")
        stack = StackTrace([leaf, base])
        assert stack.leaf is leaf
        assert stack.depth == 2
        assert len(stack) == 2
        assert list(stack) == [leaf, base]

    def test_empty_stack(self):
        assert EMPTY_STACK.leaf is None
        assert not EMPTY_STACK.in_native()
        assert not EMPTY_STACK.in_library()

    def test_in_native(self):
        native_leaf = StackFrame("sun.x.Y", "n", is_native=True)
        assert StackTrace([native_leaf]).in_native()
        assert not StackTrace([StackFrame("a.B", "m")]).in_native()

    def test_in_library_uses_leaf(self):
        lib_over_app = StackTrace(
            [StackFrame("java.util.HashMap", "get"),
             StackFrame("org.app.Model", "update")]
        )
        app_over_lib = StackTrace(
            [StackFrame("org.app.Model", "update"),
             StackFrame("java.awt.EventQueue", "dispatch")]
        )
        assert lib_over_app.in_library()
        assert not app_over_lib.in_library()

    def test_equality_and_hash(self):
        a = StackTrace([StackFrame("a.B", "m")])
        b = StackTrace([StackFrame("a.B", "m")])
        assert a == b
        assert hash(a) == hash(b)


class TestSample:
    def test_thread_lookup(self):
        sample = gui_sample(10.0, extra_threads=[("worker", ThreadState.RUNNABLE)])
        assert sample.thread(GUI) is not None
        assert sample.thread("worker").state is ThreadState.RUNNABLE
        assert sample.thread("missing") is None

    def test_runnable_count(self):
        sample = gui_sample(
            10.0,
            state=ThreadState.BLOCKED,
            extra_threads=[
                ("w1", ThreadState.RUNNABLE),
                ("w2", ThreadState.WAITING),
                ("w3", ThreadState.RUNNABLE),
            ],
        )
        assert sample.runnable_count() == 2

    def test_states_by_thread(self):
        sample = gui_sample(5.0, extra_threads=[("w", ThreadState.SLEEPING)])
        states = sample.states_by_thread()
        assert states[GUI] is ThreadState.RUNNABLE
        assert states["w"] is ThreadState.SLEEPING


class TestSamplesInRange:
    def _samples(self):
        return [gui_sample(t) for t in (0.0, 10.0, 20.0, 30.0, 40.0)]

    def test_inclusive_start_exclusive_end(self):
        picked = samples_in_range(self._samples(), ms(10.0), ms(30.0))
        assert [s.timestamp_ns for s in picked] == [ms(10.0), ms(20.0)]

    def test_empty_range(self):
        assert samples_in_range(self._samples(), ms(11.0), ms(11.5)) == []

    def test_full_range(self):
        assert len(samples_in_range(self._samples(), 0, ms(41.0))) == 5

    def test_range_beyond_samples(self):
        assert samples_in_range(self._samples(), ms(100.0), ms(200.0)) == []

    def test_empty_input(self):
        assert samples_in_range([], 0, 100) == []
