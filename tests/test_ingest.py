"""The ingest service: protocol, daemon, client, incremental parity.

Covers the wire-level failure modes (truncated frames, bad version
bytes, oversized batches), the flow-control contract (backpressure
nacks, idempotent redelivery, zero loss through END), durability on
mid-stream disconnects, the chaos behaviour under ``ingest.*`` fault
sites, and the acceptance-critical property that incremental-mode
summaries are byte-identical to a one-shot analysis of the same
records.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import time

import pytest

from helpers import dispatch, gui_sample, listener_iv, make_trace
from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.store.facade import FacadeTrace
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults import runtime as faults_runtime
from repro.ingest import (
    IncrementalSessionAnalyzer,
    IngestServer,
    SessionSpool,
    TraceClient,
)
from repro.ingest import protocol
from repro.lila.source import build_store, open_source
from repro.lila.writer import trace_to_lines


def sample_lines(offset_ms: float = 0.0, session: str = "s0"):
    """A small, fully-featured trace as LiLa text lines."""
    roots = [
        dispatch(offset_ms + 0, offset_ms + 150,
                 [listener_iv("com.example.A.run", offset_ms + 0,
                              offset_ms + 140)]),
        dispatch(offset_ms + 200, offset_ms + 250,
                 [listener_iv("com.example.B.run", offset_ms + 200,
                              offset_ms + 240)]),
        dispatch(offset_ms + 300, offset_ms + 320),
    ]
    samples = [gui_sample(offset_ms + 50.0), gui_sample(offset_ms + 210.0)]
    trace = make_trace(roots, samples=samples)
    trace.metadata.session_id = session
    return trace_to_lines(trace)


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class RawConnection:
    """A hand-driven protocol connection for wire-level tests."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=5.0)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def hello(self, session="raw", application="RawApp"):
        protocol.write_frame(
            self.wfile, protocol.T_HELLO, 0,
            protocol.encode_hello(session, application),
        )
        return protocol.read_frame(self.rfile)

    def send(self, frame_type, seq, payload=b""):
        protocol.write_frame(self.wfile, frame_type, seq, payload)
        return protocol.read_frame(self.rfile)

    def close(self):
        for closer in (self.rfile, self.wfile, self.sock):
            try:
                closer.close()
            except OSError:
                pass


@pytest.fixture
def server(tmp_path):
    with IngestServer(spool_dir=tmp_path / "spools") as srv:
        yield srv


# ----------------------------------------------------------------------
# Protocol codecs
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        buffer = io.BytesIO()
        protocol.write_frame(buffer, protocol.T_BATCH, 7, b"payload")
        buffer.seek(0)
        frame = protocol.read_frame(buffer)
        assert (frame.type, frame.seq, frame.payload) == (
            protocol.T_BATCH, 7, b"payload",
        )
        assert protocol.read_frame(buffer) is None  # clean EOF

    def test_truncated_header_raises(self):
        buffer = io.BytesIO(b"\x01\x02")
        with pytest.raises(protocol.ProtocolError, match="truncated frame header"):
            protocol.read_frame(buffer)

    def test_truncated_payload_raises(self):
        buffer = io.BytesIO()
        protocol.write_frame(buffer, protocol.T_BATCH, 1, b"full payload")
        data = buffer.getvalue()[:-4]
        with pytest.raises(protocol.ProtocolError, match="truncated frame"):
            protocol.read_frame(io.BytesIO(data))

    def test_bad_version_byte_raises(self):
        header = struct.pack("!BBII", 99, protocol.T_BATCH, 1, 0)
        with pytest.raises(
            protocol.ProtocolError, match="unsupported protocol version 99"
        ):
            protocol.read_frame(io.BytesIO(header))

    def test_oversized_frame_drained_and_connection_usable(self):
        buffer = io.BytesIO()
        protocol.write_frame(buffer, protocol.T_BATCH, 3, b"x" * 2048)
        protocol.write_frame(buffer, protocol.T_END, 4)
        buffer.seek(0)
        with pytest.raises(protocol.FrameTooLarge) as excinfo:
            protocol.read_frame(buffer, max_payload=1024)
        assert excinfo.value.seq == 3
        follower = protocol.read_frame(buffer, max_payload=1024)
        assert (follower.type, follower.seq) == (protocol.T_END, 4)

    def test_batch_codec_round_trip(self):
        lines = ["#%lila", "M application App", "T AWT-EventQueue-0"]
        assert protocol.decode_batch(protocol.encode_batch(lines)) == lines
        assert protocol.decode_batch(protocol.encode_batch([])) == []

    def test_batch_codec_rejects_damage(self):
        payload = protocol.encode_batch(["a", "b"])
        with pytest.raises(protocol.ProtocolError, match="not valid gzip"):
            protocol.decode_batch(payload[:4] + b"garbage")
        wrong_count = struct.pack("!I", 9) + payload[4:]
        with pytest.raises(protocol.ProtocolError, match="declared 9"):
            protocol.decode_batch(wrong_count)

    def test_hello_and_nack_codecs(self):
        assert protocol.decode_hello(
            protocol.encode_hello("s-1", "App")
        ) == ("s-1", "App")
        with pytest.raises(protocol.ProtocolError, match="non-empty"):
            protocol.decode_hello(protocol.encode_hello(""))
        assert protocol.decode_nack(
            protocol.encode_nack(250, "backpressure: full")
        ) == (250, "backpressure: full")


# ----------------------------------------------------------------------
# Daemon wire behaviour
# ----------------------------------------------------------------------


class TestServerWire:
    def test_bad_version_byte_answered_with_error(self, server):
        conn = RawConnection(server.address)
        try:
            conn.wfile.write(struct.pack("!BBII", 9, protocol.T_HELLO, 0, 0))
            conn.wfile.flush()
            reply = protocol.read_frame(conn.rfile)
            assert reply is not None and reply.type == protocol.T_ERROR
            assert b"unsupported protocol version" in reply.payload
        finally:
            conn.close()

    def test_truncated_frame_answered_with_error(self, server):
        conn = RawConnection(server.address)
        try:
            assert conn.hello().type == protocol.T_ACK
            conn.wfile.write(b"\x01\x02\x03")  # half a header, then EOF
            conn.wfile.flush()
            conn.sock.shutdown(socket.SHUT_WR)
            reply = protocol.read_frame(conn.rfile)
            assert reply is not None and reply.type == protocol.T_ERROR
            assert b"truncated" in reply.payload
        finally:
            conn.close()

    def test_first_frame_must_be_hello(self, server):
        conn = RawConnection(server.address)
        try:
            reply = conn.send(protocol.T_BATCH, 1, protocol.encode_batch(["x"]))
            assert reply.type == protocol.T_ERROR
            assert b"HELLO" in reply.payload
        finally:
            conn.close()

    def test_oversized_batch_nacked_connection_survives(self, tmp_path):
        with IngestServer(
            spool_dir=tmp_path / "spools", max_payload=1024
        ) as srv:
            conn = RawConnection(srv.address)
            try:
                assert conn.hello(session="big").type == protocol.T_ACK
                reply = conn.send(protocol.T_BATCH, 1, b"z" * 4096)
                assert reply.type == protocol.T_NACK
                _, reason = protocol.decode_nack(reply.payload)
                assert reason.startswith("oversized")
                # The same connection still accepts a well-sized batch.
                lines = sample_lines(session="big")
                reply = conn.send(
                    protocol.T_BATCH, 2, protocol.encode_batch(lines)
                )
                assert reply.type == protocol.T_ACK
                assert conn.send(protocol.T_END, 3).type == protocol.T_ACK
                state = srv.sessions()[0]
                assert state.records_flushed == len(lines)
            finally:
                conn.close()

    def test_duplicate_seq_acked_but_spooled_once(self, server):
        lines = sample_lines(session="dup")
        conn = RawConnection(server.address)
        try:
            assert conn.hello(session="dup").type == protocol.T_ACK
            payload = protocol.encode_batch(lines)
            assert conn.send(protocol.T_BATCH, 1, payload).type == protocol.T_ACK
            # Redelivery of an accepted seq: acked again, not re-spooled.
            assert conn.send(protocol.T_BATCH, 1, payload).type == protocol.T_ACK
            assert conn.send(protocol.T_END, 2).type == protocol.T_ACK
        finally:
            conn.close()
        state = server.sessions()[0]
        assert state.records_flushed == len(lines)
        assert state.spool.path.read_text().splitlines() == lines

    def test_undecodable_batch_nacked_permanently(self, server):
        conn = RawConnection(server.address)
        try:
            assert conn.hello(session="bad").type == protocol.T_ACK
            reply = conn.send(protocol.T_BATCH, 1, b"\x00\x00\x00\x02junk")
            assert reply.type == protocol.T_NACK
            _, reason = protocol.decode_nack(reply.payload)
            assert reason.startswith("bad-batch")
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Durability and flow control
# ----------------------------------------------------------------------


class TestDurability:
    def test_mid_stream_disconnect_leaves_spool_readable(self, server):
        lines = sample_lines(session="gone")
        conn = RawConnection(server.address)
        assert conn.hello(session="gone", application="App").type == protocol.T_ACK
        reply = conn.send(
            protocol.T_BATCH, 1, protocol.encode_batch(lines)
        )
        assert reply.type == protocol.T_ACK
        conn.close()  # vanish without END
        state = server.sessions()[0]
        assert wait_until(lambda: state.records_flushed == len(lines))
        store = build_store(open_source(state.spool.path))
        assert store.metadata.session_id == "gone"
        assert state.spool.path.read_text().splitlines() == lines

    def test_client_round_trip_zero_loss(self, server):
        lines = sample_lines(session="c0")
        with TraceClient(
            server.address, session="c0", application="App", batch_records=5
        ) as client:
            client.extend(lines)
        assert client.records_sent == len(lines)
        assert client.dropped_records == 0
        state = server.sessions()[0]
        assert state.ended
        assert state.spool.path.read_text().splitlines() == lines

    def test_concurrent_sessions_zero_loss(self, tmp_path):
        import threading

        with IngestServer(
            spool_dir=tmp_path / "spools", queue_limit=2
        ) as srv:
            per_session = {}

            def ship(index: int) -> None:
                session = f"s{index}"
                lines = sample_lines(session=session)
                per_session[session] = lines
                with TraceClient(
                    srv.address, session=session, batch_records=3
                ) as client:
                    client.extend(lines)

            threads = [
                threading.Thread(target=ship, args=(i,)) for i in range(12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            states = {s.session: s for s in srv.sessions()}
            assert len(states) == 12
            for session, lines in per_session.items():
                assert states[session].ended
                spooled = states[session].spool.path.read_text().splitlines()
                assert spooled == lines

    def test_client_drop_mode_counts_overflow(self, tmp_path):
        # A plan that nacks every delivery of every frame: with
        # max_retries bounded and overflow="drop", the client sheds
        # load gracefully and counts every shed record.
        plan = FaultPlan(seed=3, rules=(
            FaultRule(kind="task_error", site="ingest.frame",
                      probability=1.0, times=None),
        ))
        lines = sample_lines(session="shed")
        with faults_runtime.installed(FaultInjector(plan)):
            with IngestServer(spool_dir=tmp_path / "spools") as srv:
                client = TraceClient(
                    srv.address, session="shed", batch_records=4,
                    max_pending_batches=2, overflow="drop", max_retries=2,
                )
                client.extend(lines)
                client.close()
        assert client.records_sent == 0
        assert client.dropped_records == len(lines)
        assert client.dropped_batches > 0
        assert client.nacks_received > 0


# ----------------------------------------------------------------------
# Chaos: the ingest.* fault sites
# ----------------------------------------------------------------------


class TestIngestChaos:
    def test_transient_frame_fault_recovers_on_redelivery(self, tmp_path):
        # times=1 (the transient default): the first delivery of seq 1
        # is nacked, the client's redelivery is accepted. Zero loss.
        plan = FaultPlan(seed=11, rules=(
            FaultRule(kind="task_error", site="ingest.frame",
                      at=("chaos/1", "chaos/3")),
        ))
        lines = sample_lines(session="chaos")
        with faults_runtime.installed(FaultInjector(plan)):
            with IngestServer(spool_dir=tmp_path / "spools") as srv:
                with TraceClient(
                    srv.address, session="chaos", batch_records=5
                ) as client:
                    client.extend(lines)
                state = srv.sessions()[0]
                assert state.ended
                spooled = state.spool.path.read_text().splitlines()
        assert spooled == lines
        assert client.nacks_received >= 2
        assert client.records_sent == len(lines)
        assert client.dropped_records == 0

    def test_transient_flush_fault_retried_next_cycle(self, tmp_path):
        plan = FaultPlan(seed=5, rules=(
            FaultRule(kind="task_error", site="ingest.flush",
                      probability=1.0),  # times=1: first flush fails
        ))
        lines = sample_lines(session="fl")
        with faults_runtime.installed(FaultInjector(plan)):
            with IngestServer(spool_dir=tmp_path / "spools") as srv:
                with TraceClient(
                    srv.address, session="fl", batch_records=50
                ) as client:
                    client.extend(lines)
                state = srv.sessions()[0]
                assert state.flush_attempts >= 1  # the injected failure
                assert state.ended                # ...and full recovery
                assert state.spool.path.read_text().splitlines() == lines
        assert client.dropped_records == 0


# ----------------------------------------------------------------------
# Incremental analysis parity
# ----------------------------------------------------------------------


class TestIncrementalParity:
    def test_rolling_summary_advances_per_episode(self):
        analyzer = IncrementalSessionAnalyzer(config=AnalysisConfig())
        lines = sample_lines(session="inc")
        seen = []
        for line in lines:
            for _episode in analyzer.push_line(line):
                seen.append(analyzer.rolling_summary()["episodes"])
        assert seen == [1, 2, 3]
        summary = analyzer.rolling_summary()
        assert summary["perceptible_episodes"] == 1
        assert summary["distinct_patterns"] == 2
        assert summary["covered_episodes"] == 2
        assert summary["unstructured_episodes"] == 1

    def test_summaries_byte_identical_to_one_shot(self, tmp_path):
        lines = sample_lines(session="parity")
        config = AnalysisConfig()

        analyzer = IncrementalSessionAnalyzer(config=config)
        analyzer.push_lines(lines)
        incremental = analyzer.summaries()

        path = tmp_path / "parity.lila"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        one_shot = LagAlyzer(
            [FacadeTrace(build_store(open_source(path)))], config=config
        ).summaries()

        assert pickle.dumps(incremental) == pickle.dumps(one_shot)

    def test_daemon_incremental_mode_matches_one_shot(self, tmp_path):
        lines = sample_lines(session="live")
        with IngestServer(
            spool_dir=tmp_path / "spools", incremental=True
        ) as srv:
            with TraceClient(
                srv.address, session="live", batch_records=4
            ) as client:
                client.extend(lines)
            state = srv.sessions()[0]
            rolling = srv.rolling_summaries()["live"]
            assert rolling["episodes"] == 3
            incremental = state.analyzer.summaries()
            spool_path = state.spool.path
        one_shot = LagAlyzer(
            [FacadeTrace(build_store(open_source(spool_path)))]
        ).summaries()
        assert pickle.dumps(incremental) == pickle.dumps(one_shot)

    def test_damaged_record_stops_analyzer_not_spool(self, tmp_path):
        lines = sample_lines(session="dmg")
        lines.insert(len(lines) - 1, "Z bogus record")
        with IngestServer(
            spool_dir=tmp_path / "spools", incremental=True
        ) as srv:
            with TraceClient(srv.address, session="dmg") as client:
                client.extend(lines)
            state = srv.sessions()[0]
            assert state.ended
            assert state.analyzer is None
            assert "unknown record type" in (state.analyzer_error or "") or (
                state.analyzer_error
            )
            # The spool still holds every acked record verbatim.
            assert state.spool.path.read_text().splitlines() == lines


# ----------------------------------------------------------------------
# Spool
# ----------------------------------------------------------------------


class TestSpool:
    def test_hostile_session_id_cannot_escape_directory(self, tmp_path):
        spool = SessionSpool(tmp_path, "../../etc/passwd", "Evil App")
        assert spool.path.parent == tmp_path
        assert spool.path.name == "Evil_App-etc_passwd.lila"
        assert "/" not in spool.path.name and ".." not in spool.path.name

    def test_append_is_durable_and_counted(self, tmp_path):
        spool = SessionSpool(tmp_path, "s1", "App")
        with spool:
            assert spool.append(["#%lila", "M application App"]) == 2
            assert spool.append([]) == 0
        assert spool.lines_written == 2
        assert spool.path.read_text() == "#%lila\nM application App\n"
