"""Tests for the streaming trace reader."""

import pytest

from repro.core.api import LagAlyzer
from repro.core.statistics import session_stats
from repro.lila.autodetect import detect_format, load_trace
from repro.lila.binary import write_trace_binary
from repro.lila.streaming import iter_episodes, stream_session_stats
from repro.lila.writer import write_trace

from helpers import dispatch, gc_iv, gui_sample, listener_iv, make_trace


@pytest.fixture()
def trace_file(tmp_path):
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)]),
        gc_iv(60.0, 80.0),  # GC between episodes: must be skipped
        dispatch(100.0, 280.0, [listener_iv("b.B.m", 100.0, 279.0)]),
        dispatch(400.0, 420.0),
    ]
    samples = [gui_sample(t) for t in (10.0, 40.0, 70.0, 150.0, 410.0)]
    trace = make_trace(roots, samples=samples, e2e_ms=1000.0, short_count=77)
    return write_trace(trace, tmp_path / "t.lila"), trace


class TestIterEpisodes:
    def test_yields_episodes_in_order(self, trace_file):
        path, original = trace_file
        streamed = list(iter_episodes(path))
        assert len(streamed) == len(original.episodes) == 3
        assert [ep.index for ep in streamed] == [0, 1, 2]
        assert [ep.duration_ns for ep in streamed] == [
            ep.duration_ns for ep in original.episodes
        ]

    def test_samples_attached_per_episode(self, trace_file):
        path, original = trace_file
        streamed = list(iter_episodes(path))
        for streamed_ep, in_memory_ep in zip(streamed, original.episodes):
            assert [s.timestamp_ns for s in streamed_ep.samples] == [
                s.timestamp_ns for s in in_memory_ep.samples
            ]

    def test_between_episode_samples_discarded(self, trace_file):
        path, _ = trace_file
        all_sample_times = [
            s.timestamp_ns
            for ep in iter_episodes(path)
            for s in ep.samples
        ]
        assert 70_000_000 not in all_sample_times  # the t=70ms tick

    def test_streaming_matches_in_memory_on_simulated(self, tmp_path):
        from repro.apps.sessions import simulate_session

        trace = simulate_session("CrosswordSage", scale=0.05)
        path = write_trace(trace, tmp_path / "s.lila")
        streamed = list(iter_episodes(path))
        assert len(streamed) == len(trace.episodes)
        for a, b in zip(streamed, trace.episodes):
            assert a.duration_ns == b.duration_ns
            assert len(a.samples) == len(b.samples)


class TestStreamSessionStats:
    def test_matches_in_memory_stats(self, tmp_path):
        from repro.apps.sessions import simulate_session

        trace = simulate_session("CrosswordSage", scale=0.05)
        path = write_trace(trace, tmp_path / "s.lila")
        streamed = stream_session_stats(path)
        in_memory = session_stats(trace)
        assert streamed.traced == in_memory.traced
        assert streamed.perceptible == in_memory.perceptible
        assert streamed.below_filter == in_memory.below_filter
        assert streamed.distinct_patterns == in_memory.distinct_patterns
        assert streamed.covered_episodes == in_memory.covered_episodes
        assert streamed.singleton_pct == pytest.approx(
            in_memory.singleton_pct
        )
        assert streamed.in_episode_pct == pytest.approx(
            in_memory.in_episode_pct
        )

    def test_basic_counts(self, trace_file):
        path, _ = trace_file
        stats = stream_session_stats(path)
        assert stats.traced == 3
        assert stats.perceptible == 1
        assert stats.below_filter == 77


class TestAutodetect:
    def test_detects_both_formats(self, trace_file, tmp_path):
        text_path, trace = trace_file
        binary_path = write_trace_binary(trace, tmp_path / "t.lilb")
        assert detect_format(text_path) == "text"
        assert detect_format(binary_path) == "binary"

    def test_load_either(self, trace_file, tmp_path):
        text_path, trace = trace_file
        binary_path = write_trace_binary(trace, tmp_path / "t.lilb")
        assert len(load_trace(text_path).episodes) == 3
        assert len(load_trace(binary_path).episodes) == 3

    def test_rejects_garbage(self, tmp_path):
        from repro.core.errors import TraceFormatError

        garbage = tmp_path / "x.bin"
        garbage.write_bytes(b"garbage here")
        with pytest.raises(TraceFormatError, match="any encoding"):
            detect_format(garbage)

    def test_analyzer_loads_mixed_formats(self, trace_file, tmp_path):
        text_path, trace = trace_file
        binary_path = write_trace_binary(trace, tmp_path / "t.lilb")
        analyzer = LagAlyzer.load([text_path, binary_path])
        assert len(analyzer.episodes) == 6
