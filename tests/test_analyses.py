"""Tests for the analysis registry, config validation, and loading."""

import pickle

import pytest

from repro.core import analyses as analyses_mod
from repro.core.analyses import (
    REGISTRY,
    Analysis,
    MapReduceAnalysis,
    get_analysis,
    register,
)
from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.errors import AnalysisError, TraceFormatError
from repro.lila.autodetect import expand_trace_paths
from repro.lila.writer import write_trace

from helpers import dispatch, listener_iv, make_trace

EXPECTED_NAMES = {
    "occurrence",
    "triggers",
    "location",
    "concurrency",
    "threadstates",
    "statistics",
    "patterns",
}


def _trace(application="App", lag_ms=120.0):
    return make_trace(
        [dispatch(0.0, lag_ms, [listener_iv("a.A.m", 0.0, lag_ms - 1.0)])],
        application=application,
    )


class TestRegistry:
    def test_builtin_analyses_registered(self):
        assert EXPECTED_NAMES <= set(REGISTRY)

    def test_every_entry_satisfies_protocol(self):
        for analysis in REGISTRY.values():
            assert isinstance(analysis, Analysis)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(AnalysisError) as excinfo:
            get_analysis("nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "occurrence" in message

    def test_duplicate_register_rejected(self):
        existing = get_analysis("triggers")
        with pytest.raises(AnalysisError):
            register(existing)

    def test_register_replace_and_custom_analysis(self):
        class EpisodeCount(MapReduceAnalysis):
            name = "episode-count"
            supports_perceptible_only = False

            def map_trace(self, trace, config):
                return len(analyses_mod.trace_episodes(trace, config))

            def reduce(self, partials, perceptible_only=False):
                self._check_flag(perceptible_only)
                return sum(partials)

        analysis = EpisodeCount()
        register(analysis)
        try:
            assert get_analysis("episode-count") is analysis
            register(analysis, replace=True)  # idempotent with replace
            analyzer = LagAlyzer([_trace()])
            assert analyzer.summary("episode-count") == 1
        finally:
            del REGISTRY["episode-count"]

    def test_perceptible_only_unsupported_raises(self):
        for name in ("occurrence", "statistics", "patterns"):
            analysis = get_analysis(name)
            assert not analysis.supports_perceptible_only
            with pytest.raises(AnalysisError):
                analysis.summarize(
                    [_trace()], AnalysisConfig(), perceptible_only=True
                )

    def test_summary_matches_named_wrappers(self):
        analyzer = LagAlyzer([_trace()])
        pairs = [
            ("occurrence", analyzer.occurrence_summary()),
            ("triggers", analyzer.trigger_summary()),
            ("location", analyzer.location_summary()),
            ("concurrency", analyzer.concurrency_summary()),
            ("threadstates", analyzer.threadstate_summary()),
        ]
        for name, wrapped in pairs:
            assert pickle.dumps(analyzer.summary(name)) == pickle.dumps(wrapped)


class TestConfigValidation:
    def test_negative_threshold_raises(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(perceptible_threshold_ms=-1.0)

    def test_nan_threshold_raises(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(perceptible_threshold_ms=float("nan"))

    def test_non_numeric_threshold_raises(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(perceptible_threshold_ms="fast")

    def test_zero_threshold_allowed(self):
        assert AnalysisConfig(perceptible_threshold_ms=0.0)

    def test_list_prefixes_coerced_to_tuple(self):
        config = AnalysisConfig(library_prefixes=["java.", "sun."])
        assert config.library_prefixes == ("java.", "sun.")
        assert isinstance(config.library_prefixes, tuple)

    def test_fingerprint_stable_and_distinct(self):
        assert AnalysisConfig().fingerprint() == AnalysisConfig().fingerprint()
        assert (
            AnalysisConfig().fingerprint()
            != AnalysisConfig(all_dispatch_threads=True).fingerprint()
        )


class TestLoading:
    def _write_traces(self, directory, count=3):
        paths = []
        for i in range(count):
            trace = _trace(application="App", lag_ms=100.0 + 10.0 * i)
            path = directory / f"session{i}.lila"
            write_trace(trace, path)
            paths.append(path)
        return paths

    def test_expand_single_file(self, tmp_path):
        (path,) = self._write_traces(tmp_path, count=1)
        assert expand_trace_paths(path) == [path]
        assert expand_trace_paths(str(path)) == [path]

    def test_expand_directory_sorted(self, tmp_path):
        paths = self._write_traces(tmp_path)
        (tmp_path / "notes.txt").write_text("not a trace")
        assert expand_trace_paths(tmp_path) == sorted(paths)

    def test_expand_glob(self, tmp_path):
        paths = self._write_traces(tmp_path)
        got = expand_trace_paths(str(tmp_path / "session*.lila"))
        assert got == sorted(paths)

    def test_expand_empty_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            expand_trace_paths(tmp_path)
        with pytest.raises(TraceFormatError):
            expand_trace_paths(str(tmp_path / "*.lila"))

    def test_load_directory_matches_explicit_files(self, tmp_path):
        paths = self._write_traces(tmp_path)
        from_dir = LagAlyzer.load(tmp_path)
        from_files = LagAlyzer.load(paths)
        assert len(from_dir.traces) == len(paths)
        assert pickle.dumps(from_dir.traces) == pickle.dumps(from_files.traces)

    def test_load_parallel_matches_serial(self, tmp_path):
        self._write_traces(tmp_path)
        serial = LagAlyzer.load(tmp_path, workers=1)
        parallel = LagAlyzer.load(tmp_path, workers=2)
        assert pickle.dumps(serial.traces) == pickle.dumps(parallel.traces)


class TestEpisodeCaching:
    def test_episodes_computed_once(self):
        analyzer = LagAlyzer([_trace()])
        first = analyzer.episodes
        assert analyzer.episodes is first

    def test_episode_cache_used_by_analyses(self):
        analyzer = LagAlyzer([_trace()])
        episodes = analyzer.episodes
        analyzer.trigger_summary()
        analyzer.pattern_table()
        assert analyzer.episodes is episodes
