"""The stable top-level API surface.

``repro.__all__`` is the compatibility contract introduced in PR 6:
every name must resolve (the heavy ones lazily), be documented in
``docs/api.md``, and the pre-existing deep-import paths must keep
working through deprecation shims.
"""

import pathlib
import pickle
import warnings

import pytest

import repro

DOCS_API = pathlib.Path(__file__).resolve().parent.parent / "docs" / "api.md"


class TestTopLevelSurface:
    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_every_name_resolves(self):
        for name in repro.__all__:
            value = getattr(repro, name)
            assert value is not None, name

    def test_lazy_names_cached_after_first_access(self):
        # First access resolves via module __getattr__; afterwards the
        # object lives in the module dict like any eager attribute.
        assert repro.TraceClient is repro.__dict__["TraceClient"]
        assert repro.run_study is repro.__dict__["run_study"]

    def test_api_version_is_int(self):
        assert isinstance(repro.API_VERSION, int)
        assert repro.API_VERSION == 1

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__

    def test_dir_includes_all(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name

    def test_facade_names_are_the_canonical_objects(self):
        from repro.core.analyzer import AnalysisConfig, LagAlyzer
        from repro.engine.engine import AnalysisEngine
        from repro.ingest.client import TraceClient
        from repro.ingest.server import IngestServer
        from repro.lila.source import build_store, open_source
        from repro.study.runner import StudyConfig, run_study

        assert repro.LagAlyzer is LagAlyzer
        assert repro.AnalysisConfig is AnalysisConfig
        assert repro.AnalysisEngine is AnalysisEngine
        assert repro.TraceClient is TraceClient
        assert repro.IngestServer is IngestServer
        assert repro.open_source is open_source
        assert repro.build_store is build_store
        assert repro.run_study is run_study
        assert repro.StudyConfig is StudyConfig


class TestDocsStayInSync:
    def test_every_public_name_is_documented(self):
        text = DOCS_API.read_text(encoding="utf-8")
        missing = [name for name in repro.__all__ if name not in text]
        assert not missing, f"docs/api.md does not mention: {missing}"

    def test_docs_state_current_api_version(self):
        text = DOCS_API.read_text(encoding="utf-8")
        assert f"`{repro.API_VERSION}`" in text


class TestDeprecatedPaths:
    def test_core_api_names_resolve_with_warning(self):
        import repro.core.api as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            lagalyzer = legacy.LagAlyzer
            config_cls = legacy.AnalysisConfig
        assert lagalyzer is repro.LagAlyzer
        assert config_cls is repro.AnalysisConfig
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("repro.core.api.LagAlyzer is deprecated" in m
                   for m in messages), messages

    def test_from_import_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core.api import AnalysisConfig
        assert AnalysisConfig is repro.AnalysisConfig

    def test_dunder_access_does_not_warn(self):
        import repro.core.api as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError):
                legacy.__not_a_real_dunder__
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_legacy_objects_pickle_identically(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core.api import AnalysisConfig as LegacyConfig
        new = repro.AnalysisConfig(perceptible_threshold_ms=120.0)
        old = LegacyConfig(perceptible_threshold_ms=120.0)
        assert pickle.dumps(new) == pickle.dumps(old)
