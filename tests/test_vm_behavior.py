"""Unit tests for behaviour steps and the execution context."""

import pytest

from repro.core.intervals import IntervalKind, NS_PER_MS
from repro.core.samples import ThreadState
from repro.vm.behavior import (
    Behavior,
    Block,
    Compute,
    ExecutionContext,
    ExplicitGc,
    NativeCall,
    Paint,
    Sleep,
    Wait,
    async_dispatch,
    java_stack,
    listener,
    native_stack,
)
from repro.vm.clock import VirtualClock
from repro.vm.components import Component
from repro.vm.heap import Heap, HeapConfig
from repro.vm.rng import RngStream
from repro.vm.threads import ThreadTimeline
from repro.vm.tracer import TraceCollector

GUI = "AWT-EventQueue-0"


def make_ctx(young_mb=1024, filter_ms=3.0):
    clock = VirtualClock()
    rng = RngStream(5)
    heap = Heap(
        HeapConfig(
            young_capacity_bytes=young_mb * 1024 * 1024, pause_jitter=0.0
        ),
        rng.fork("heap"),
    )
    tracer = TraceCollector(GUI, filter_ms=filter_ms, rng=rng.fork("tracer"))
    timeline = ThreadTimeline(GUI)
    return ExecutionContext(clock, rng.fork("exec"), heap, tracer, timeline)


def run_episode(ctx, behavior):
    ctx.tracer.begin_episode(ctx.clock.now_ns)
    behavior.execute(ctx)
    return ctx.tracer.end_episode(ctx.clock.now_ns)


class TestStacks:
    def test_edt_stack_has_plumbing(self):
        stack = java_stack("org.app.Model", "update")
        assert stack.leaf.class_name == "org.app.Model"
        assert stack.frames[-1].class_name == "java.awt.EventDispatchThread"

    def test_native_stack_leaf_is_native(self):
        assert native_stack("sun.x.Y", "n").in_native()


class TestComputeAndStates:
    def test_compute_advances_clock_and_records_runnable(self):
        ctx = make_ctx()
        stack = java_stack("org.app.A", "m")
        root = run_episode(
            ctx, Behavior([Compute(20.0, stack, sigma=0.0)])
        )
        assert root.duration_ms == pytest.approx(20.0)
        state, seen = ctx.edt_timeline.at(10 * NS_PER_MS)
        assert state is ThreadState.RUNNABLE
        assert seen is stack

    def test_sleep_wait_block_states(self):
        for step_cls, expected in (
            (Sleep, ThreadState.SLEEPING),
            (Wait, ThreadState.WAITING),
            (Block, ThreadState.BLOCKED),
        ):
            ctx = make_ctx()
            stack = java_stack("org.app.A", "m")
            run_episode(ctx, Behavior([step_cls(10.0, stack, sigma=0.0)]))
            assert ctx.edt_timeline.at(5 * NS_PER_MS)[0] is expected

    def test_zero_duration_compute(self):
        # A zero-length episode is filtered by the tracer, so use a
        # zero filter to observe it.
        ctx = make_ctx(filter_ms=0.0)
        root = run_episode(
            ctx, Behavior([Compute(0.0, java_stack("a.B", "m"), sigma=0.0)])
        )
        assert root.duration_ns == 0


class TestIntervalSteps:
    def test_enclose_produces_listener_interval(self):
        ctx = make_ctx()
        body = [Compute(10.0, java_stack("a.B", "m"), sigma=0.0)]
        root = run_episode(ctx, Behavior([listener("a.Click.run", body)]))
        child = root.children[0]
        assert child.kind is IntervalKind.LISTENER
        assert child.symbol == "a.Click.run"
        assert child.duration_ms == pytest.approx(10.0)

    def test_async_dispatch_interval(self):
        ctx = make_ctx(filter_ms=0.0)
        root = run_episode(
            ctx, Behavior([async_dispatch("a.Update.run", [])])
        )
        assert root.children[0].kind is IntervalKind.ASYNC

    def test_native_call_interval_and_body(self):
        ctx = make_ctx()
        step = NativeCall(
            "sun.x.Y.n", 5.0, native_stack("sun.x.Y", "n"), sigma=0.0,
            body=[Compute(3.0, java_stack("a.B", "m"), sigma=0.0)],
        )
        root = run_episode(ctx, Behavior([step]))
        native = root.children[0]
        assert native.kind is IntervalKind.NATIVE
        assert native.duration_ms == pytest.approx(8.0)

    def test_paint_cascade_structure(self):
        leaf = Component("org.app.Leaf", self_paint_ms=2.0)
        window = Component("javax.swing.JFrame", [leaf], self_paint_ms=1.0)
        ctx = make_ctx()
        root = run_episode(ctx, Behavior([Paint(window, sigma=0.0)]))
        frame_iv = root.children[0]
        assert frame_iv.kind is IntervalKind.PAINT
        assert frame_iv.symbol == "javax.swing.JFrame.paint"
        assert frame_iv.children[0].symbol == "org.app.Leaf.paint"
        root.validate()

    def test_paint_max_depth_prunes(self):
        leaf = Component("org.app.Leaf")
        mid = Component("org.app.Mid", [leaf])
        window = Component("javax.swing.JFrame", [mid])
        ctx = make_ctx(filter_ms=0.0)
        root = run_episode(
            ctx, Behavior([Paint(window, sigma=0.0, max_depth=2)])
        )
        assert root.descendant_count() == 2  # frame + mid, leaf pruned

    def test_paint_scale_multiplies_cost(self):
        window = Component("javax.swing.JFrame", self_paint_ms=10.0)
        ctx = make_ctx()
        root = run_episode(ctx, Behavior([Paint(window, scale=3.0, sigma=0.0)]))
        assert root.duration_ms == pytest.approx(30.0)

    def test_paint_library_split_changes_sampled_stacks(self):
        window = Component("org.app.Canvas", self_paint_ms=10.0)
        ctx = make_ctx()
        run_episode(ctx, Behavior([Paint(window, sigma=0.0, library_split=0.5)]))
        own_stack = ctx.edt_timeline.at(2 * NS_PER_MS)[1]
        toolkit_stack = ctx.edt_timeline.at(8 * NS_PER_MS)[1]
        assert own_stack.leaf.class_name == "org.app.Canvas"
        assert toolkit_stack.leaf.class_name == "sun.java2d.SunGraphics2D"


class TestGcMechanics:
    def test_allocation_triggers_gc_inside_open_interval(self):
        # Young gen of 1 MB, allocating 100 KB/ms for 20 ms -> the GC
        # must land inside the native interval that was open.
        ctx = make_ctx(young_mb=1)
        step = NativeCall(
            "sun.x.Y.n", 20.0, native_stack("sun.x.Y", "n"), sigma=0.0,
            alloc_bytes_per_ms=100 * 1024,
        )
        root = run_episode(ctx, Behavior([step]))
        native = root.children[0]
        gcs = [c for c in native.children if c.kind is IntervalKind.GC]
        assert gcs, "expected a GC nested in the native call"
        assert root.duration_ms > 20.0  # the pause extended the episode
        root.validate()

    def test_gc_creates_blackout(self):
        ctx = make_ctx(young_mb=1)
        run_episode(
            ctx,
            Behavior([
                Compute(
                    20.0, java_stack("a.B", "m"), sigma=0.0,
                    alloc_bytes_per_ms=100 * 1024,
                )
            ]),
        )
        assert ctx.tracer.merged_blackouts()

    def test_explicit_gc_step(self):
        ctx = make_ctx()
        root = run_episode(ctx, Behavior([ExplicitGc()]))
        gcs = [c for c in root.children if c.kind is IntervalKind.GC]
        assert len(gcs) == 1
        assert gcs[0].symbol == "GC.major"
        assert ctx.heap.major_count == 1

    def test_no_allocation_no_gc(self):
        ctx = make_ctx(young_mb=1)
        run_episode(
            ctx,
            Behavior([Compute(50.0, java_stack("a.B", "m"), sigma=0.0,
                              alloc_bytes_per_ms=0)]),
        )
        assert ctx.heap.minor_count == 0


class TestDrawMs:
    def test_sigma_zero_is_deterministic(self):
        ctx = make_ctx()
        assert ctx.draw_ms(25.0, 0.0) == 25.0

    def test_nonpositive_median_is_zero(self):
        ctx = make_ctx()
        assert ctx.draw_ms(0.0, 0.5) == 0.0

    def test_lognormal_positive(self):
        ctx = make_ctx()
        assert all(ctx.draw_ms(10.0, 0.6) > 0 for _ in range(100))
