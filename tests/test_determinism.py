"""Determinism and stability guarantees.

A session is a pure function of (application, session index, seed); the
LiLa serialization of a trace is byte-stable; and pattern keys are
stable strings — properties golden-tested here so accidental
nondeterminism (dict ordering, wall-clock leakage, unseeded RNG) is
caught immediately.
"""

import hashlib


from repro import LagAlyzer, simulate_session
from repro.core.patterns import pattern_key
from repro.lila.writer import trace_to_lines

from helpers import dispatch, episode, gc_iv, listener_iv, paint_iv

SCALE = 0.1
SEED = 777


def _trace_digest(trace):
    payload = "\n".join(trace_to_lines(trace)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class TestSimulationDeterminism:
    def test_same_inputs_same_trace_bytes(self):
        a = simulate_session("JEdit", seed=SEED, scale=SCALE)
        b = simulate_session("JEdit", seed=SEED, scale=SCALE)
        assert _trace_digest(a) == _trace_digest(b)

    def test_session_index_changes_trace(self):
        a = simulate_session("JEdit", session_index=0, seed=SEED, scale=SCALE)
        b = simulate_session("JEdit", session_index=1, seed=SEED, scale=SCALE)
        assert _trace_digest(a) != _trace_digest(b)

    def test_apps_do_not_interfere(self):
        # Simulating another app in between must not perturb the stream.
        first = _trace_digest(
            simulate_session("JEdit", seed=SEED, scale=SCALE)
        )
        simulate_session("JMol", seed=SEED, scale=SCALE)
        second = _trace_digest(
            simulate_session("JEdit", seed=SEED, scale=SCALE)
        )
        assert first == second

    def test_analysis_results_stable(self):
        def run():
            analyzer = LagAlyzer.from_traces(
                [simulate_session("FreeMind", seed=SEED, scale=SCALE)]
            )
            stats = analyzer.mean_session_stats()
            return (
                stats.traced,
                stats.perceptible,
                analyzer.pattern_table().distinct_count,
                analyzer.concurrency_summary().runnable_total,
            )

        assert run() == run()


class TestPatternKeyStability:
    def test_golden_key_encoding(self):
        # The canonical encoding is part of the stable API surface
        # (keys are used as cross-run join keys); changing it silently
        # would break every stored comparison baseline.
        ep = episode(
            dispatch(0.0, 100.0, [
                listener_iv("a.Click.run", 0.0, 90.0, [
                    paint_iv("b.View.paint", 10.0, 50.0),
                    gc_iv(60.0, 70.0),
                ]),
            ])
        )
        assert pattern_key(ep) == "(listener|a.Click.run(paint|b.View.paint))"

    def test_golden_key_with_gc(self):
        ep = episode(
            dispatch(0.0, 100.0, [gc_iv(10.0, 60.0, symbol="GC.major")])
        )
        assert pattern_key(ep) == ""
        assert pattern_key(ep, include_gc=True) == "(gc|GC.major)"


class TestSerializationStability:
    def test_lines_do_not_depend_on_dict_order(self):
        trace = simulate_session("CrosswordSage", seed=SEED, scale=SCALE)
        lines_a = trace_to_lines(trace)
        lines_b = trace_to_lines(trace)
        assert lines_a == lines_b
        assert lines_a[0] == "#%lila 1"


class TestCrossProcessDeterminism:
    def test_trace_bytes_stable_across_hash_seeds(self, tmp_path):
        """Hash randomization must not leak into traces.

        Set-iteration or hash-order dependence anywhere in the simulator
        or serializer would make traces differ between interpreter
        runs; generating the same session under two different
        PYTHONHASHSEED values catches that class of bug.
        """
        import os
        import subprocess
        import sys

        script = (
            "import hashlib\n"
            "from repro.apps.sessions import simulate_session\n"
            "from repro.lila.writer import trace_to_lines\n"
            "trace = simulate_session('JEdit', seed=777, scale=0.05)\n"
            "payload = '\\n'.join(trace_to_lines(trace)).encode()\n"
            "print(hashlib.sha256(payload).hexdigest())\n"
        )
        digests = []
        for hash_seed in ("1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(result.stdout.strip())
        assert digests[0] == digests[1]
