"""Tests for the 14-application registry (Table II)."""

import pytest

from repro.apps.catalog import (
    APPLICATION_NAMES,
    all_specs,
    get_spec,
    table2_rows,
)

#: The paper's Table II, transcribed.
TABLE2 = {
    "Arabeske": ("2.0.1", 222),
    "ArgoUML": ("0.28", 5349),
    "CrosswordSage": ("0.3.5", 34),
    "Euclide": ("0.5.2", 398),
    "FindBugs": ("1.3.8", 3698),
    "FreeMind": ("0.8.1", 1909),
    "GanttProject": ("2.0.9", 5288),
    "JEdit": ("4.3pre16", 1150),
    "JFreeChart": ("1.0.13", 1667),
    "JHotDraw": ("7.1", 1146),
    "JMol": ("11.6.21", 1422),
    "Laoe": ("0.6.03", 688),
    "NetBeans": ("6.7", 45367),
    "SwingSet": ("2", 131),
}


class TestCatalog:
    def test_fourteen_applications(self):
        assert len(APPLICATION_NAMES) == 14
        assert len(all_specs()) == 14

    def test_names_match_paper(self):
        assert set(APPLICATION_NAMES) == set(TABLE2)

    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_table2_identity(self, name):
        spec = get_spec(name)
        version, classes = TABLE2[name]
        assert spec.version == version
        assert spec.classes == classes

    def test_lookup_case_insensitive(self):
        assert get_spec("jmol").name == "JMol"
        assert get_spec("NETBEANS").name == "NetBeans"

    def test_unknown_application(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_spec("Word")

    def test_table2_rows_order(self):
        rows = table2_rows()
        assert [row[0] for row in rows] == list(APPLICATION_NAMES)
        assert rows[-1] == ("SwingSet", "2", 131, "Swing component demo")

    def test_all_specs_validate(self):
        for spec in all_specs():
            spec.validate()

    def test_netbeans_is_largest(self):
        largest = max(all_specs(), key=lambda spec: spec.classes)
        assert largest.name == "NetBeans"

    def test_paper_mechanisms_present(self):
        # The per-app pathologies the paper diagnoses must be modeled.
        assert get_spec("Arabeske").explicit_gc_per_min > 0
        assert get_spec("JMol").animations
        assert get_spec("JMol").animations[0].period_ms == pytest.approx(40.0)
        assert get_spec("FindBugs").background_threads
        assert get_spec("FindBugs").background_threads[0].post_period_ms
        assert get_spec("Euclide").sleep_fraction > 0.5
        assert get_spec("JEdit").wait_fraction > 0.5
        assert get_spec("FreeMind").block_fraction > 0.3
        assert get_spec("JHotDraw").app_code_fraction > 0.9
        assert get_spec("GanttProject").paint_depth >= 6
        assert get_spec("NetBeans").background_threads
