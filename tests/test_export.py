"""Tests for JSON/CSV export."""

import csv
import io
import json

import pytest

from repro.core.api import LagAlyzer
from repro.core.export import (
    PATTERN_CSV_COLUMNS,
    analysis_to_dict,
    patterns_to_csv,
    write_analysis_json,
    write_patterns_csv,
)

from helpers import dispatch, listener_iv, make_trace


@pytest.fixture()
def analyzer():
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)]),
        dispatch(100.0, 280.0, [listener_iv("b.B.m", 100.0, 279.0)]),
        dispatch(400.0, 420.0, [listener_iv("a.A.m", 400.0, 419.0)]),
    ]
    return LagAlyzer.from_traces([make_trace(roots, e2e_ms=10_000.0)])


class TestJsonExport:
    def test_dict_is_json_serializable(self, analyzer):
        data = analysis_to_dict(analyzer)
        text = json.dumps(data)
        assert "TestApp" in text

    def test_dict_contents(self, analyzer):
        data = analysis_to_dict(analyzer)
        assert data["application"] == "TestApp"
        assert data["sessions"] == 1
        assert data["patterns"]["distinct"] == 2
        assert data["triggers"]["all"]["input"] == 3
        assert data["triggers"]["perceptible"]["input"] == 1
        assert set(data["location"]) == {"all", "perceptible"}
        assert data["session_stats"][0]["traced"] == 3

    def test_write_json(self, analyzer, tmp_path):
        path = write_analysis_json(analyzer, tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded["application"] == "TestApp"


class TestCsvExport:
    def test_header_and_rows(self, analyzer):
        text = patterns_to_csv(analyzer)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == PATTERN_CSV_COLUMNS
        assert len(rows) == 1 + 2  # header + 2 patterns

    def test_worst_total_lag_first(self, analyzer):
        rows = list(csv.DictReader(io.StringIO(patterns_to_csv(analyzer))))
        totals = [float(row["total_lag_ms"]) for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_occurrence_column(self, analyzer):
        rows = list(csv.DictReader(io.StringIO(patterns_to_csv(analyzer))))
        occurrences = {row["occurrence"] for row in rows}
        assert occurrences <= {"always", "sometimes", "once", "never"}

    def test_write_csv(self, analyzer, tmp_path):
        path = write_patterns_csv(analyzer, tmp_path / "patterns.csv")
        assert path.read_text().startswith("rank,")
