"""Tests for the session-timeline renderer."""


from repro.viz.timeline import render_session_timeline

from helpers import dispatch, gc_iv, listener_iv, make_trace


def _trace():
    roots = [
        dispatch(100.0, 150.0, [listener_iv("a.A.m", 100.0, 149.0)]),
        dispatch(2000.0, 2400.0, [listener_iv("b.B.m", 2000.0, 2399.0)]),
        gc_iv(5000.0, 5300.0, symbol="GC.major"),
        dispatch(8000.0, 8010.0, [listener_iv("a.A.m", 8000.0, 8009.0)]),
    ]
    return make_trace(roots, e2e_ms=10_000.0)


class TestSessionTimeline:
    def test_header_counts(self):
        text = render_session_timeline(_trace()).to_string()
        assert "3 episodes" in text
        assert "1 perceptible" in text

    def test_episode_tooltips(self):
        text = render_session_timeline(_trace()).to_string()
        assert "episode #1: 400.0 ms" in text

    def test_perceptible_colored_differently(self):
        text = render_session_timeline(_trace()).to_string()
        assert "#c62828" in text  # perceptible
        assert "#7f9fc4" in text  # fast

    def test_threshold_guide(self):
        text = render_session_timeline(_trace()).to_string()
        assert "100 ms" in text
        assert "stroke-dasharray" in text

    def test_gc_marks(self):
        text = render_session_timeline(_trace()).to_string()
        assert "GC.major: 300 ms" in text

    def test_custom_threshold_changes_counts(self):
        text = render_session_timeline(
            _trace(), threshold_ms=20.0
        ).to_string()
        assert "2 perceptible" in text

    def test_empty_session(self):
        trace = make_trace([], e2e_ms=1000.0)
        text = render_session_timeline(trace).to_string()
        assert "0 episodes" in text

    def test_save(self, tmp_path):
        path = render_session_timeline(_trace()).save(tmp_path / "t.svg")
        assert path.exists()
