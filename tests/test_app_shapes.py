"""Per-application shape tests.

For every Table II application, the simulated sessions must land in the
broad bands the paper reports — not exact values (the substrate is a
simulator), but the properties a reader of the paper would check first.
One moderate-scale session per app keeps this suite fast while still
exercising the full per-app mechanism set.
"""

import pytest

from repro import LagAlyzer, simulate_session
from repro.apps.catalog import APPLICATION_NAMES
from repro.study.paper_data import TABLE3

SCALE = 0.25
SEED = 20100401

_analyzers = {}


def analyzer_for(app):
    if app not in _analyzers:
        _analyzers[app] = LagAlyzer.from_traces(
            [simulate_session(app, seed=SEED, scale=SCALE)]
        )
    return _analyzers[app]


@pytest.mark.parametrize("app", APPLICATION_NAMES)
class TestPerAppShape:
    def test_session_duration(self, app):
        stats = analyzer_for(app).mean_session_stats()
        paper_e2e = TABLE3[app][0]
        assert stats.e2e_s == pytest.approx(paper_e2e * SCALE, rel=0.15)

    def test_in_episode_band(self, app):
        stats = analyzer_for(app).mean_session_stats()
        paper_pct = TABLE3[app][1]
        # Within a factor of ~1.7 of the paper's value, and inside the
        # study's global 5-60% envelope.
        assert paper_pct / 1.8 <= stats.in_episode_pct <= paper_pct * 1.8
        assert 3.0 <= stats.in_episode_pct <= 60.0

    def test_traced_episode_rate(self, app):
        stats = analyzer_for(app).mean_session_stats()
        paper_traced = TABLE3[app][3] * SCALE
        assert stats.traced == pytest.approx(paper_traced, rel=0.3)

    def test_filtered_episode_rate(self, app):
        stats = analyzer_for(app).mean_session_stats()
        paper_filtered = TABLE3[app][2] * SCALE
        assert stats.below_filter == pytest.approx(paper_filtered, rel=0.3)

    def test_some_perceptible_lag_exists(self, app):
        assert analyzer_for(app).perceptible_episodes()

    def test_patterns_mined(self, app):
        table = analyzer_for(app).pattern_table()
        assert table.distinct_count >= 10
        assert table.covered_episodes > table.distinct_count

    def test_every_trace_validates(self, app):
        for trace in analyzer_for(app).traces:
            trace.validate()

    def test_samples_present_in_long_episodes(self, app):
        episodes = analyzer_for(app).perceptible_episodes()
        sampled = sum(1 for ep in episodes if ep.samples)
        # GC-only episodes can be blacked out entirely; the rest must
        # carry samples.
        assert sampled >= len(episodes) * 0.4
