"""Tests for the text pattern browser."""


from repro.core.patterns import PatternTable
from repro.viz.browser import render_episode_list, render_pattern_browser

from helpers import dispatch, episode, gc_iv, simple_episode


def _table():
    episodes = []
    for i in range(5):
        episodes.append(simple_episode(lag_ms=150.0, symbol="a.Slow.m", index=i))
    for i in range(3):
        episodes.append(
            simple_episode(lag_ms=10.0, symbol="b.Fast.m", index=5 + i)
        )
    episodes.append(
        episode(dispatch(0.0, 400.0, [gc_iv(10.0, 380.0)]), index=8)
    )
    return PatternTable.from_episodes(episodes)


class TestPatternBrowser:
    def test_shows_lag_columns(self):
        text = render_pattern_browser(_table())
        assert "Min[ms]" in text
        assert "Total[ms]" in text
        assert "Slow.m" in text

    def test_worst_pattern_first(self):
        lines = render_pattern_browser(_table()).splitlines()
        first_row = lines[2]
        assert "Slow" in first_row

    def test_perceptible_only_filter(self):
        text = render_pattern_browser(_table(), perceptible_only=True)
        assert "Fast" not in text
        assert "Slow" in text

    def test_limit_with_footer(self):
        text = render_pattern_browser(_table(), limit=1)
        assert "more patterns" in text

    def test_gc_only_pattern_labeled(self):
        text = render_pattern_browser(_table())
        assert "gc:" in text or "(gc only)" in text

    def test_occurrence_column(self):
        text = render_pattern_browser(_table())
        assert "always" in text
        assert "never" in text


class TestEpisodeList:
    def test_lists_lags(self):
        pattern = _table().rows()[0]
        text = render_episode_list(pattern)
        assert "150.0" in text
        assert "yes" in text

    def test_limit_footer(self):
        pattern = _table().rows()[0]
        text = render_episode_list(pattern, limit=2)
        assert "more episodes" in text
