"""Tests for multi-dispatch-thread support (paper Section V).

The paper's study uses a single GUI thread, but "LagAlyzer already
supports traces based on multiple concurrent event dispatch threads":
an episode is the interval from the point where *a given thread* starts
handling a GUI event until that thread finishes handling it.
"""


from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.trace import Trace, TraceMetadata
from repro.lila.reader import read_trace_lines
from repro.lila.writer import trace_to_lines

from helpers import GUI, dispatch, listener_iv, ms

SECOND_EDT = "SWT-EventQueue-1"


def _two_edt_trace():
    metadata = TraceMetadata(
        application="DualToolkit",
        session_id="s0",
        start_ns=0,
        end_ns=ms(10_000.0),
        gui_thread=GUI,
    )
    primary_roots = [
        dispatch(0.0, 150.0, [listener_iv("a.A.m", 0.0, 149.0)]),
        dispatch(300.0, 330.0, [listener_iv("a.A.m", 300.0, 329.0)]),
    ]
    # Overlapping in wall-clock time with the primary thread's episodes:
    # concurrent dispatch threads do that.
    secondary_roots = [
        dispatch(100.0, 350.0, [listener_iv("b.B.m", 100.0, 349.0)]),
    ]
    return Trace(
        metadata,
        {GUI: primary_roots, SECOND_EDT: secondary_roots},
    )


class TestTraceMultiEdt:
    def test_dispatch_threads_detected(self):
        trace = _two_edt_trace()
        assert trace.dispatch_threads == [GUI, SECOND_EDT]

    def test_primary_episodes_unchanged(self):
        trace = _two_edt_trace()
        assert len(trace.episodes) == 2
        assert all(ep.gui_thread == GUI for ep in trace.episodes)

    def test_episodes_of_secondary(self):
        trace = _two_edt_trace()
        secondary = trace.episodes_of(SECOND_EDT)
        assert len(secondary) == 1
        assert secondary[0].gui_thread == SECOND_EDT

    def test_episodes_of_unknown_thread(self):
        assert _two_edt_trace().episodes_of("nope") == []

    def test_all_episodes_merged_in_time_order(self):
        trace = _two_edt_trace()
        merged = trace.all_episodes()
        assert len(merged) == 3
        starts = [ep.start_ns for ep in merged]
        assert starts == sorted(starts)

    def test_validate_accepts_concurrent_dispatches(self):
        # Episodes of *different* threads may overlap in time.
        _two_edt_trace().validate()

    def test_survives_format_roundtrip(self):
        trace = read_trace_lines(trace_to_lines(_two_edt_trace()))
        assert trace.dispatch_threads == [GUI, SECOND_EDT]
        assert len(trace.all_episodes()) == 3


class TestAnalyzerMultiEdt:
    def test_default_analyzes_primary_only(self):
        analyzer = LagAlyzer.from_traces([_two_edt_trace()])
        assert len(analyzer.episodes) == 2

    def test_all_dispatch_threads_config(self):
        analyzer = LagAlyzer.from_traces(
            [_two_edt_trace()],
            config=AnalysisConfig(all_dispatch_threads=True),
        )
        assert len(analyzer.episodes) == 3
        # The secondary thread's perceptible episode is now visible.
        assert len(analyzer.perceptible_episodes()) == 2

    def test_patterns_span_threads(self):
        analyzer = LagAlyzer.from_traces(
            [_two_edt_trace()],
            config=AnalysisConfig(all_dispatch_threads=True),
        )
        assert analyzer.pattern_table().distinct_count == 2

    def test_gui_samples_use_owning_thread(self):
        # Episode sample attribution follows the episode's own thread.
        trace = _two_edt_trace()
        secondary = trace.episodes_of(SECOND_EDT)[0]
        assert secondary.gui_thread == SECOND_EDT
