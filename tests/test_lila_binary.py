"""Tests for the binary trace format."""

import pytest

from repro.core.errors import TraceFormatError
from repro.core.samples import ThreadState
from repro.lila.binary import (
    MAGIC,
    read_trace_binary,
    write_trace_binary,
)
from repro.lila.writer import write_trace

from helpers import (
    dispatch,
    gc_iv,
    gui_sample,
    listener_iv,
    make_trace,
    paint_iv,
)


def _rich_trace():
    roots = [
        dispatch(0.0, 50.0, [
            listener_iv("a.Click.actionPerformed", 1.0, 49.0, [
                paint_iv("javax.swing.JFrame.paint", 10.0, 40.0,
                         [gc_iv(20.0, 30.0)]),
            ]),
        ]),
        dispatch(100.0, 130.0),
    ]
    samples = [
        gui_sample(5.0),
        gui_sample(15.0, state=ThreadState.BLOCKED,
                   extra_threads=[("worker", ThreadState.RUNNABLE)]),
    ]
    return make_trace(
        roots, samples=samples, e2e_ms=200.0, short_count=42,
        extra_threads={"worker": [gc_iv(20.0, 30.0)]},
    )


def _assert_same_tree(a, b):
    assert (a.kind, a.symbol, a.start_ns, a.end_ns) == (
        b.kind, b.symbol, b.start_ns, b.end_ns,
    )
    assert len(a.children) == len(b.children)
    for child_a, child_b in zip(a.children, b.children):
        _assert_same_tree(child_a, child_b)


class TestBinaryRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        original = _rich_trace()
        path = write_trace_binary(original, tmp_path / "t.lilb")
        loaded = read_trace_binary(path)

        meta_a, meta_b = original.metadata, loaded.metadata
        assert meta_a.application == meta_b.application
        assert meta_a.session_id == meta_b.session_id
        assert meta_a.end_ns == meta_b.end_ns
        assert meta_a.filter_ms == meta_b.filter_ms
        assert loaded.short_episode_count == 42

        assert set(loaded.thread_roots) == set(original.thread_roots)
        for thread in original.thread_roots:
            for a, b in zip(
                original.thread_roots[thread], loaded.thread_roots[thread]
            ):
                _assert_same_tree(a, b)

        assert len(loaded.samples) == len(original.samples)
        for a, b in zip(original.samples, loaded.samples):
            assert a.timestamp_ns == b.timestamp_ns
            for entry_a, entry_b in zip(a.threads, b.threads):
                assert entry_a.thread_name == entry_b.thread_name
                assert entry_a.state == entry_b.state
                assert entry_a.stack == entry_b.stack

    def test_simulated_trace_roundtrip(self, tmp_path):
        from repro.apps.sessions import simulate_session

        original = simulate_session("CrosswordSage", scale=0.05)
        path = write_trace_binary(original, tmp_path / "s.lilb")
        loaded = read_trace_binary(path)
        assert len(loaded.episodes) == len(original.episodes)
        assert loaded.short_episode_count == original.short_episode_count
        assert [e.duration_ns for e in loaded.episodes] == [
            e.duration_ns for e in original.episodes
        ]

    def test_binary_smaller_than_text(self, tmp_path):
        from repro.apps.sessions import simulate_session

        trace = simulate_session("CrosswordSage", scale=0.1)
        text_path = write_trace(trace, tmp_path / "t.lila")
        binary_path = write_trace_binary(trace, tmp_path / "t.lilb")
        text_size = text_path.stat().st_size
        binary_size = binary_path.stat().st_size
        # Interning must win decisively on sample-heavy traces.
        assert binary_size < text_size / 2

    def test_deterministic_bytes(self, tmp_path):
        trace = _rich_trace()
        a = write_trace_binary(trace, tmp_path / "a.lilb").read_bytes()
        b = write_trace_binary(trace, tmp_path / "b.lilb").read_bytes()
        assert a == b


class TestBinaryErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.lilb"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_trace_binary(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.lilb"
        path.write_bytes(MAGIC + b"\xff\xff")
        with pytest.raises(TraceFormatError, match="unsupported"):
            read_trace_binary(path)

    def test_truncated_file(self, tmp_path):
        full = write_trace_binary(_rich_trace(), tmp_path / "t.lilb")
        data = full.read_bytes()
        truncated = tmp_path / "trunc.lilb"
        truncated.write_bytes(data[: len(data) // 2])
        # Truncation is caught by the CRC footer (or, for a cut inside
        # the header, by the truncation check itself).
        with pytest.raises(TraceFormatError, match="corrupt|truncated"):
            read_trace_binary(truncated)

    def test_any_bit_flip_is_detected(self, tmp_path):
        # The CRC footer catches corruption anywhere in the payload —
        # even flips that land in numeric fields and would otherwise
        # parse into a silently wrong trace.
        full = write_trace_binary(_rich_trace(), tmp_path / "t.lilb")
        data = bytearray(full.read_bytes())
        for offset in (8, len(data) // 2, len(data) - 8):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x01
            corrupt = tmp_path / "corrupt.lilb"
            corrupt.write_bytes(bytes(corrupted))
            with pytest.raises(TraceFormatError):
                read_trace_binary(corrupt)
