"""Unit tests for the session trace model."""

import pytest

from repro.core.errors import AnalysisError
from repro.core.trace import Trace, TraceMetadata, merge_thread_names

from helpers import (
    GUI,
    dispatch,
    gc_iv,
    gui_sample,
    listener_iv,
    make_trace,
    ms,
)


class TestTraceMetadata:
    def test_durations(self):
        meta = TraceMetadata("App", "s0", start_ns=0, end_ns=ms(2000.0))
        assert meta.duration_ns == ms(2000.0)
        assert meta.duration_s == pytest.approx(2.0)

    def test_rejects_negative_span(self):
        with pytest.raises(AnalysisError):
            TraceMetadata("App", "s0", start_ns=100, end_ns=50)

    def test_extra_metadata_is_copied(self):
        extra = {"seed": "42"}
        meta = TraceMetadata("App", "s0", 0, 100, extra=extra)
        extra["seed"] = "mutated"
        assert meta.extra["seed"] == "42"


class TestTrace:
    def test_extracts_episodes_from_gui_thread(self):
        trace = make_trace([dispatch(0.0, 50.0), dispatch(100.0, 160.0)])
        assert len(trace.episodes) == 2
        assert trace.episodes[1].index == 1

    def test_gc_roots_are_not_episodes(self):
        trace = make_trace([dispatch(0.0, 50.0), gc_iv(60.0, 90.0)])
        assert len(trace.episodes) == 1

    def test_samples_attached_to_episodes(self):
        trace = make_trace(
            [dispatch(0.0, 50.0)],
            samples=[gui_sample(10.0), gui_sample(70.0)],
        )
        assert len(trace.episodes[0].samples) == 1

    def test_samples_sorted_on_construction(self):
        trace = make_trace(
            [dispatch(0.0, 50.0)],
            samples=[gui_sample(30.0), gui_sample(10.0)],
        )
        times = [s.timestamp_ns for s in trace.samples]
        assert times == sorted(times)

    def test_perceptible_episodes(self):
        trace = make_trace([dispatch(0.0, 50.0), dispatch(100.0, 250.0)])
        assert len(trace.perceptible_episodes()) == 1
        assert len(trace.perceptible_episodes(threshold_ms=40.0)) == 2

    def test_in_episode_fraction(self):
        trace = make_trace(
            [dispatch(0.0, 100.0), dispatch(200.0, 300.0)], e2e_ms=1000.0
        )
        assert trace.in_episode_fraction() == pytest.approx(0.2)

    def test_in_episode_fraction_empty_session(self):
        meta = TraceMetadata("App", "s0", 0, 0)
        trace = Trace(meta, {GUI: []})
        assert trace.in_episode_fraction() == 0.0

    def test_gc_intervals_found_at_any_depth(self):
        nested_gc = gc_iv(10.0, 20.0)
        root_gc = gc_iv(200.0, 230.0)
        trace = make_trace(
            [
                dispatch(0.0, 50.0, [listener_iv("l", 5.0, 40.0, [nested_gc])]),
                root_gc,
            ]
        )
        assert trace.gc_intervals() == [nested_gc, root_gc]

    def test_thread_names_gui_first(self):
        trace = make_trace(
            [dispatch(0.0, 10.0)],
            extra_threads={"a-worker": [], "z-worker": []},
        )
        assert trace.thread_names[0] == GUI
        assert set(trace.thread_names) == {GUI, "a-worker", "z-worker"}

    def test_validate_accepts_good_trace(self):
        make_trace(
            [dispatch(0.0, 50.0)], samples=[gui_sample(10.0)]
        ).validate()

    def test_validate_rejects_overlapping_roots(self):
        # Bypass the builder to create a corrupt trace.
        trace = make_trace([dispatch(0.0, 50.0)])
        trace.thread_roots[GUI].append(dispatch(40.0, 90.0))
        with pytest.raises(AnalysisError, match="overlap"):
            trace.validate()

    def test_validate_rejects_episode_outside_session(self):
        trace = make_trace([dispatch(0.0, 50.0)], e2e_ms=40.0)
        with pytest.raises(AnalysisError, match="outside the session"):
            trace.validate()

    def test_short_episode_count_carried(self):
        trace = make_trace([dispatch(0.0, 50.0)], short_count=12345)
        assert trace.short_episode_count == 12345

    def test_repr(self):
        trace = make_trace([dispatch(0.0, 50.0)], short_count=7)
        assert "1 episodes" in repr(trace)
        assert "7 filtered" in repr(trace)


class TestMergeThreadNames:
    def test_gui_threads_first(self):
        t1 = make_trace([dispatch(0.0, 10.0)], extra_threads={"worker": []})
        names = merge_thread_names([t1])
        assert names[0] == GUI
        assert "worker" in names
