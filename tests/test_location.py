"""Unit tests for the app/library/GC/native location analysis."""

import pytest

from repro.core.intervals import IntervalKind
from repro.core.location import episode_gc_native_ns, summarize

from helpers import (
    APP_FRAME,
    LIB_FRAME,
    NATIVE_FRAME,
    dispatch,
    episode,
    gc_iv,
    interval,
    gui_sample,
    ms,
)


def _native_iv(start, end, children=None):
    return interval(IntervalKind.NATIVE, "sun.x.Y.n", start, end, children)


class TestGcNativeAccounting:
    def test_simple_fractions(self):
        ep = episode(dispatch(0.0, 100.0, [
            _native_iv(10.0, 30.0), gc_iv(50.0, 60.0)]))
        gc_ns, native_ns = episode_gc_native_ns(ep)
        assert gc_ns == ms(10.0)
        assert native_ns == ms(20.0)

    def test_gc_nested_in_native_not_double_counted(self):
        # Figure 1's shape: the native call wraps the collection; the
        # collection's time belongs to GC, not to native code.
        gc = gc_iv(40.0, 60.0)
        ep = episode(dispatch(0.0, 100.0, [_native_iv(10.0, 90.0, [gc])]))
        gc_ns, native_ns = episode_gc_native_ns(ep)
        assert gc_ns == ms(20.0)
        assert native_ns == ms(60.0)
        assert gc_ns + native_ns <= ep.duration_ns

    def test_no_gc_no_native(self):
        ep = episode(dispatch(0.0, 100.0))
        assert episode_gc_native_ns(ep) == (0, 0)


class TestSummarize:
    def test_app_vs_library_split(self):
        samples = [
            gui_sample(10.0, frames=(APP_FRAME,)),
            gui_sample(20.0, frames=(APP_FRAME,)),
            gui_sample(30.0, frames=(LIB_FRAME,)),
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        summary = summarize([ep])
        assert summary.app_fraction == pytest.approx(2 / 3)
        assert summary.library_fraction == pytest.approx(1 / 3)

    def test_native_samples_excluded_from_split(self):
        samples = [
            gui_sample(10.0, frames=(APP_FRAME,)),
            gui_sample(20.0, frames=(NATIVE_FRAME,)),
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        summary = summarize([ep])
        assert summary.app_samples == 1
        assert summary.library_samples == 0

    def test_empty_stacks_excluded(self):
        samples = [gui_sample(10.0, frames=())]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        summary = summarize([ep])
        assert summary.app_samples == summary.library_samples == 0
        assert summary.app_fraction == 0.0

    def test_custom_prefixes(self):
        samples = [gui_sample(10.0, frames=(APP_FRAME,))]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        summary = summarize([ep], library_prefixes=("com.example.",))
        assert summary.library_samples == 1

    def test_gc_native_fractions(self):
        ep = episode(dispatch(0.0, 100.0, [
            _native_iv(10.0, 20.0), gc_iv(50.0, 75.0)]))
        summary = summarize([ep])
        assert summary.gc_fraction == pytest.approx(0.25)
        assert summary.native_fraction == pytest.approx(0.10)

    def test_aggregates_across_episodes(self):
        ep1 = episode(dispatch(0.0, 100.0, [gc_iv(0.0, 50.0)]))
        ep2 = episode(dispatch(200.0, 300.0))
        summary = summarize([ep1, ep2])
        assert summary.episode_ns == ms(200.0)
        assert summary.gc_fraction == pytest.approx(0.25)

    def test_percentages_labels(self):
        summary = summarize([episode(dispatch(0.0, 100.0))])
        assert set(summary.percentages()) == {
            "Application", "RT Library", "GC", "Native",
        }

    def test_empty_population(self):
        summary = summarize([])
        assert summary.app_fraction == 0.0
        assert summary.gc_fraction == 0.0
