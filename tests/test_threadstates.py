"""Unit tests for the GUI-thread state (cause) analysis."""

import pytest

from repro.core.samples import ThreadState
from repro.core.threadstates import ThreadStateSummary, summarize

from helpers import dispatch, episode, gui_sample


class TestSummarize:
    def _episode(self):
        samples = [
            gui_sample(10.0, state=ThreadState.RUNNABLE),
            gui_sample(20.0, state=ThreadState.RUNNABLE),
            gui_sample(30.0, state=ThreadState.BLOCKED),
            gui_sample(40.0, state=ThreadState.WAITING),
            gui_sample(50.0, state=ThreadState.SLEEPING),
        ]
        return episode(dispatch(0.0, 100.0), samples=samples)

    def test_fractions(self):
        summary = summarize([self._episode()])
        assert summary.runnable_fraction == pytest.approx(0.4)
        assert summary.blocked_fraction == pytest.approx(0.2)
        assert summary.waiting_fraction == pytest.approx(0.2)
        assert summary.sleeping_fraction == pytest.approx(0.2)

    def test_synchronization_fraction(self):
        summary = summarize([self._episode()])
        assert summary.synchronization_fraction == pytest.approx(0.4)

    def test_percentages_sum_to_100(self):
        summary = summarize([self._episode()])
        assert sum(summary.percentages().values()) == pytest.approx(100.0)

    def test_only_gui_thread_counted(self):
        samples = [
            gui_sample(
                10.0,
                state=ThreadState.RUNNABLE,
                extra_threads=[("worker", ThreadState.BLOCKED)],
            )
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        summary = summarize([ep])
        assert summary.blocked_fraction == 0.0
        assert summary.runnable_fraction == pytest.approx(1.0)

    def test_empty(self):
        summary = ThreadStateSummary({})
        assert summary.total == 0
        assert summary.runnable_fraction == 0.0

    def test_aggregates_over_episodes(self):
        ep1 = episode(
            dispatch(0.0, 50.0),
            samples=[gui_sample(10.0, state=ThreadState.SLEEPING)],
        )
        ep2 = episode(dispatch(100.0, 150.0), samples=[gui_sample(110.0)])
        summary = summarize([ep1, ep2])
        assert summary.sleeping_fraction == pytest.approx(0.5)
