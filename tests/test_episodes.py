"""Unit tests for the episode model."""

import pytest

from repro.core.episodes import (
    Episode,
    episodes_from_roots,
    lag_ms,
    longest,
    perceptible,
    total_in_episode_ns,
)
from repro.core.errors import AnalysisError
from repro.core.intervals import IntervalKind

from helpers import (
    GUI,
    dispatch,
    episode,
    gc_iv,
    gui_sample,
    ms,
    paint_iv,
    simple_episode,
)


class TestEpisode:
    def test_requires_dispatch_root(self):
        with pytest.raises(AnalysisError, match="dispatch"):
            Episode(paint_iv("p", 0.0, 10.0), index=0, gui_thread=GUI)

    def test_timing_properties(self):
        ep = simple_episode(lag_ms=150.0, start_ms=1000.0)
        assert ep.start_ns == ms(1000.0)
        assert ep.end_ns == ms(1150.0)
        assert ep.duration_ms == pytest.approx(150.0)

    def test_perceptibility_threshold(self):
        assert simple_episode(lag_ms=100.0).is_perceptible()
        assert not simple_episode(lag_ms=99.9).is_perceptible()
        assert simple_episode(lag_ms=160.0).is_perceptible(threshold_ms=150.0)
        assert not simple_episode(lag_ms=160.0).is_perceptible(threshold_ms=195.0)

    def test_has_structure(self):
        assert simple_episode().has_structure
        assert not episode(dispatch(0.0, 50.0)).has_structure
        # A GC child counts as structure (the GC-only Arabeske episodes).
        assert episode(dispatch(0.0, 50.0, [gc_iv(10.0, 40.0)])).has_structure

    def test_descendants_and_depth(self):
        inner = paint_iv("inner", 2.0, 4.0)
        outer = paint_iv("outer", 1.0, 8.0, [inner])
        ep = episode(dispatch(0.0, 10.0, [outer]))
        assert ep.descendant_count() == 2
        assert ep.tree_depth() == 3

    def test_intervals_of_kind(self):
        gc = gc_iv(2.0, 3.0)
        ep = episode(dispatch(0.0, 10.0, [paint_iv("p", 1.0, 5.0, [gc])]))
        assert ep.intervals_of_kind(IntervalKind.GC) == [gc]
        assert len(ep.intervals_of_kind(IntervalKind.PAINT)) == 1

    def test_gui_samples_filters_other_threads(self):
        samples = [gui_sample(5.0), gui_sample(6.0)]
        ep = episode(dispatch(0.0, 10.0), samples=samples)
        assert len(ep.gui_samples()) == 2
        assert all(s.thread_name == GUI for s in ep.gui_samples())

    def test_attach_samples_slices_by_time(self):
        session_samples = [gui_sample(t) for t in (1.0, 5.0, 9.0, 15.0)]
        ep = episode(dispatch(4.0, 10.0))
        ep.attach_samples(session_samples)
        assert [s.timestamp_ns for s in ep.samples] == [ms(5.0), ms(9.0)]


class TestEpisodeHelpers:
    def test_episodes_from_roots_skips_non_dispatch(self):
        roots = [
            dispatch(0.0, 10.0),
            gc_iv(20.0, 30.0),  # a GC between episodes
            dispatch(40.0, 55.0),
        ]
        eps = episodes_from_roots(roots, GUI)
        assert len(eps) == 2
        assert [ep.index for ep in eps] == [0, 1]

    def test_episodes_from_roots_attaches_samples(self):
        roots = [dispatch(0.0, 10.0)]
        eps = episodes_from_roots(roots, GUI, [gui_sample(5.0)])
        assert len(eps[0].samples) == 1

    def test_perceptible_filter(self):
        eps = [simple_episode(50.0), simple_episode(120.0), simple_episode(300.0)]
        assert len(perceptible(eps)) == 2
        assert len(perceptible(eps, threshold_ms=200.0)) == 1

    def test_total_in_episode(self):
        eps = [simple_episode(50.0), simple_episode(100.0)]
        assert total_in_episode_ns(eps) == ms(150.0)

    def test_longest(self):
        eps = [simple_episode(50.0), simple_episode(120.0)]
        assert longest(eps).duration_ms == pytest.approx(120.0)
        assert longest([]) is None

    def test_lag_ms(self):
        eps = [simple_episode(50.0), simple_episode(120.0)]
        assert lag_ms(eps) == [pytest.approx(50.0), pytest.approx(120.0)]
