"""Golden-corpus regression gate: checked-in traces, checked-in answers.

``tests/golden/`` holds three simulated CrosswordSage session traces
and the full :func:`~repro.core.export.analysis_to_dict` summary they
produced when checked in. Any code change that drifts a statistic —
episode detection, pattern mining, any reducer, the reader itself —
fails here with a readable unified diff of the JSON, pinpointing which
numbers moved.

To accept intentional drift, regenerate the expectation:

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_baseline.py

and commit the updated ``expected_summary.json`` with the change that
caused it.
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.export import analysis_to_dict
from repro.apps.sessions import simulate_session
from repro.lila.writer import trace_to_lines

GOLDEN_DIR = Path(__file__).parent / "golden"
EXPECTED_PATH = GOLDEN_DIR / "expected_summary.json"

#: Provenance of the corpus: these exact coordinates wrote the files.
APPLICATION = "CrosswordSage"
SEED = 20100401
SCALE = 0.05
SESSIONS = 3

TRACE_PATHS = [
    GOLDEN_DIR / f"{APPLICATION}-session-{index}.lila"
    for index in range(SESSIONS)
]


def _summary() -> dict:
    analyzer = LagAlyzer.load(
        TRACE_PATHS, config=AnalysisConfig(perceptible_threshold_ms=100.0)
    )
    return analysis_to_dict(analyzer)


def _canonical(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def test_corpus_files_are_present():
    missing = [path.name for path in TRACE_PATHS if not path.is_file()]
    assert not missing, f"golden corpus incomplete: missing {missing}"
    assert EXPECTED_PATH.is_file(), "expected_summary.json is missing"


def test_corpus_provenance_is_reproducible():
    """The checked-in traces are exactly what the simulator writes.

    Guards the corpus itself: if the simulator changes, this fails
    first, telling you the *inputs* moved (regenerate the corpus), as
    opposed to the summary test failing because the *analysis* moved.
    """
    for index, path in enumerate(TRACE_PATHS):
        trace = simulate_session(
            APPLICATION, session_index=index, seed=SEED, scale=SCALE
        )
        expected = "\n".join(trace_to_lines(trace)) + "\n"
        assert path.read_text(encoding="utf-8") == expected, (
            f"{path.name} no longer matches the simulator output for "
            f"seed={SEED} scale={SCALE}; the trace generator changed"
        )


def test_analysis_matches_golden_summary():
    actual = _canonical(_summary())
    if os.environ.get("GOLDEN_REGEN"):
        EXPECTED_PATH.write_text(actual, encoding="utf-8")
        return
    expected = EXPECTED_PATH.read_text(encoding="utf-8")
    if actual == expected:
        return
    diff = "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile="expected_summary.json (checked in)",
            tofile="actual (this tree)",
            n=3,
        )
    )
    raise AssertionError(
        "analysis results drifted from the golden baseline; if the "
        "change is intentional, regenerate with GOLDEN_REGEN=1 and "
        "commit the diff:\n" + diff
    )
