"""Unit tests for the trace collector."""

import pytest

from repro.core.errors import SimulationError
from repro.core.intervals import IntervalKind, NS_PER_MS
from repro.vm.rng import RngStream
from repro.vm.tracer import TraceCollector

GUI = "AWT-EventQueue-0"


def make_tracer(filter_ms=3.0):
    return TraceCollector(GUI, filter_ms=filter_ms, rng=RngStream(9))


def t(ms_value):
    return round(ms_value * NS_PER_MS)


class TestEpisodeLifecycle:
    def test_retained_episode(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        tracer.open_interval(IntervalKind.LISTENER, "l", t(1))
        tracer.close_interval(t(9))
        root = tracer.end_episode(t(10))
        assert root is not None
        assert tracer.thread_roots[GUI] == [root]

    def test_short_episode_filtered(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        assert tracer.end_episode(t(2)) is None
        assert tracer.short_episode_count == 1
        assert tracer.thread_roots[GUI] == []

    def test_filtered_episode_keeps_gc_as_root(self):
        # A collection's record must not vanish with the episode that
        # happened to contain it.
        tracer = make_tracer(filter_ms=1000.0)
        tracer.begin_episode(t(0))
        tracer.record_gc(t(1), t(5), "GC.minor")
        tracer.end_episode(t(10))
        roots = tracer.thread_roots[GUI]
        assert len(roots) == 1
        assert roots[0].kind is IntervalKind.GC

    def test_nested_episode_rejected(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        with pytest.raises(SimulationError, match="already in progress"):
            tracer.begin_episode(t(1))

    def test_end_without_begin(self):
        with pytest.raises(SimulationError):
            make_tracer().end_episode(t(10))

    def test_end_with_open_intervals(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        tracer.open_interval(IntervalKind.PAINT, "p", t(1))
        with pytest.raises(SimulationError, match="still open"):
            tracer.end_episode(t(10))

    def test_interval_outside_episode(self):
        with pytest.raises(SimulationError, match="outside an episode"):
            make_tracer().open_interval(IntervalKind.PAINT, "p", t(1))

    def test_count_filtered(self):
        tracer = make_tracer()
        tracer.count_filtered(500)
        assert tracer.short_episode_count == 500
        with pytest.raises(SimulationError):
            tracer.count_filtered(-1)


class TestGcRecording:
    def test_gc_inside_episode(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        tracer.record_gc(t(2), t(8), "GC.minor")
        root = tracer.end_episode(t(20))
        assert root.children[0].kind is IntervalKind.GC

    def test_gc_between_episodes_is_root(self):
        tracer = make_tracer()
        tracer.record_gc(t(2), t(8), "GC.major")
        roots = tracer.thread_roots[GUI]
        assert roots[0].kind is IntervalKind.GC

    def test_gc_copied_to_all_threads(self):
        tracer = make_tracer()
        tracer.register_thread("worker")
        tracer.register_thread("timer")
        tracer.record_gc(t(2), t(8), "GC.minor")
        for thread in ("worker", "timer"):
            roots = tracer.thread_roots[thread]
            assert len(roots) == 1
            assert roots[0].kind is IntervalKind.GC

    def test_blackout_covers_pause_with_margins(self):
        tracer = make_tracer()
        tracer.record_gc(t(100), t(150), "GC.minor")
        (start, end), = tracer.merged_blackouts()
        assert start <= t(100)
        assert end >= t(150)

    def test_blackouts_merge(self):
        tracer = make_tracer()
        tracer.record_gc(t(100), t(150), "GC.minor")
        tracer.record_gc(t(150), t(200), "GC.minor")
        assert len(tracer.merged_blackouts()) == 1

    def test_episode_spans(self):
        tracer = make_tracer()
        tracer.begin_episode(t(0))
        tracer.end_episode(t(10))
        tracer.record_gc(t(15), t(18), "GC.minor")
        tracer.begin_episode(t(20))
        tracer.end_episode(t(40))
        assert tracer.episode_spans() == [(t(0), t(10)), (t(20), t(40))]
