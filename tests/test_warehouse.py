"""The study warehouse: migrations, parity, queries, retention, chaos.

The warehouse's core promise is *parity by construction*: rows compacted
from engine bundles or ingested directly from traces are value-identical
to what ``LagAlyzer.summaries()`` computes from the same traces. The
golden-corpus tests here pin that promise, the query tests pin the
aggregate / top-N / series / regression semantics, and the chaos tests
pin the degrade-never-kill contract (fault-injected writes, mid-run
file deletion, corrupt-row quarantine).

``WAREHOUSE_WORKERS`` selects the engine fan-out used by the parity
tests (default serial); CI runs the suite at 0 (one worker per CPU)
and 2.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path

import pytest

from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.plan import build_plan
from repro.core.statistics import SessionStats
from repro.engine.cache import (
    ResultCache,
    bundle_envelope,
    bundle_parts,
    config_fingerprint,
)
from repro.engine.engine import AnalysisEngine
from repro.faults import runtime as faults_runtime
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.study.runner import StudyConfig, run_study
from repro.warehouse.schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    StudyWarehouseError,
    ensure_schema,
    stored_version,
)
from repro.warehouse.store import INGEST_ANALYSES, StudyWarehouse
from repro.warehouse.types import RegressionReport

WORKERS = int(os.environ.get("WAREHOUSE_WORKERS", "1"))

GOLDEN_DIR = Path(__file__).parent / "golden"
TRACE_PATHS = [
    GOLDEN_DIR / f"CrosswordSage-session-{index}.lila" for index in range(3)
]
APPLICATION = "CrosswordSage"
THRESHOLD_MS = 100.0


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def make_stats(app: str = "TestApp", **overrides: float) -> SessionStats:
    values = dict(
        e2e_s=60.0,
        in_episode_pct=10.0,
        below_filter=5.0,
        traced=10.0,
        perceptible=2.0,
        long_per_min=0.5,
        distinct_patterns=3.0,
        covered_episodes=8.0,
        singleton_pct=20.0,
        mean_descendants=4.0,
        mean_depth=2.0,
    )
    values.update(overrides)
    return SessionStats(application=app, **values)


@pytest.fixture()
def wh(tmp_path: Path) -> StudyWarehouse:
    return StudyWarehouse(tmp_path / "study.sqlite")


@pytest.fixture(scope="module")
def golden() -> LagAlyzer:
    return LagAlyzer.load(
        TRACE_PATHS,
        config=AnalysisConfig(perceptible_threshold_ms=THRESHOLD_MS),
    )


def golden_partials(analyzer: LagAlyzer) -> list:
    """Per-trace (statistics, occurrence) partials via the fused plan —
    literally the pass ``LagAlyzer.summaries`` reduces."""
    plan = build_plan(INGEST_ANALYSES)
    return [plan.execute(trace, analyzer.config) for trace in analyzer.traces]


def merged_pattern_counts(partials: list) -> dict:
    merged: dict = {}
    for per_trace in partials:
        for key, (count, perceptible) in per_trace["occurrence"].counts.items():
            prev_count, prev_perceptible = merged.get(key, (0, 0))
            merged[key] = (prev_count + count, prev_perceptible + perceptible)
    return merged


def session_rows(wh: StudyWarehouse) -> list:
    columns = (
        "run_id", "app", "session_id", "trace_digest", "records",
        "excluded_episodes",
    ) + SessionStats._NUMERIC_FIELDS
    connection = sqlite3.connect(str(wh.path))
    try:
        return [
            dict(zip(columns, row))
            for row in connection.execute(
                "SELECT " + ", ".join(columns)
                + " FROM sessions ORDER BY run_id, app, session_id"
            )
        ]
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Schema and migrations
# ----------------------------------------------------------------------


class TestSchema:
    def test_fresh_file_is_current_version(self, wh):
        assert wh.schema_version() == SCHEMA_VERSION
        connection = sqlite3.connect(str(wh.path))
        try:
            assert stored_version(connection) == SCHEMA_VERSION
        finally:
            connection.close()

    def test_migration_chain_covers_every_version(self):
        assert len(MIGRATIONS) == SCHEMA_VERSION

    def test_v1_file_migrates_preserving_rows(self, tmp_path):
        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript(MIGRATIONS[0])
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('study_schema_version', '1')"
        )
        connection.execute(
            "INSERT INTO runs (run_id, created_ts) VALUES ('r1', 100.0)"
        )
        connection.execute(
            "INSERT INTO sessions (run_id, app, session_id, ingested_ts,"
            " traced, perceptible) VALUES ('r1', 'OldApp', 's0', 100.0,"
            " 10.0, 3.0)"
        )
        connection.execute(
            "INSERT INTO patterns (run_id, app, session_id, pattern_key,"
            " count, perceptible) VALUES ('r1', 'OldApp', 's0', 'p', 4, 1)"
        )
        connection.commit()
        connection.close()

        upgraded = StudyWarehouse(path)
        assert upgraded.schema_version() == SCHEMA_VERSION
        # v1 rows survive, and the v2 `records` column backfills to 0.
        rows = session_rows(upgraded)
        assert [row["app"] for row in rows] == ["OldApp"]
        assert rows[0]["records"] == 0
        assert rows[0]["traced"] == 10.0
        aggs = upgraded.aggregate()
        assert aggs[0].traced_episodes == 10
        assert upgraded.top_patterns()[0].occurrences == 4

    def test_migration_reports_start_version(self, tmp_path):
        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript(MIGRATIONS[0])
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('study_schema_version', '1')"
        )
        connection.commit()
        # A crash between migration steps leaves a valid lower-version
        # file; the next open resumes the walk from there.
        assert ensure_schema(connection) == 1
        assert stored_version(connection) == SCHEMA_VERSION
        assert ensure_schema(connection) == SCHEMA_VERSION
        connection.close()

    def test_v2_adds_quarantine_table_and_pattern_index(self, wh):
        wh.schema_version()
        connection = sqlite3.connect(str(wh.path))
        try:
            names = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master"
                )
            }
        finally:
            connection.close()
        assert "quarantine" in names
        assert "idx_patterns_app_key" in names

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript(MIGRATIONS[0])
        connection.execute(
            "INSERT INTO meta (key, value)"
            " VALUES ('study_schema_version', '99')"
        )
        connection.commit()
        connection.close()
        with pytest.raises(StudyWarehouseError, match="newer"):
            StudyWarehouse(path).schema_version()


# ----------------------------------------------------------------------
# Ingest semantics
# ----------------------------------------------------------------------


class TestIngest:
    def test_session_roundtrip(self, wh):
        stats = make_stats(traced=12.0, perceptible=3.0, e2e_s=61.5)
        assert wh.ingest_session(
            "r1", "TestApp", "s0", stats,
            pattern_counts={"p/a": (5, 2), "p/b": (3, 0)},
            excluded=1, trace_digest="d0", records=42, ts=1000.0,
        )
        row = session_rows(wh)[0]
        assert row["records"] == 42
        assert row["excluded_episodes"] == 1
        assert row["trace_digest"] == "d0"
        for name in SessionStats._NUMERIC_FIELDS:
            assert row[name] == getattr(stats, name)
        top = wh.top_patterns()
        assert [(p.pattern_key, p.occurrences, p.perceptible) for p in top] == [
            ("p/a", 5, 2), ("p/b", 3, 0),
        ]

    def test_same_digest_dedups(self, wh):
        stats = make_stats()
        assert wh.ingest_session("r1", "A", "s0", stats, trace_digest="d")
        assert not wh.ingest_session("r1", "A", "s0", stats, trace_digest="d")
        assert len(session_rows(wh)) == 1

    def test_new_digest_replaces_session_and_patterns(self, wh):
        wh.ingest_session(
            "r1", "A", "s0", make_stats(traced=5.0),
            pattern_counts={"old": (9, 9)}, trace_digest="d1",
        )
        assert wh.ingest_session(
            "r1", "A", "s0", make_stats(traced=7.0),
            pattern_counts={"new": (2, 1)}, trace_digest="d2",
        )
        rows = session_rows(wh)
        assert len(rows) == 1
        assert rows[0]["traced"] == 7.0
        assert [p.pattern_key for p in wh.top_patterns()] == ["new"]

    def test_ingest_creates_run_row_implicitly(self, wh):
        wh.ingest_session("r-implicit", "A", "s0", make_stats(), ts=500.0)
        runs = wh.runs()
        assert [run.run_id for run in runs] == ["r-implicit"]
        assert runs[0].sessions == 1

    def test_record_run_upsert_keeps_nonempty_fields(self, wh):
        wh.record_run("r1", label="seed=1", threshold_ms=100.0, ts=10.0)
        wh.record_run("r1", source="spool", ts=20.0)
        run = wh.runs()[0]
        assert run.label == "seed=1"
        assert run.source == "spool"
        assert run.threshold_ms == 100.0

    def test_hostile_identifiers_round_trip(self, wh):
        # Identifiers come straight off the wire; parameterized SQL
        # must treat them as opaque values, never syntax.
        hostile = [
            "app'; DROP TABLE sessions; --",
            '"double" OR 1=1',
            "../../../etc/passwd",
            "名前 app",
        ]
        for index, app in enumerate(hostile):
            assert wh.ingest_session(
                f"run' --{index}", app, f"s'{index}", make_stats(app=app),
                pattern_counts={"k\"'": (1, 1)},
            )
        aggs = wh.aggregate()
        assert sorted(agg.application for agg in aggs) == sorted(hostile)
        # The table survived the attempted injection.
        assert len(session_rows(wh)) == len(hostile)
        assert wh.aggregate(apps=[hostile[0]])[0].sessions == 1


# ----------------------------------------------------------------------
# Parity with LagAlyzer.summaries over the golden corpus
# ----------------------------------------------------------------------


class TestGoldenParity:
    def test_ingest_trace_rows_match_summaries(self, wh, golden):
        for trace in golden.traces:
            assert wh.ingest_trace(trace, "golden", golden.config)
        summary = golden.summaries(INGEST_ANALYSES)["statistics"]
        rows = session_rows(wh)
        assert len(rows) == len(summary.rows)
        by_session = {row["session_id"]: row for row in rows}
        for trace, stats in zip(golden.traces, summary.rows):
            row = by_session[trace.metadata.session_id]
            for name in SessionStats._NUMERIC_FIELDS:
                assert row[name] == getattr(stats, name), name

    def test_pattern_totals_match_merged_partials(self, wh, golden):
        for trace in golden.traces:
            wh.ingest_trace(trace, "golden", golden.config)
        merged = merged_pattern_counts(golden_partials(golden))
        top = wh.top_patterns(n=10_000)
        assert {
            p.pattern_key: (p.occurrences, p.perceptible) for p in top
        } == merged

    def test_aggregate_matches_summaries_totals(self, wh, golden):
        for trace in golden.traces:
            wh.ingest_trace(trace, "golden", golden.config)
        summary = golden.summaries(INGEST_ANALYSES)["statistics"]
        agg = wh.aggregate()[0]
        assert agg.application == APPLICATION
        assert agg.sessions == len(summary.rows)
        assert agg.traced_episodes == int(
            sum(row.traced for row in summary.rows)
        )
        assert agg.perceptible_episodes == int(
            sum(row.perceptible for row in summary.rows)
        )
        assert agg.total_e2e_s == pytest.approx(
            sum(row.e2e_s for row in summary.rows)
        )
        assert agg.mean_long_per_min == pytest.approx(
            summary.mean.long_per_min
        )
        assert agg.perceptible_rate == pytest.approx(
            sum(row.perceptible for row in summary.rows)
            / sum(row.traced for row in summary.rows)
        )

    def test_threshold_variant_changes_fingerprint_not_parity(
        self, wh, golden
    ):
        strict = AnalysisConfig(perceptible_threshold_ms=150.0)
        analyzer = LagAlyzer.from_traces(golden.traces, config=strict)
        for trace in analyzer.traces:
            wh.ingest_trace(trace, "strict", strict)
        summary = analyzer.summaries(INGEST_ANALYSES)["statistics"]
        agg = wh.aggregate()[0]
        assert agg.perceptible_episodes == int(
            sum(row.perceptible for row in summary.rows)
        )
        assert config_fingerprint(strict) != config_fingerprint(golden.config)
        fingerprints = {
            row["run_id"] for row in session_rows(wh)
        }
        assert fingerprints == {"strict"}

    def test_bundle_compaction_equals_direct_ingest(
        self, tmp_path, golden
    ):
        fingerprint = config_fingerprint(golden.config)
        engine = AnalysisEngine(workers=WORKERS, cache_dir=tmp_path / "cache")
        engine.map_traces(INGEST_ANALYSES, golden.traces, golden.config)

        compacted = StudyWarehouse(tmp_path / "compacted.sqlite")
        counters = compacted.ingest_bundles(
            ResultCache(tmp_path / "cache"), "golden",
            config_fingerprint=fingerprint,
        )
        assert counters == {
            "ingested": len(golden.traces), "skipped": 0, "ineligible": 0,
        }

        direct = StudyWarehouse(tmp_path / "direct.sqlite")
        for trace in golden.traces:
            direct.ingest_trace(trace, "golden", golden.config)

        assert [a.as_dict() for a in compacted.aggregate()] == [
            a.as_dict() for a in direct.aggregate()
        ]
        assert [p.as_dict() for p in compacted.top_patterns(n=10_000)] == [
            p.as_dict() for p in direct.top_patterns(n=10_000)
        ]
        # Re-sweeping the same cache is a pure dedup no-op.
        again = compacted.ingest_bundles(
            ResultCache(tmp_path / "cache"), "golden",
            config_fingerprint=fingerprint,
        )
        assert again == {
            "ingested": 0, "skipped": len(golden.traces), "ineligible": 0,
        }

    def test_bundle_filters_narrow_the_sweep(self, tmp_path, golden):
        engine = AnalysisEngine(workers=1, cache_dir=tmp_path / "cache")
        engine.map_traces(INGEST_ANALYSES, golden.traces, golden.config)
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        wrong_fp = wh.ingest_bundles(
            ResultCache(tmp_path / "cache"), "r",
            config_fingerprint="not-a-real-fingerprint",
        )
        assert wrong_fp["ingested"] == 0
        assert wrong_fp["ineligible"] == len(golden.traces)
        wrong_app = wh.ingest_bundles(
            ResultCache(tmp_path / "cache"), "r",
            applications=["SomeOtherApp"],
        )
        assert wrong_app["ingested"] == 0

    def test_worker_counts_agree_exactly(self, tmp_path, golden):
        """The acceptance pin: regression diffs (and everything under
        them) reproduce identically across worker counts."""
        stores = {}
        for label, workers in (("serial", 1), ("pooled", WORKERS)):
            cache_dir = tmp_path / f"cache-{label}"
            engine = AnalysisEngine(workers=workers, cache_dir=cache_dir)
            engine.map_traces(INGEST_ANALYSES, golden.traces, golden.config)
            store = StudyWarehouse(tmp_path / f"{label}.sqlite")
            store.record_run("golden", ts=1000.0)
            store.ingest_bundles(
                ResultCache(cache_dir), "golden",
                config_fingerprint=config_fingerprint(golden.config),
                ts=1000.0,
            )
            stores[label] = store
        serial, pooled = stores["serial"], stores["pooled"]
        assert session_rows(serial) == session_rows(pooled)
        assert [p.as_dict() for p in serial.top_patterns(n=10_000)] == [
            p.as_dict() for p in pooled.top_patterns(n=10_000)
        ]
        diff_serial = serial.regression(["golden"], ["golden"])
        diff_pooled = pooled.regression(["golden"], ["golden"])
        assert diff_serial.as_dict() == diff_pooled.as_dict()


# ----------------------------------------------------------------------
# iter_bundles — the compaction surface the warehouse consumes
# ----------------------------------------------------------------------


class TestIterBundles:
    @pytest.fixture()
    def cache(self, tmp_path, golden) -> ResultCache:
        engine = AnalysisEngine(workers=1, cache_dir=tmp_path / "cache")
        engine.map_traces(INGEST_ANALYSES, golden.traces, golden.config)
        return ResultCache(tmp_path / "cache")

    def test_order_is_deterministic_ascending(self, cache):
        first = [record.key for record in cache.iter_bundles()]
        second = [record.key for record in cache.iter_bundles()]
        assert first == second == sorted(first)
        assert len(first) == len(TRACE_PATHS)

    def test_meta_carries_provenance(self, cache, golden):
        fingerprint = config_fingerprint(golden.config)
        sessions = set()
        for record in cache.iter_bundles():
            meta = record.meta
            assert meta["application"] == APPLICATION
            assert meta["config_fingerprint"] == fingerprint
            assert meta["threshold_ms"] == THRESHOLD_MS
            assert meta["analyses"] == sorted(INGEST_ANALYSES)
            assert meta["trace_digest"]
            assert meta["plan_fingerprint"]
            assert set(record.partials) == set(INGEST_ANALYSES)
            sessions.add(meta["session_id"])
        assert sessions == {
            trace.metadata.session_id for trace in golden.traces
        }

    def test_corrupt_entry_skipped_and_discarded(self, cache):
        path = sorted((cache.root / "bundles").rglob("*.pkl"))[0]
        path.write_bytes(b"not a cache entry")
        keys = [record.key for record in cache.iter_bundles()]
        assert len(keys) == len(TRACE_PATHS) - 1
        assert path.stem not in keys
        assert not path.exists()  # corrupt entries are reclaimed

    def test_bundle_parts_accepts_legacy_raw_bundles(self):
        legacy = {"statistics": make_stats()}
        meta, partials = bundle_parts(legacy)
        assert meta is None
        assert partials is legacy
        meta, partials = bundle_parts(
            bundle_envelope({"statistics": 1}, {"application": "A"})
        )
        assert meta == {"application": "A"}
        assert partials == {"statistics": 1}
        assert bundle_parts("garbage") == (None, None)


# ----------------------------------------------------------------------
# Query semantics
# ----------------------------------------------------------------------


class TestQueries:
    @pytest.fixture()
    def seeded(self, wh) -> StudyWarehouse:
        wh.record_run("base", ts=1000.0)
        wh.record_run("cand", ts=2000.0)
        wh.ingest_session(
            "base", "Alpha", "s0",
            make_stats("Alpha", traced=100.0, perceptible=5.0,
                       e2e_s=60.0, long_per_min=1.0),
            pattern_counts={"p/hot": (10, 4), "p/cold": (20, 0)},
            trace_digest="a0", ts=1000.0,
        )
        wh.ingest_session(
            "base", "Beta", "s0",
            make_stats("Beta", traced=50.0, perceptible=10.0,
                       e2e_s=30.0, long_per_min=3.0),
            pattern_counts={"p/hot": (8, 4), "p/beta": (1, 1)},
            trace_digest="b0", ts=1060.0,
        )
        wh.ingest_session(
            "cand", "Alpha", "s1",
            make_stats("Alpha", traced=100.0, perceptible=30.0,
                       e2e_s=60.0, long_per_min=5.0),
            pattern_counts={"p/hot": (12, 9)},
            trace_digest="a1", ts=5000.0,
        )
        return wh

    def test_aggregate_groups_by_app(self, seeded):
        aggs = seeded.aggregate()
        assert [agg.application for agg in aggs] == ["Alpha", "Beta"]
        alpha = aggs[0]
        assert alpha.sessions == 2
        assert alpha.traced_episodes == 200
        assert alpha.perceptible_episodes == 35
        assert alpha.total_e2e_s == pytest.approx(120.0)
        assert alpha.mean_long_per_min == pytest.approx(3.0)
        assert alpha.perceptible_rate == pytest.approx(35 / 200)

    def test_aggregate_filters(self, seeded):
        assert [
            agg.application for agg in seeded.aggregate(apps=["Beta"])
        ] == ["Beta"]
        base_only = seeded.aggregate(run_ids=["base"])
        assert [agg.sessions for agg in base_only] == [1, 1]
        assert [
            agg.application for agg in seeded.aggregate(since_ts=4000.0)
        ] == ["Alpha"]
        assert seeded.aggregate(apps=["Nope"]) == []

    def test_top_patterns_perceptible_ranking(self, seeded):
        top = seeded.top_patterns(n=2, metric="perceptible_lag")
        assert [(p.application, p.pattern_key) for p in top] == [
            ("Alpha", "p/hot"), ("Beta", "p/hot"),
        ]
        assert top[0].perceptible == 13
        assert top[0].occurrences == 22
        assert top[0].sessions == 2

    def test_top_patterns_occurrence_ranking(self, seeded):
        top = seeded.top_patterns(metric="occurrences")
        assert (top[0].application, top[0].pattern_key) == ("Alpha", "p/hot")
        assert (top[1].application, top[1].pattern_key) == ("Alpha", "p/cold")

    def test_top_patterns_tie_break_is_lexicographic(self, wh):
        for app in ("B", "A"):
            wh.ingest_session(
                "r", app, "s", make_stats(app),
                pattern_counts={"k": (3, 1)}, trace_digest=app,
            )
        top = wh.top_patterns()
        assert [p.application for p in top] == ["A", "B"]

    def test_top_patterns_unknown_metric_raises(self, seeded):
        with pytest.raises(StudyWarehouseError, match="unknown pattern metric"):
            seeded.top_patterns(metric="vibes")

    def test_series_buckets_by_ingest_time(self, seeded):
        points = seeded.series(metric="perceptible", bucket="hour")
        assert [
            (p.application, p.bucket_ts, p.sessions, p.value) for p in points
        ] == [
            ("Alpha", 0.0, 1, 5.0),
            ("Alpha", 3600.0, 1, 30.0),
            ("Beta", 0.0, 1, 10.0),
        ]
        by_minute = seeded.series(metric="perceptible", bucket="minute")
        assert len(by_minute) == 3
        assert by_minute[0].bucket_ts == 960.0

    def test_series_rate_metric(self, seeded):
        points = seeded.series(metric="perceptible_rate", bucket="day")
        assert points[0].value == pytest.approx(35 / 200)

    def test_series_rejects_unknown_inputs(self, seeded):
        with pytest.raises(StudyWarehouseError, match="unknown bucket"):
            seeded.series(bucket="fortnight")
        with pytest.raises(StudyWarehouseError, match="unknown metric"):
            seeded.series(metric="vibes")

    def test_regression_flags_worsened_app(self, seeded):
        report = seeded.regression(["base"], ["cand"])
        assert isinstance(report, RegressionReport)
        entries = {entry.application: entry for entry in report.entries}
        alpha = entries["Alpha"]
        assert alpha.baseline_value == pytest.approx(0.05)
        assert alpha.candidate_value == pytest.approx(0.30)
        assert alpha.regressed
        # Beta only exists in the baseline: candidate side reads 0.
        beta = entries["Beta"]
        assert beta.candidate_sessions == 0
        assert not beta.regressed
        assert report.regressed
        assert [e.application for e in report.regressions] == ["Alpha"]

    def test_regression_min_delta_is_strict(self, seeded):
        report = seeded.regression(["base"], ["cand"], min_delta=0.25)
        assert not report.entries[0].regressed  # delta == min_delta
        assert not report.regressed
        report = seeded.regression(["base"], ["cand"], min_delta=0.2499)
        assert report.regressed

    def test_regression_missing_warehouse_is_empty(self, tmp_path):
        report = StudyWarehouse(tmp_path / "nope.sqlite").regression(
            ["a"], ["b"]
        )
        assert report.entries == []
        assert not report.regressed

    def test_queries_on_missing_file_return_empty(self, tmp_path):
        wh = StudyWarehouse(tmp_path / "absent.sqlite")
        assert wh.runs() == []
        assert wh.aggregate() == []
        assert wh.top_patterns() == []
        assert wh.series() == []
        assert wh.prune(max_age_s=1.0) == 0
        assert wh.compact(1.0) == 0
        assert wh.quarantine_corrupt() == 0
        assert wh.quarantined() == []
        assert not wh.path.exists()  # queries never create the file


# ----------------------------------------------------------------------
# Retention: prune and compact
# ----------------------------------------------------------------------


class TestRetention:
    def seed_runs(self, wh) -> None:
        for run, ts in (("old", 100.0), ("mid", 1000.0), ("new", 2000.0)):
            wh.record_run(run, ts=ts)
            wh.ingest_session(
                run, "App", f"s-{run}", make_stats(),
                pattern_counts={"k": (2, 1)}, trace_digest=run, ts=ts,
            )

    def test_prune_by_age_cascades(self, wh):
        self.seed_runs(wh)
        assert wh.prune(max_age_s=1500.0, now=2100.0) == 1
        assert [run.run_id for run in wh.runs()] == ["mid", "new"]
        assert len(session_rows(wh)) == 2
        assert sum(p.occurrences for p in wh.top_patterns()) == 4

    def test_prune_keep_newest_n(self, wh):
        self.seed_runs(wh)
        assert wh.prune(keep_runs=1) == 2
        assert [run.run_id for run in wh.runs()] == ["new"]

    def test_prune_without_criteria_is_noop(self, wh):
        self.seed_runs(wh)
        assert wh.prune() == 0
        assert len(wh.runs()) == 3

    def test_compact_folds_patterns_preserving_sums(self, wh):
        wh.record_run("old", ts=100.0)
        for session in ("s0", "s1", "s2"):
            wh.ingest_session(
                "old", "App", session, make_stats(),
                pattern_counts={"k/a": (2, 1), "k/b": (5, 0)},
                trace_digest=session, ts=100.0,
            )
        before = {
            p.pattern_key: (p.occurrences, p.perceptible)
            for p in wh.top_patterns()
        }
        reclaimed = wh.compact(older_than_s=50.0, now=1000.0)
        assert reclaimed == 4  # 6 per-session rows fold into 2
        after = {
            p.pattern_key: (p.occurrences, p.perceptible)
            for p in wh.top_patterns()
        }
        assert after == before == {"k/a": (6, 3), "k/b": (15, 0)}
        # Session summary rows are untouched by pattern compaction.
        assert len(session_rows(wh)) == 3

    def test_compact_spares_recent_runs(self, wh):
        wh.record_run("fresh", ts=990.0)
        wh.ingest_session(
            "fresh", "App", "s0", make_stats(),
            pattern_counts={"k": (1, 0)}, trace_digest="d", ts=990.0,
        )
        assert wh.compact(older_than_s=100.0, now=1000.0) == 0
        assert wh.top_patterns()[0].occurrences == 1


# ----------------------------------------------------------------------
# Chaos: faults, deletion, corruption — degrade, never kill
# ----------------------------------------------------------------------


def _always(kind: str) -> FaultPlan:
    return FaultPlan(seed=7, rules=(FaultRule(kind=kind, probability=1.0),))


class TestChaos:
    def test_write_fault_raises_at_the_site(self, wh):
        with faults_runtime.installed(
            FaultInjector(_always("warehouse_write_error"))
        ):
            with pytest.raises(OSError, match="injected warehouse write"):
                wh.ingest_session("r", "App", "s0", make_stats())
        # Nothing half-written: the fault fires before any SQL runs.
        assert wh.aggregate() == []

    def test_write_fault_is_keyed_per_session(self, tmp_path):
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(
                    kind="warehouse_write_error",
                    at=("App/s0",),
                    probability=1.0,
                ),
            ),
        )
        with faults_runtime.installed(FaultInjector(plan)):
            with pytest.raises(OSError):
                wh.ingest_session("r", "App", "s0", make_stats())
            assert wh.ingest_session("r", "App", "s1", make_stats())
        assert [row["session_id"] for row in session_rows(wh)] == ["s1"]

    def test_study_survives_warehouse_write_faults(self, tmp_path):
        config = StudyConfig(
            applications=("CrosswordSage",), sessions=1, scale=0.05
        )
        with pytest.warns(RuntimeWarning, match="study results are unaffected"):
            result = run_study(
                config,
                workers=1,
                cache_dir=tmp_path / "cache",
                warehouse=tmp_path / "wh.sqlite",
                faults=_always("warehouse_write_error"),
            )
        # The study itself is whole; only the warehouse byproduct is short.
        assert list(result.apps) == ["CrosswordSage"]
        assert StudyWarehouse(tmp_path / "wh.sqlite").aggregate() == []

    def test_study_compacts_into_warehouse(self, tmp_path):
        config = StudyConfig(
            applications=("CrosswordSage",), sessions=2, scale=0.05
        )
        result = run_study(
            config,
            workers=WORKERS,
            cache_dir=tmp_path / "cache",
            warehouse=tmp_path / "wh.sqlite",
            warehouse_run_id="pinned-run",
        )
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        runs = wh.runs()
        assert [run.run_id for run in runs] == ["pinned-run"]
        assert runs[0].source == "bundles"
        assert runs[0].sessions == config.sessions
        agg = wh.aggregate()[0]
        stats = result.apps["CrosswordSage"].session_stats
        assert agg.traced_episodes == int(sum(row.traced for row in stats))
        assert agg.perceptible_episodes == int(
            sum(row.perceptible for row in stats)
        )

    def test_study_without_cache_warns_and_skips(self, tmp_path):
        config = StudyConfig(
            applications=("CrosswordSage",), sessions=1, scale=0.05
        )
        with pytest.warns(RuntimeWarning, match="needs use_cache=True"):
            run_study(
                config,
                workers=1,
                use_cache=False,
                cache_dir=tmp_path / "cache",
                warehouse=tmp_path / "wh.sqlite",
            )
        assert not (tmp_path / "wh.sqlite").exists()

    def test_mid_run_deletion_recreates_on_next_write(self, wh):
        wh.ingest_session("r", "App", "s0", make_stats(), trace_digest="a")
        wh.path.unlink()
        assert wh.ingest_session("r", "App", "s1", make_stats(),
                                 trace_digest="b")
        assert [row["session_id"] for row in session_rows(wh)] == ["s1"]

    def test_corrupt_session_rows_guarded_then_quarantined(self, wh):
        wh.ingest_session("r", "Good", "s0", make_stats(traced=10.0),
                          trace_digest="g")
        wh.ingest_session("r", "Bad", "s0", make_stats(traced=10.0),
                          trace_digest="b")
        connection = sqlite3.connect(str(wh.path))
        connection.execute(
            "UPDATE sessions SET traced = 'garbage' WHERE app = 'Bad'"
        )
        connection.commit()
        connection.close()
        # The guard keeps the tampered row out of every aggregate...
        assert [agg.application for agg in wh.aggregate()] == ["Good"]
        assert [p.application for p in wh.series()] == ["Good"]
        # ...and the sweep moves it aside, preserving the payload.
        assert wh.quarantine_corrupt(now=123.0) == 1
        assert wh.quarantined() == [("sessions", "non-numeric stats")]
        assert [row["app"] for row in session_rows(wh)] == ["Good"]

    def test_corrupt_pattern_rows_guarded_then_quarantined(self, wh):
        wh.ingest_session(
            "r", "App", "s0", make_stats(),
            pattern_counts={"good": (3, 1), "bad": (2, 2)}, trace_digest="d",
        )
        connection = sqlite3.connect(str(wh.path))
        connection.execute(
            "UPDATE patterns SET count = 'x' WHERE pattern_key = 'bad'"
        )
        connection.commit()
        connection.close()
        assert [p.pattern_key for p in wh.top_patterns()] == ["good"]
        assert wh.quarantine_corrupt() == 1
        assert wh.quarantined() == [("patterns", "non-numeric counts")]

    def test_quarantine_on_clean_warehouse_sweeps_nothing(self, wh):
        wh.ingest_session("r", "App", "s0", make_stats())
        assert wh.quarantine_corrupt() == 0
        assert wh.quarantined() == []


# ----------------------------------------------------------------------
# Property-based round trips (hypothesis)
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

session_values = st.tuples(
    st.integers(min_value=0, max_value=500),  # traced
    st.integers(min_value=0, max_value=500),  # perceptible (clamped below)
    st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),  # e2e_s
)

pattern_maps = st.dictionaries(
    st.sampled_from(["d", "d(l)", "d(p)", "d(l(d))", "d(p,l)"]),
    st.tuples(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=50),
    ).map(lambda pair: (pair[0], min(pair[0], pair[1]))),
    max_size=5,
)


class TestProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(sessions=st.lists(session_values, min_size=1, max_size=8))
    def test_aggregate_equals_python_sums(self, tmp_path, sessions):
        wh = StudyWarehouse(
            tmp_path / f"prop-{abs(hash(tuple(sessions)))}.sqlite"
        )
        for index, (traced, perceptible, e2e_s) in enumerate(sessions):
            perceptible = min(traced, perceptible)
            wh.ingest_session(
                "r", "App", f"s{index}",
                make_stats(
                    "App",
                    traced=float(traced),
                    perceptible=float(perceptible),
                    e2e_s=e2e_s,
                ),
                trace_digest=f"d{index}",
                ts=float(index),
            )
        agg = wh.aggregate()[0]
        assert agg.sessions == len(sessions)
        assert agg.traced_episodes == sum(t for t, _, _ in sessions)
        assert agg.perceptible_episodes == sum(
            min(t, p) for t, p, _ in sessions
        )
        assert agg.total_e2e_s == pytest.approx(
            sum(e for _, _, e in sessions)
        )
        total_traced = sum(t for t, _, _ in sessions)
        expected_rate = (
            agg.perceptible_episodes / total_traced if total_traced else 0.0
        )
        assert agg.perceptible_rate == pytest.approx(expected_rate)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(per_session=st.lists(pattern_maps, min_size=1, max_size=6))
    def test_top_patterns_equal_python_merge(self, tmp_path, per_session):
        wh = StudyWarehouse(
            tmp_path / f"prop-{abs(hash(str(per_session)))}.sqlite"
        )
        merged: dict = {}
        for index, counts in enumerate(per_session):
            wh.ingest_session(
                "r", "App", f"s{index}", make_stats(),
                pattern_counts=counts, trace_digest=f"d{index}",
            )
            for key, (count, perceptible) in counts.items():
                prev_count, prev_perceptible = merged.get(key, (0, 0))
                merged[key] = (
                    prev_count + count, prev_perceptible + perceptible
                )
        top = wh.top_patterns(n=1000)
        assert {
            p.pattern_key: (p.occurrences, p.perceptible) for p in top
        } == merged
        # Ranking is by perceptible count, non-increasing.
        perceptibles = [p.perceptible for p in top]
        assert perceptibles == sorted(perceptibles, reverse=True)


# ----------------------------------------------------------------------
# Concurrency: parallel writers, readers during maintenance
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_two_writers_interleave_without_loss(self, wh):
        errors: list = []

        def write(prefix: str) -> None:
            try:
                for index in range(12):
                    wh.ingest_session(
                        "r", f"App-{prefix}", f"s{index}", make_stats(),
                        pattern_counts={f"k{index}": (1, 0)},
                        trace_digest=f"{prefix}{index}",
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=write, args=(prefix,))
            for prefix in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        aggs = wh.aggregate()
        assert [(agg.application, agg.sessions) for agg in aggs] == [
            ("App-a", 12), ("App-b", 12),
        ]

    def test_reader_survives_concurrent_maintenance(self, wh):
        wh.record_run("old", ts=10.0)
        for index in range(20):
            wh.ingest_session(
                "old", "App", f"s{index}", make_stats(),
                pattern_counts={"k": (1, 1)}, trace_digest=str(index),
                ts=10.0,
            )
        errors: list = []
        stop = threading.Event()

        def read() -> None:
            try:
                while not stop.is_set():
                    wh.aggregate()
                    wh.top_patterns()
                    wh.runs()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        reader = threading.Thread(target=read)
        reader.start()
        try:
            wh.quarantine_corrupt()
            assert wh.compact(older_than_s=5.0, now=1000.0) == 19
            wh.prune(max_age_s=10_000.0, now=1000.0)
        finally:
            stop.set()
            reader.join()
        assert errors == []
        assert wh.top_patterns()[0].occurrences == 20
