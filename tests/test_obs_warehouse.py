"""The operational telemetry layer: warehouse, publisher, SLO, health.

Covers the SQLite warehouse contract (additive merges, multi-run
percentile queries, retention), the publisher's best-effort loss
semantics (a failed flush is counted and retried whole — never fatal,
never corrupting ingest), declarative SLO policies, the live health
endpoints, and the ``obs query`` / ``obs slo check`` / ``obs top`` CLI
exit-code contract.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults import runtime as faults_runtime
from repro.ingest import IngestServer, TraceClient
from repro.obs import (
    DEFAULT_INGEST_SLO,
    HealthServer,
    Observer,
    SloPolicy,
    SloThreshold,
    TelemetryPublisher,
    Warehouse,
)
from repro.obs import runtime as obs_runtime
from repro.obs.publisher import FLUSHES, LOST_FLUSHES, snapshot_delta
from repro.obs.slo import SloError, ingest_stats_for_slo
from repro.obs.warehouse import (
    WarehouseError,
    estimate_percentile,
)


def http_get(url: str, timeout_s: float = 5.0):
    """``(status, body bytes)`` — error statuses return, not raise."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


HIST = {"buckets": [1.0, 10.0, 100.0], "counts": [5, 3, 0, 0],
        "sum": 20.0, "count": 8}


# ----------------------------------------------------------------------
# Warehouse
# ----------------------------------------------------------------------


class TestWarehouse:
    def test_schema_created_on_first_touch(self, tmp_path):
        wh = Warehouse(tmp_path / "deep" / "dir" / "metrics.db")
        assert wh.schema_version() == 1
        assert wh.path.is_file()

    def test_counters_add_within_a_bucket(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"counters": {"c": 2}}, ts=1000)
        wh.record_delta("r1", {"counters": {"c": 3}}, ts=1010)
        assert wh.totals() == {"c": 5.0}
        assert wh.series("c", bucket="minute") == [(960, 5.0)]

    def test_gauges_keep_the_max(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"gauges": {"g": 7}}, ts=1000)
        wh.record_delta("r1", {"gauges": {"g": 3}}, ts=1010)
        assert wh.series("g", bucket="minute") == [(960, 7.0)]

    def test_series_sums_counters_across_runs(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"counters": {"c": 1}}, ts=1000)
        wh.record_delta("r2", {"counters": {"c": 4}}, ts=1010)
        assert wh.series("c", bucket="minute") == [(960, 5.0)]
        assert wh.series("c", run_id="r2") == [(960, 4.0)]
        assert wh.series("c", since_ts=2000) == []

    def test_percentile_series_merges_runs_per_day(self, tmp_path):
        # The acceptance query: p99 send-to-ack per day across runs.
        wh = Warehouse(tmp_path / "m.db")
        day = 86400
        wh.record_delta("r1", {"histograms": {"flush_ms": HIST}}, ts=day)
        wh.record_delta("r2", {"histograms": {"flush_ms": dict(
            HIST, counts=[0, 0, 4, 0], sum=300.0, count=4,
        )}}, ts=day + 3600)
        rows = wh.percentile_series("flush_ms", q=0.99, bucket="day")
        assert rows == [(day, 100.0, 12)]
        # The median of the merged day sits in the second cell.
        rows = wh.percentile_series("flush_ms", q=0.5, bucket="day")
        assert rows == [(day, 10.0, 12)]

    def test_percentile_q_validated(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        with pytest.raises(WarehouseError, match="outside"):
            wh.percentile_series("x", q=1.5)

    def test_span_rollups_aggregate(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"spans": {
            "flush": {"count": 2, "total_ms": 10.0, "max_ms": 8.0},
        }}, ts=1000)
        wh.record_delta("r1", {"spans": {
            "flush": {"count": 1, "total_ms": 20.0, "max_ms": 20.0},
        }}, ts=1001)
        (row,) = wh.span_summary()
        assert row == {"name": "flush", "count": 3, "total_ms": 30.0,
                       "mean_ms": 10.0, "max_ms": 20.0}

    def test_runs_and_names_catalog(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"counters": {"c": 1}, "gauges": {"g": 2},
                               "histograms": {"h": HIST},
                               "spans": {"s": {"count": 1}}},
                        ts=1000, host="box")
        wh.record_delta("r1", {"counters": {"c": 1}}, ts=1100)
        (run,) = wh.runs()
        assert run["run_id"] == "r1"
        assert run["host"] == "box"
        assert run["flushes"] == 2
        assert wh.metric_names() == {
            "counters": ["c"], "gauges": ["g"],
            "histograms": ["h"], "spans": ["s"],
        }

    def test_queries_on_missing_file_are_empty(self, tmp_path):
        wh = Warehouse(tmp_path / "never.db")
        assert wh.runs() == []
        assert wh.totals() == {}
        assert wh.series("c") == []
        assert wh.percentile_series("h") == []
        assert wh.span_summary() == []
        assert wh.prune(10) == 0
        assert wh.compact() == 0
        assert not wh.path.exists()  # reads never create the file

    def test_unknown_bucket_raises(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        with pytest.raises(WarehouseError, match="unknown bucket"):
            wh.series("c", bucket="fortnight")
        with pytest.raises(WarehouseError, match="unknown bucket"):
            wh.series("c", bucket=0)

    def test_prune_drops_old_buckets_and_orphan_runs(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("old", {"counters": {"c": 1},
                                "histograms": {"h": HIST}}, ts=1000)
        wh.record_delta("new", {"counters": {"c": 2}}, ts=90000)
        removed = wh.prune(max_age_s=3600, now=90060)
        assert removed == 2
        assert wh.totals() == {"c": 2.0}
        assert [run["run_id"] for run in wh.runs()] == ["new"]

    def test_compact_rebuckets_preserving_totals(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db", bucket_s=60)
        for i in range(10):
            wh.record_delta("r1", {
                "counters": {"c": 1},
                "gauges": {"g": i},
                "histograms": {"h": HIST},
                "spans": {"s": {"count": 1, "total_ms": 2.0,
                                "max_ms": 2.0}},
            }, ts=1000 + i * 60)
        eliminated = wh.compact(older_than_s=0, coarse_s=3600, now=10000)
        assert eliminated > 0
        assert wh.totals() == {"c": 10.0}
        assert wh.series("g", bucket="hour") == [(0, 9.0)]
        ((_, estimate, count),) = wh.percentile_series("h", bucket="hour")
        assert count == 80
        (row,) = wh.span_summary()
        assert row["count"] == 10 and row["total_ms"] == 20.0

    def test_file_deleted_mid_run_is_recreated(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {"counters": {"c": 1}}, ts=1000)
        wh.path.unlink()
        wh.record_delta("r1", {"counters": {"c": 2}}, ts=1060)
        assert wh.totals() == {"c": 2.0}  # fresh file, no stale handle


class TestEstimatePercentile:
    def test_upper_bound_semantics(self):
        assert estimate_percentile([1, 10, 100], [5, 3, 0, 0], 0.5) == 1.0
        assert estimate_percentile([1, 10, 100], [5, 3, 0, 0], 0.99) == 10.0

    def test_overflow_mass_reports_largest_finite_bound(self):
        assert estimate_percentile([1, 10], [0, 0, 4], 0.99) == 10.0

    def test_empty_histogram(self):
        assert estimate_percentile([1, 10], [0, 0, 0], 0.99) == 0.0
        assert estimate_percentile([], [], 0.99) == 0.0


# ----------------------------------------------------------------------
# snapshot_delta / TelemetryPublisher
# ----------------------------------------------------------------------


class TestSnapshotDelta:
    def test_counters_subtract(self):
        delta = snapshot_delta(
            {"counters": {"a": 5, "b": 2}},
            {"counters": {"a": 3, "b": 2}},
        )
        assert delta["counters"] == {"a": 2}  # unchanged "b" omitted

    def test_gauges_report_current_value(self):
        delta = snapshot_delta({"gauges": {"g": 1}}, {"gauges": {"g": 9}})
        assert delta["gauges"] == {"g": 1}

    def test_histogram_cells_subtract(self):
        current = {"histograms": {"h": {
            "buckets": [1, 10], "counts": [4, 2, 0], "sum": 9.0,
            "count": 6,
        }}}
        previous = {"histograms": {"h": {
            "buckets": [1, 10], "counts": [1, 2, 0], "sum": 4.0,
            "count": 3,
        }}}
        delta = snapshot_delta(current, previous)
        assert delta["histograms"]["h"] == {
            "buckets": [1, 10], "counts": [3, 0, 0], "sum": 5.0,
            "count": 3,
        }

    def test_histogram_with_no_new_observations_is_omitted(self):
        state = {"histograms": {"h": {
            "buckets": [1], "counts": [2, 0], "sum": 1.0, "count": 2,
        }}}
        assert snapshot_delta(state, state)["histograms"] == {}


class TestTelemetryPublisher:
    def test_publish_once_writes_the_delta(self, tmp_path):
        obs = Observer()
        obs.metrics.inc("work.done", 3)
        obs.metrics.observe("latency_ms", 5.0)
        with obs.span("op"):
            pass
        wh = Warehouse(tmp_path / "m.db")
        publisher = TelemetryPublisher(obs, wh, "run-a", host="box")
        assert publisher.publish_once() is True
        assert publisher.flushes == 1
        assert wh.totals("run-a")["work.done"] == 3.0
        assert [r["name"] for r in wh.span_summary()] == ["op"]
        assert wh.percentile_series("latency_ms", bucket="day")

    def test_second_flush_publishes_only_the_delta(self, tmp_path):
        obs = Observer()
        wh = Warehouse(tmp_path / "m.db")
        publisher = TelemetryPublisher(obs, wh, "run-a")
        obs.metrics.inc("c", 2)
        publisher.publish_once()
        obs.metrics.inc("c", 1)
        publisher.publish_once()
        # Totals are exact, not doubled: flushes carry increments.
        assert wh.totals()["c"] == 3.0

    def test_nothing_to_say_is_a_successful_flush(self, tmp_path):
        obs = Observer()
        publisher = TelemetryPublisher(
            obs, Warehouse(tmp_path / "m.db"), "run-a"
        )
        assert publisher.publish_once() is True
        assert publisher.flushes == 0
        assert not publisher.warehouse.path.exists()

    def test_lost_flush_is_counted_and_retried_whole(self, tmp_path):
        obs = Observer()
        obs.metrics.inc("c", 5)
        wh = Warehouse(tmp_path / "m.db")
        publisher = TelemetryPublisher(obs, wh, "run-a")
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="task_error", site="obs.publish",
                      probability=1.0),  # transient: first attempt only
        ))
        with faults_runtime.installed(FaultInjector(plan)):
            assert publisher.publish_once() is False
            assert publisher.lost_flushes == 1
            assert wh.totals() == {}  # nothing partial hit the file
            # Retry succeeds and carries the *whole* original delta.
            assert publisher.publish_once() is True
        # The success bump itself rides in the *next* delta.
        assert publisher.publish_once() is True
        totals = wh.totals()
        assert totals["c"] == 5.0
        assert totals[LOST_FLUSHES] == 1.0
        assert totals[FLUSHES] == 1.0

    def test_stop_flushes_once_more(self, tmp_path):
        obs = Observer()
        wh = Warehouse(tmp_path / "m.db")
        publisher = TelemetryPublisher(obs, wh, "run-a",
                                       interval_s=3600.0)
        publisher.start()
        obs.metrics.inc("c", 4)
        publisher.stop()
        assert wh.totals()["c"] == 4.0


# ----------------------------------------------------------------------
# SLO policies
# ----------------------------------------------------------------------


class TestSlo:
    def test_threshold_validation(self):
        with pytest.raises(SloError, match="op must be"):
            SloThreshold("x", "<", 1)
        with pytest.raises(SloError, match="non-empty"):
            SloThreshold("", "<=", 1)
        with pytest.raises(SloError, match="unknown field"):
            SloThreshold.from_dict({"stat": "x", "limit": 1, "oops": 2})
        with pytest.raises(SloError, match="'stat' and 'limit'"):
            SloThreshold.from_dict({"stat": "x"})

    def test_evaluate_missing_stats_count_as_zero(self):
        policy = SloPolicy("p", (
            SloThreshold("errors", "<=", 0),
            SloThreshold("throughput", ">=", 10),
        ))
        report = policy.evaluate({})
        assert not report.healthy
        (violation,) = report.violations
        assert violation["stat"] == "throughput"
        assert any(line.startswith("[FAIL]") for line in report.lines())

    def test_json_roundtrip(self, tmp_path):
        policy = SloPolicy("mine", (
            SloThreshold("q", "<=", 8, "queue bounded"),
        ))
        path = policy.save(tmp_path / "slo.json")
        assert SloPolicy.load(path) == policy

    def test_load_errors_are_slo_errors(self, tmp_path):
        with pytest.raises(SloError, match="cannot read"):
            SloPolicy.load(tmp_path / "none.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        with pytest.raises(SloError, match="not valid JSON"):
            SloPolicy.load(bad)

    def test_default_ingest_policy_tracks_server_stats(self):
        stats = ingest_stats_for_slo(
            {"records_accepted": 100, "records_flushed": 90,
             "pending_batches": 2, "sessions": 1, "nacks_sent": 0},
            analyzer_errors=0, telemetry_lost=0,
        )
        assert stats["spool_lag_records"] == 10.0
        assert DEFAULT_INGEST_SLO.evaluate(stats).healthy
        assert not DEFAULT_INGEST_SLO.evaluate(
            dict(stats, telemetry_lost_flushes=1)
        ).healthy


# ----------------------------------------------------------------------
# HealthServer
# ----------------------------------------------------------------------


class TestHealthServer:
    @pytest.fixture()
    def live(self):
        state = {"stats": {"pending_batches": 0}}
        server = HealthServer(
            stats_fn=lambda: state["stats"],
            metrics_fn=lambda: "# HELP x\nlagalyzer_x 1\n",
            sessions_fn=lambda: [{"session": "s0"}],
        )
        with server:
            yield server, state

    def test_healthz_flips_with_the_stats(self, live):
        server, state = live
        host, port = server.address
        status, body = http_get(f"http://{host}:{port}/healthz")
        assert status == 200
        report = json.loads(body)
        assert report["healthy"] is True
        assert report["stats"] == {"pending_batches": 0}
        state["stats"] = {"pending_batches": 5000}
        status, body = http_get(f"http://{host}:{port}/healthz")
        assert status == 503
        assert json.loads(body)["healthy"] is False

    def test_metrics_and_sessions_endpoints(self, live):
        server, _ = live
        host, port = server.address
        status, body = http_get(f"http://{host}:{port}/metrics")
        assert status == 200
        assert b"lagalyzer_x 1" in body
        status, body = http_get(f"http://{host}:{port}/sessions")
        assert status == 200
        assert json.loads(body) == [{"session": "s0"}]

    def test_root_lists_endpoints_and_404_elsewhere(self, live):
        server, _ = live
        host, port = server.address
        status, body = http_get(f"http://{host}:{port}/")
        assert status == 200
        assert "/healthz" in json.loads(body)["endpoints"]
        status, _ = http_get(f"http://{host}:{port}/nope")
        assert status == 404

    def test_probe_exception_is_a_500_not_a_crash(self):
        def broken():
            raise RuntimeError("stats backend down")

        server = HealthServer(stats_fn=broken)
        with server:
            host, port = server.address
            status, body = http_get(f"http://{host}:{port}/healthz")
            assert status == 500
            assert "stats backend down" in json.loads(body)["error"]
            # The server survives and keeps answering.
            status, _ = http_get(f"http://{host}:{port}/")
            assert status == 200

    def test_healthz_callable_directly(self):
        server = HealthServer(stats_fn=lambda: {"pending_batches": 1})
        status, report = server.healthz()
        assert status == 200 and report["healthy"] is True


# ----------------------------------------------------------------------
# Chaos: telemetry loss never blocks or corrupts ingest
# ----------------------------------------------------------------------


class TestPublisherChaos:
    def test_publish_faults_never_block_ingest(self, tmp_path):
        obs = Observer()
        plan = FaultPlan(seed=1, rules=(
            FaultRule(kind="task_error", site="obs.publish",
                      probability=1.0, times=None),  # every flush fails
        ))
        lines = [f"r{i}" for i in range(50)]
        with obs_runtime.installed(obs), \
                faults_runtime.installed(FaultInjector(plan)):
            server = IngestServer(
                spool_dir=tmp_path / "spools",
                health_port=0,
                warehouse=tmp_path / "m.db",
                publish_interval_s=0.05,
                run_id="chaos-run",
            )
            server.start()
            try:
                with TraceClient(
                    server.address, session="s0", application="App",
                    batch_records=8,
                ) as client:
                    client.extend(lines)
                # Drive one flush deterministically (the interval timer
                # may not have fired yet on a fast run).
                assert server.publisher.publish_once() is False
                host, port = server.health.address
                status, body = http_get(f"http://{host}:{port}/healthz")
                lost = server.publisher.lost_flushes
            finally:
                server.stop()
            stats = server.stats()
        # Ingest is whole: every record accepted and spooled.
        assert stats["records_flushed"] == len(lines)
        assert lost >= 1
        # Telemetry loss is *visible* — the SLO flags it on /healthz...
        assert status == 503
        report = json.loads(body)
        assert any(r["stat"] == "telemetry_lost_flushes"
                   for r in report["results"] if not r["ok"])
        # ...and nothing partial ever reached the warehouse.
        assert Warehouse(tmp_path / "m.db").totals("chaos-run") == {}

    def test_warehouse_deletion_mid_run_degrades_gracefully(
        self, tmp_path
    ):
        obs = Observer()
        wh_path = tmp_path / "m.db"
        with obs_runtime.installed(obs):
            server = IngestServer(
                spool_dir=tmp_path / "spools",
                warehouse=wh_path,
                publish_interval_s=3600.0,  # flushes driven by hand
                run_id="del-run",
            )
            server.start()
            try:
                with TraceClient(
                    server.address, session="s0", application="App"
                ) as client:
                    client.extend([f"r{i}" for i in range(10)])
                assert server.publisher.publish_once() is True
                wh_path.unlink()
                obs.metrics.inc("after.deletion", 1)
                # The short-lived-connection design recreates the file.
                assert server.publisher.publish_once() is True
            finally:
                server.stop()
        totals = Warehouse(wh_path).totals("del-run")
        assert totals.get("after.deletion") == 1.0
        assert server.stats()["records_flushed"] == 10


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------


class TestWarehouseCli:
    @pytest.fixture()
    def warehouse_path(self, tmp_path):
        wh = Warehouse(tmp_path / "m.db")
        wh.record_delta("r1", {
            "counters": {"c": 3},
            "histograms": {"flush_ms": HIST},
            "spans": {"s": {"count": 1, "total_ms": 1.0, "max_ms": 1.0}},
        }, ts=86400)
        return wh.path

    def test_query_missing_warehouse_is_exit_2(self, tmp_path, capsys):
        assert main(["obs", "query", str(tmp_path / "none.db")]) == 2
        err = capsys.readouterr().err
        assert "no metrics warehouse" in err
        assert "--warehouse" in err

    def test_query_runs_overview(self, warehouse_path, capsys):
        assert main(["obs", "query", str(warehouse_path)]) == 0
        out = capsys.readouterr().out
        assert '"run_id": "r1"' in out
        assert "1 run(s)" in out

    def test_query_series_and_names(self, warehouse_path, capsys):
        assert main(["obs", "query", str(warehouse_path),
                     "--series", "c", "--bucket", "day"]) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row == {"bucket_ts": 86400, "name": "c", "value": 3.0}
        assert main(["obs", "query", str(warehouse_path), "--names"]) == 0
        assert "flush_ms" in capsys.readouterr().out

    def test_query_percentile(self, warehouse_path, capsys):
        assert main(["obs", "query", str(warehouse_path),
                     "--percentile", "flush_ms", "--bucket", "day",
                     "--q", "0.99"]) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["estimate_ms"] == 10.0
        assert row["count"] == 8

    def test_query_unknown_name_is_exit_2_with_hint(
        self, warehouse_path, capsys
    ):
        assert main(["obs", "query", str(warehouse_path),
                     "--series", "nope"]) == 2
        assert "--names" in capsys.readouterr().err

    def test_slo_check_stats_file(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        stats.write_text(json.dumps({"pending_batches": 1}),
                         encoding="utf-8")
        assert main(["obs", "slo", "check", "--stats", str(stats)]) == 0
        assert "healthy" in capsys.readouterr().out
        stats.write_text(json.dumps({"analyzer_errors": 2}),
                         encoding="utf-8")
        assert main(["obs", "slo", "check", "--stats", str(stats)]) == 1
        assert "UNHEALTHY" in capsys.readouterr().out

    def test_slo_check_missing_inputs_are_exit_2(self, tmp_path, capsys):
        assert main(["obs", "slo", "check",
                     "--stats", str(tmp_path / "none.json")]) == 2
        assert main(["obs", "slo", "check",
                     "--policy", str(tmp_path / "none.json"),
                     "--stats", str(tmp_path / "none.json")]) == 2

    def test_slo_check_unreachable_url_is_exit_2(self, capsys):
        assert main(["obs", "slo", "check",
                     "--url", "http://127.0.0.1:9",
                     "--timeout", "0.2"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_top_against_a_live_daemon(self, tmp_path, capsys):
        server = IngestServer(
            spool_dir=tmp_path / "spools", health_port=0
        )
        server.start()
        try:
            with TraceClient(
                server.address, session="s0", application="App"
            ) as client:
                client.extend(["r0", "r1"])
            host, port = server.health.address
            code = main(["obs", "top", "--once",
                         "--url", f"http://{host}:{port}"])
        finally:
            server.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "[healthy]" in out
        assert "s0" in out

    def test_top_unreachable_is_exit_2(self, capsys):
        assert main(["obs", "top", "--once",
                     "--url", "http://127.0.0.1:9",
                     "--timeout", "0.2"]) == 2
