"""Unit tests for Table III session statistics."""

import pytest

from repro.core.statistics import (
    SessionStats,
    average_stats,
    mean_row,
    session_stats,
)

from helpers import dispatch, listener_iv, make_trace


def _trace():
    # 3 episodes: 50ms, 150ms (perceptible), 20ms; one structureless;
    # 1000 filtered micro-episodes; 60 s session.
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)]),
        dispatch(100.0, 250.0, [listener_iv("b.B.m", 100.0, 249.0)]),
        dispatch(300.0, 320.0, [listener_iv("a.A.m", 300.0, 319.0)]),
        dispatch(400.0, 430.0),
    ]
    return make_trace(roots, e2e_ms=60_000.0, short_count=1000)


class TestSessionStats:
    def test_counts(self):
        stats = session_stats(_trace())
        assert stats.traced == 4
        assert stats.perceptible == 1
        assert stats.below_filter == 1000

    def test_e2e_and_in_episode(self):
        stats = session_stats(_trace())
        assert stats.e2e_s == pytest.approx(60.0)
        # 50 + 150 + 20 + 30 ms of 60 s.
        assert stats.in_episode_pct == pytest.approx(0.25 / 60 * 100)

    def test_long_per_min(self):
        stats = session_stats(_trace())
        in_episode_minutes = 0.25 / 60
        assert stats.long_per_min == pytest.approx(1 / in_episode_minutes)

    def test_pattern_block(self):
        stats = session_stats(_trace())
        assert stats.distinct_patterns == 2
        assert stats.covered_episodes == 3
        assert stats.singleton_pct == pytest.approx(50.0)

    def test_custom_threshold(self):
        stats = session_stats(_trace(), threshold_ms=30.0)
        assert stats.perceptible == 3

    def test_as_dict_excludes_application(self):
        stats = session_stats(_trace())
        data = stats.as_dict()
        assert "application" not in data
        assert data["traced"] == 4


class TestAveraging:
    def test_average_stats(self):
        rows = [session_stats(_trace()), session_stats(_trace())]
        mean = average_stats(rows, "TestApp")
        assert mean.application == "TestApp"
        assert mean.traced == pytest.approx(4.0)

    def test_average_differs(self):
        a = session_stats(_trace())
        b = SessionStats(
            application="TestApp",
            **{**a.as_dict(), "traced": 8.0},
        )
        mean = average_stats([a, b], "TestApp")
        assert mean.traced == pytest.approx(6.0)

    def test_average_empty_raises(self):
        with pytest.raises(ValueError):
            average_stats([], "X")

    def test_mean_row_label(self):
        assert mean_row([session_stats(_trace())]).application == "Mean"
