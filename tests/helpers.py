"""Shared builders for tests: tiny hand-made traces and episodes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind, NS_PER_MS
from repro.core.samples import (
    Sample,
    StackFrame,
    StackTrace,
    ThreadSample,
    ThreadState,
)
from repro.core.trace import Trace, TraceMetadata

GUI = "AWT-EventQueue-0"

APP_FRAME = StackFrame("com.example.app.Editor", "update")
LIB_FRAME = StackFrame("javax.swing.JComponent", "paint")
NATIVE_FRAME = StackFrame("sun.java2d.loops.DrawLine", "DrawLine", is_native=True)


def ms(value: float) -> int:
    """Milliseconds to nanoseconds."""
    return round(value * NS_PER_MS)


def interval(
    kind: IntervalKind,
    symbol: str,
    start_ms: float,
    end_ms: float,
    children: Optional[List[Interval]] = None,
) -> Interval:
    return Interval(kind, symbol, ms(start_ms), ms(end_ms), children=children)


def dispatch(
    start_ms: float, end_ms: float, children: Optional[List[Interval]] = None
) -> Interval:
    return interval(
        IntervalKind.DISPATCH, "EventQueue.dispatchEvent",
        start_ms, end_ms, children,
    )


def listener_iv(
    symbol: str, start_ms: float, end_ms: float,
    children: Optional[List[Interval]] = None,
) -> Interval:
    return interval(IntervalKind.LISTENER, symbol, start_ms, end_ms, children)


def paint_iv(
    symbol: str, start_ms: float, end_ms: float,
    children: Optional[List[Interval]] = None,
) -> Interval:
    return interval(IntervalKind.PAINT, symbol, start_ms, end_ms, children)


def gc_iv(start_ms: float, end_ms: float, symbol: str = "GC.minor") -> Interval:
    return interval(IntervalKind.GC, symbol, start_ms, end_ms)


def episode(
    root: Interval, index: int = 0, samples: Sequence[Sample] = ()
) -> Episode:
    return Episode(root, index=index, gui_thread=GUI, samples=samples)


def gui_sample(
    at_ms: float,
    state: ThreadState = ThreadState.RUNNABLE,
    frames: Sequence[StackFrame] = (APP_FRAME,),
    extra_threads: Sequence[Tuple[str, ThreadState]] = (),
) -> Sample:
    """A sampling tick with the GUI thread plus optional extras."""
    entries = [ThreadSample(GUI, state, StackTrace(frames))]
    for name, thread_state in extra_threads:
        entries.append(ThreadSample(name, thread_state, StackTrace(())))
    return Sample(ms(at_ms), entries)


def make_trace(
    roots: Sequence[Interval],
    samples: Sequence[Sample] = (),
    e2e_ms: float = 10_000.0,
    short_count: int = 0,
    application: str = "TestApp",
    extra_threads: Optional[Dict[str, List[Interval]]] = None,
) -> Trace:
    metadata = TraceMetadata(
        application=application,
        session_id="s0",
        start_ns=0,
        end_ns=ms(e2e_ms),
        gui_thread=GUI,
    )
    thread_roots: Dict[str, List[Interval]] = {GUI: list(roots)}
    if extra_threads:
        thread_roots.update(extra_threads)
    return Trace(
        metadata, thread_roots, samples=samples, short_episode_count=short_count
    )


def simple_episode(
    lag_ms: float = 50.0,
    symbol: str = "com.example.ClickListener.actionPerformed",
    start_ms: float = 0.0,
    index: int = 0,
) -> Episode:
    """An episode with one listener child spanning most of the dispatch."""
    root = dispatch(
        start_ms,
        start_ms + lag_ms,
        [listener_iv(symbol, start_ms, start_ms + lag_ms)],
    )
    return episode(root, index=index)
