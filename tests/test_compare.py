"""Tests for cross-run pattern comparison."""

import pytest

from repro.core.compare import Verdict, compare_tables
from repro.core.patterns import PatternTable

from helpers import simple_episode


def _table(spec):
    """Build a table from {symbol: [lags...]}."""
    episodes = []
    index = 0
    for symbol, lags in spec.items():
        for lag in lags:
            episodes.append(
                simple_episode(lag_ms=lag, symbol=symbol, index=index)
            )
            index += 1
    return PatternTable.from_episodes(episodes)


class TestCompareTables:
    def test_new_and_gone(self):
        before = _table({"a.A.m": [10, 12]})
        after = _table({"b.B.m": [10, 12]})
        report = compare_tables(before, after)
        assert len(report.by_verdict(Verdict.NEW)) == 1
        assert len(report.by_verdict(Verdict.GONE)) == 1

    def test_unchanged(self):
        before = _table({"a.A.m": [10, 12]})
        after = _table({"a.A.m": [11, 12]})
        report = compare_tables(before, after)
        assert len(report.by_verdict(Verdict.UNCHANGED)) == 1

    def test_regression_by_factor(self):
        before = _table({"a.A.m": [10, 10, 10]})
        after = _table({"a.A.m": [30, 30, 30]})
        report = compare_tables(before, after)
        (delta,) = report.regressions
        assert delta.avg_lag_change_ms == pytest.approx(20.0)

    def test_regression_by_threshold_crossing(self):
        before = _table({"a.A.m": [80, 80]})
        after = _table({"a.A.m": [110, 110]})
        report = compare_tables(before, after)
        assert report.by_verdict(Verdict.REGRESSED)

    def test_improvement(self):
        before = _table({"a.A.m": [200, 200]})
        after = _table({"a.A.m": [50, 50]})
        report = compare_tables(before, after)
        assert report.by_verdict(Verdict.IMPROVED)

    def test_singletons_never_flagged(self):
        before = _table({"a.A.m": [10]})
        after = _table({"a.A.m": [500]})
        report = compare_tables(before, after)
        assert report.by_verdict(Verdict.UNCHANGED)
        assert not report.regressions

    def test_regressions_sorted_worst_first(self):
        before = _table({"a.A.m": [10, 10], "b.B.m": [10, 10]})
        after = _table({"a.A.m": [200, 200], "b.B.m": [50, 50]})
        regressions = compare_tables(before, after).regressions
        assert len(regressions) == 2
        assert regressions[0].avg_lag_change_ms >= (
            regressions[1].avg_lag_change_ms
        )

    def test_summary_counts(self):
        before = _table({"a.A.m": [10, 10], "gone.G.m": [5, 5]})
        after = _table({"a.A.m": [10, 10], "new.N.m": [5, 5]})
        summary = compare_tables(before, after).summary()
        assert "1 new" in summary
        assert "1 gone" in summary

    def test_describe_lines(self):
        before = _table({"a.A.m": [10, 10]})
        after = _table({"a.A.m": [200, 200], "new.N.m": [5, 5]})
        report = compare_tables(before, after)
        texts = [d.describe() for d in report.deltas]
        assert any("NEW" in t for t in texts)
        assert any("REGRESSED" in t for t in texts)
