"""Unit tests for the JVMTI-like sampler."""

import pytest

from repro.core.intervals import NS_PER_MS
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.vm.rng import RngStream
from repro.vm.sampler import Sampler
from repro.vm.threads import ThreadTimeline


def t(ms_value):
    return round(ms_value * NS_PER_MS)


def make_timeline(name="gui"):
    timeline = ThreadTimeline(name)
    timeline.record(
        t(0), t(10_000), ThreadState.RUNNABLE,
        StackTrace([StackFrame("a.B", "m")]),
    )
    return timeline


class TestSampler:
    def test_samples_within_spans_only(self):
        sampler = Sampler(t(10), RngStream(3), jitter_fraction=0.0)
        samples = sampler.run([(t(100), t(200))], [make_timeline()])
        assert samples
        assert all(t(100) <= s.timestamp_ns < t(200) for s in samples)

    def test_sample_count_close_to_period(self):
        sampler = Sampler(t(10), RngStream(3), jitter_fraction=0.0)
        samples = sampler.run([(t(0), t(1000))], [make_timeline()])
        assert 90 <= len(samples) <= 101

    def test_all_threads_sampled(self):
        sampler = Sampler(t(10), RngStream(3))
        timelines = [make_timeline("gui"), make_timeline("worker")]
        samples = sampler.run([(t(0), t(100))], timelines)
        for sample in samples:
            assert {entry.thread_name for entry in sample.threads} == {
                "gui", "worker",
            }

    def test_blackout_skips_samples(self):
        sampler = Sampler(t(10), RngStream(3), jitter_fraction=0.0)
        blackout = (t(400), t(600))
        samples = sampler.run(
            [(t(0), t(1000))], [make_timeline()], blackouts=[blackout]
        )
        assert samples
        assert not any(
            blackout[0] <= s.timestamp_ns < blackout[1] for s in samples
        )

    def test_multiple_blackouts(self):
        sampler = Sampler(t(10), RngStream(3), jitter_fraction=0.0)
        blackouts = [(t(100), t(200)), (t(500), t(700))]
        samples = sampler.run(
            [(t(0), t(1000))], [make_timeline()], blackouts=blackouts
        )
        for start, end in blackouts:
            assert not any(start <= s.timestamp_ns < end for s in samples)

    def test_timeline_state_captured(self):
        timeline = ThreadTimeline("gui")
        timeline.record(t(0), t(50), ThreadState.BLOCKED, StackTrace(()))
        sampler = Sampler(t(10), RngStream(3), jitter_fraction=0.0)
        samples = sampler.run([(t(0), t(50))], [timeline])
        assert all(
            s.thread("gui").state is ThreadState.BLOCKED for s in samples
        )

    def test_deterministic_given_seed(self):
        def run():
            sampler = Sampler(t(10), RngStream(3))
            return [
                s.timestamp_ns
                for s in sampler.run([(t(0), t(500))], [make_timeline()])
            ]

        assert run() == run()

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Sampler(0, RngStream(1))

    def test_empty_spans(self):
        sampler = Sampler(t(10), RngStream(3))
        assert sampler.run([], [make_timeline()]) == []
