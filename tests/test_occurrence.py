"""Unit tests for the always/sometimes/once/never classification."""

import pytest

from repro.core.occurrence import (
    Occurrence,
    OccurrenceSummary,
    classify_pattern,
    patterns_by_occurrence,
    summarize,
)
from repro.core.patterns import Pattern, PatternTable, pattern_key

from helpers import simple_episode


def _pattern(lags):
    eps = [simple_episode(lag_ms=lag, index=i) for i, lag in enumerate(lags)]
    return Pattern(pattern_key(eps[0]), eps)


class TestClassifyPattern:
    def test_always(self):
        assert classify_pattern(_pattern([150.0, 200.0])) is Occurrence.ALWAYS

    def test_never(self):
        assert classify_pattern(_pattern([10.0, 20.0])) is Occurrence.NEVER

    def test_once(self):
        assert classify_pattern(
            _pattern([150.0, 20.0, 30.0])
        ) is Occurrence.ONCE

    def test_sometimes(self):
        assert classify_pattern(
            _pattern([150.0, 160.0, 30.0])
        ) is Occurrence.SOMETIMES

    def test_singleton_perceptible_is_always(self):
        # The paper's explicit rule for singletons.
        assert classify_pattern(_pattern([150.0])) is Occurrence.ALWAYS

    def test_singleton_fast_is_never(self):
        assert classify_pattern(_pattern([15.0])) is Occurrence.NEVER

    def test_custom_threshold(self):
        pattern = _pattern([120.0, 130.0])
        assert classify_pattern(pattern, threshold_ms=150.0) is Occurrence.NEVER


class TestSummaries:
    def _table(self):
        episodes = []
        index = 0
        # always: 2 episodes both slow
        for lag in (150.0, 160.0):
            episodes.append(simple_episode(lag, symbol="a.A.m", index=index))
            index += 1
        # never: 3 fast
        for lag in (10.0, 11.0, 12.0):
            episodes.append(simple_episode(lag, symbol="b.B.m", index=index))
            index += 1
        # once
        for lag in (150.0, 10.0):
            episodes.append(simple_episode(lag, symbol="c.C.m", index=index))
            index += 1
        # sometimes
        for lag in (150.0, 160.0, 10.0):
            episodes.append(simple_episode(lag, symbol="d.D.m", index=index))
            index += 1
        return PatternTable.from_episodes(episodes)

    def test_summarize_counts(self):
        summary = summarize(self._table())
        assert summary.counts[Occurrence.ALWAYS] == 1
        assert summary.counts[Occurrence.NEVER] == 1
        assert summary.counts[Occurrence.ONCE] == 1
        assert summary.counts[Occurrence.SOMETIMES] == 1
        assert summary.total == 4

    def test_fractions(self):
        summary = summarize(self._table())
        assert summary.fraction(Occurrence.ALWAYS) == pytest.approx(0.25)
        assert summary.consistent_fraction == pytest.approx(0.5)
        assert summary.ever_perceptible_fraction == pytest.approx(0.75)

    def test_percentages_sum_to_100(self):
        summary = summarize(self._table())
        assert sum(summary.percentages().values()) == pytest.approx(100.0)

    def test_empty_summary(self):
        summary = OccurrenceSummary({})
        assert summary.total == 0
        assert summary.fraction(Occurrence.ALWAYS) == 0.0
        assert summary.consistent_fraction == 0.0
        assert summary.ever_perceptible_fraction == 0.0

    def test_patterns_by_occurrence(self):
        table = self._table()
        always = patterns_by_occurrence(table, Occurrence.ALWAYS)
        assert len(always) == 1
        assert always[0].count == 2
