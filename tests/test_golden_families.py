"""Golden-corpus regression gate for the non-gui workload families.

``tests/golden/`` holds seeded ``io_service`` (OrderApi) and
``async_pipeline`` (IndexBuilder) session traces next to the gui
CrosswordSage corpus. This module pins both the corpus provenance (the
checked-in files are exactly what the simulators write for the recorded
seed/scale) and the full analysis summary — including the per-family
cause ranking — against ``expected_families.json``. Because the parity
suite globs ``tests/golden/*.lila``, these traces also ride every
text/binary/``.lilac``/sharding/numpy parity leg automatically.

To accept intentional drift, regenerate the expectation:

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_families.py

and commit the updated ``expected_families.json`` with the change that
caused it.
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.apps.async_pipeline import simulate_pipeline_session
from repro.apps.io_service import simulate_service_session
from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.export import analysis_to_dict
from repro.core.family import family_of
from repro.lila.reader import read_trace
from repro.lila.writer import trace_to_lines

GOLDEN_DIR = Path(__file__).parent / "golden"
EXPECTED_PATH = GOLDEN_DIR / "expected_families.json"

#: Provenance of the corpora: these exact coordinates wrote the files.
SEED = 20100401
SCALE = 0.05
SESSIONS = 2

FAMILIES = {
    "io_service": ("OrderApi", simulate_service_session),
    "async_pipeline": ("IndexBuilder", simulate_pipeline_session),
}


def _trace_paths(application: str) -> list:
    return [
        GOLDEN_DIR / f"{application}-session-{index}.lila"
        for index in range(SESSIONS)
    ]


def _summary(application: str) -> dict:
    analyzer = LagAlyzer.load(
        _trace_paths(application),
        config=AnalysisConfig(perceptible_threshold_ms=100.0),
    )
    payload = analysis_to_dict(analyzer)
    payload["causes"] = [
        {"label": label, "total_ns": total_ns, "episodes": episodes}
        for label, total_ns, episodes in analyzer.cause_summary().entries
    ]
    return payload


def _canonical(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


@pytest.fixture(params=sorted(FAMILIES), ids=str)
def family(request):
    return request.param


def test_corpus_files_are_present(family):
    application = FAMILIES[family][0]
    missing = [
        path.name for path in _trace_paths(application) if not path.is_file()
    ]
    assert not missing, f"{family} corpus incomplete: missing {missing}"


def test_corpus_provenance_is_reproducible(family):
    """The checked-in traces are exactly what the simulators write.

    Guards the corpus itself: a simulator change fails here first,
    telling you the *inputs* moved (regenerate the corpus), as opposed
    to the summary test failing because the *analysis* moved.
    """
    application, simulate = FAMILIES[family]
    for index, path in enumerate(_trace_paths(application)):
        trace = simulate(
            application, session_index=index, seed=SEED, scale=SCALE
        )
        expected = "\n".join(trace_to_lines(trace)) + "\n"
        assert path.read_text(encoding="utf-8") == expected, (
            f"{path.name} no longer matches the simulator output for "
            f"seed={SEED} scale={SCALE}; the trace generator changed"
        )


def test_corpus_announces_its_family(family):
    """Every trace carries its family in metadata (never for gui)."""
    application = FAMILIES[family][0]
    for path in _trace_paths(application):
        trace = read_trace(path)
        assert trace.metadata.extra.get("family") == family
        assert family_of(trace.metadata).name == family


def test_analysis_matches_golden_summary():
    actual = _canonical(
        {family: _summary(spec[0]) for family, spec in FAMILIES.items()}
    )
    if os.environ.get("GOLDEN_REGEN"):
        EXPECTED_PATH.write_text(actual, encoding="utf-8")
        return
    assert EXPECTED_PATH.is_file(), "expected_families.json is missing"
    expected = EXPECTED_PATH.read_text(encoding="utf-8")
    if actual == expected:
        return
    diff = "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile="expected_families.json (checked in)",
            tofile="actual (this tree)",
            n=3,
        )
    )
    raise AssertionError(
        "family analysis results drifted from the golden baseline; if "
        "the change is intentional, regenerate with GOLDEN_REGEN=1 and "
        "commit the diff:\n" + diff
    )
