"""Unit tests for the trigger classification (Section IV-C)."""

import pytest

from repro.core.intervals import IntervalKind
from repro.core.triggers import (
    Trigger,
    TriggerSummary,
    classify_episode,
    episodes_by_trigger,
    summarize,
)

from helpers import (
    dispatch,
    episode,
    gc_iv,
    interval,
    listener_iv,
    paint_iv,
    simple_episode,
)


def _async_iv(symbol, start, end, children=None):
    return interval(IntervalKind.ASYNC, symbol, start, end, children)


class TestClassifyEpisode:
    def test_listener_means_input(self):
        assert classify_episode(simple_episode()) is Trigger.INPUT

    def test_paint_means_output(self):
        ep = episode(dispatch(0.0, 10.0, [paint_iv("p", 0.0, 9.0)]))
        assert classify_episode(ep) is Trigger.OUTPUT

    def test_plain_async(self):
        ep = episode(dispatch(0.0, 10.0, [_async_iv("a", 0.0, 9.0)]))
        assert classify_episode(ep) is Trigger.ASYNC

    def test_first_interval_decides(self):
        # Pre-order traversal: the paint comes first even though a
        # listener also appears later.
        ep = episode(dispatch(0.0, 20.0, [
            paint_iv("p", 0.0, 9.0),
            listener_iv("l", 10.0, 19.0),
        ]))
        assert classify_episode(ep) is Trigger.OUTPUT

    def test_no_trigger_children_is_unspecified(self):
        assert classify_episode(episode(dispatch(0.0, 10.0))) is (
            Trigger.UNSPECIFIED
        )

    def test_gc_only_is_unspecified(self):
        # Arabeske's System.gc() episodes.
        ep = episode(dispatch(0.0, 500.0, [gc_iv(10.0, 450.0)]))
        assert classify_episode(ep) is Trigger.UNSPECIFIED

    def test_native_only_is_unspecified(self):
        ep = episode(dispatch(0.0, 10.0, [
            interval(IntervalKind.NATIVE, "n", 0.0, 9.0)]))
        assert classify_episode(ep) is Trigger.UNSPECIFIED

    def test_repaint_manager_reclassification(self):
        # Footnote 3: an async interval containing a paint interval is
        # the Swing repaint manager, not true background activity.
        ep = episode(dispatch(0.0, 50.0, [
            _async_iv("RepaintManager.paintDirtyRegions", 0.0, 49.0,
                      [paint_iv("JFrame.paint", 1.0, 48.0)])]))
        assert classify_episode(ep) is Trigger.OUTPUT

    def test_async_with_deep_paint_reclassified(self):
        inner_paint = paint_iv("deep", 3.0, 4.0)
        wrapper = listener_iv("l", 2.0, 8.0, [inner_paint])
        ep = episode(dispatch(0.0, 50.0, [
            _async_iv("a", 0.0, 49.0, [wrapper])]))
        assert classify_episode(ep) is Trigger.OUTPUT

    def test_async_without_paint_stays_async(self):
        ep = episode(dispatch(0.0, 50.0, [
            _async_iv("a", 0.0, 49.0, [listener_iv("l", 1.0, 2.0)])]))
        assert classify_episode(ep) is Trigger.ASYNC


class TestSummaries:
    def _episodes(self):
        return [
            simple_episode(index=0),
            simple_episode(index=1),
            episode(dispatch(0.0, 10.0, [paint_iv("p", 0.0, 9.0)]), index=2),
            episode(dispatch(0.0, 10.0), index=3),
        ]

    def test_summarize(self):
        summary = summarize(self._episodes())
        assert summary.counts[Trigger.INPUT] == 2
        assert summary.counts[Trigger.OUTPUT] == 1
        assert summary.counts[Trigger.UNSPECIFIED] == 1
        assert summary.total == 4

    def test_percentages(self):
        summary = summarize(self._episodes())
        pct = summary.percentages()
        assert pct[Trigger.INPUT] == pytest.approx(50.0)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_empty(self):
        summary = TriggerSummary({})
        assert summary.total == 0
        assert summary.fraction(Trigger.INPUT) == 0.0

    def test_episodes_by_trigger(self):
        eps = self._episodes()
        assert len(episodes_by_trigger(eps, Trigger.INPUT)) == 2
        assert episodes_by_trigger(eps, Trigger.ASYNC) == []
