"""The columnar store and its lazy :class:`FacadeTrace` veneer.

Checks the contracts that keep the streaming pipeline honest: the
facade materializes the object graph only when an analysis actually
needs it, serialization round-trips losslessly in both directions
(``from_trace``/``to_trace`` and pickle), and the canonical line
rendering — hence the content digest — is identical whichever
representation produced it.
"""

from __future__ import annotations

import pickle

from repro.core.api import AnalysisConfig
from repro.core.analyses import REGISTRY
from repro.core.statistics import session_stats
from repro.core.store import ColumnarTrace, FacadeTrace, as_columnar
from repro.lila.digest import trace_digest
from repro.lila.source import LinesTraceSource, build_store, build_trace
from repro.lila.writer import trace_to_lines

from helpers import (
    dispatch,
    gc_iv,
    gui_sample,
    interval,
    listener_iv,
    make_trace,
    paint_iv,
)
from repro.core.intervals import IntervalKind


def sample_trace():
    """A small trace exercising nesting, GC, extra threads, and samples."""
    roots = [
        dispatch(0, 120, [
            listener_iv("com.example.Click.actionPerformed", 5, 80, [
                paint_iv("javax.swing.JComponent.paint", 10, 60),
            ]),
        ]),
        gc_iv(150, 170),
        dispatch(200, 230, [
            listener_iv("com.example.Key.keyPressed", 205, 225),
        ]),
    ]
    samples = [gui_sample(20.0), gui_sample(50.0), gui_sample(210.0)]
    worker = [interval(IntervalKind.NATIVE, "app.io.Loader.run", 0.0, 400.0)]
    return make_trace(
        roots, samples=samples, short_count=3,
        extra_threads={"worker": worker},
    )


def facade_of(trace) -> FacadeTrace:
    return FacadeTrace(ColumnarTrace.from_trace(trace))


class TestFacadeLaziness:
    def test_columnar_analyses_never_materialize(self):
        facade = facade_of(sample_trace())
        config = AnalysisConfig(perceptible_threshold_ms=100.0)
        for analysis in REGISTRY.values():
            analysis.map_trace(facade, config)
        session_stats(facade, threshold_ms=100.0)
        assert facade.is_materialized is False

    def test_object_access_materializes_once(self):
        facade = facade_of(sample_trace())
        assert facade.is_materialized is False
        episodes = facade.episodes
        assert facade.is_materialized is True
        assert len(episodes) == 2
        assert facade.thread_roots is facade.thread_roots

    def test_facade_exposes_trace_api(self):
        trace = sample_trace()
        facade = facade_of(trace)
        assert facade.metadata.application == trace.metadata.application
        assert facade.short_episode_count == 3
        assert facade.thread_names == trace.thread_names
        assert len(facade.samples) == len(trace.samples)


class TestRoundTrip:
    def test_from_trace_to_trace_preserves_lines(self):
        trace = sample_trace()
        rebuilt = ColumnarTrace.from_trace(trace).to_trace()
        assert trace_to_lines(rebuilt) == trace_to_lines(trace)

    def test_canonical_lines_match_writer(self):
        trace = sample_trace()
        store = ColumnarTrace.from_trace(trace)
        assert store.canonical_lines() == trace_to_lines(trace)

    def test_streamed_store_matches_from_trace(self):
        trace = sample_trace()
        streamed = build_store(LinesTraceSource(trace_to_lines(trace)))
        converted = ColumnarTrace.from_trace(trace)
        assert streamed.canonical_lines() == converted.canonical_lines()
        assert streamed.interval_count == converted.interval_count
        assert streamed.sample_count == converted.sample_count

    def test_digest_identical_across_representations(self):
        trace = sample_trace()
        facade = build_trace(LinesTraceSource(trace_to_lines(trace)))
        assert trace_digest(facade) == trace_digest(trace)
        # Digesting must not force materialization.
        assert facade.is_materialized is False


class TestPickle:
    def test_facade_pickle_round_trip_stays_lazy(self):
        facade = facade_of(sample_trace())
        clone = pickle.loads(pickle.dumps(facade))
        assert isinstance(clone, FacadeTrace)
        assert clone.is_materialized is False
        assert clone.columnar.canonical_lines() == (
            facade.columnar.canonical_lines()
        )

    def test_facade_pickles_columns_not_objects(self):
        facade = facade_of(sample_trace())
        facade.episodes  # materialize
        payload = pickle.dumps(facade)
        clone = pickle.loads(payload)
        # The materialized caches are dropped on the wire; the clone
        # rebuilds them from its columns on demand.
        assert clone.is_materialized is False
        assert len(clone.episodes) == len(facade.episodes)


class TestAsColumnar:
    def test_wraps_plain_traces(self):
        trace = sample_trace()
        wrapped = as_columnar(trace)
        assert isinstance(wrapped, FacadeTrace)
        assert trace_to_lines(wrapped) == trace_to_lines(trace)

    def test_no_op_on_columnar_backed_traces(self):
        facade = facade_of(sample_trace())
        assert as_columnar(facade) is facade
