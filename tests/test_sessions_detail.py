"""Detailed tests of session-script internals."""

import pytest

from repro.apps.catalog import get_spec
from repro.apps.sessions import SessionScript, build_catalog
from repro.core.intervals import NS_PER_S
from repro.core.samples import ThreadState
from repro.vm.jvm import MicroBurst, PostedEvent
from repro.vm.rng import RngStream

SCALE = 0.1
SEED = 4242


def make_script(app, session_index=0):
    spec = get_spec(app)
    catalog = build_catalog(spec, seed=SEED)
    return SessionScript(spec, catalog, session_index, seed=SEED, scale=SCALE)


class TestAnimationWindows:
    def test_windows_inside_session(self):
        script = make_script("JMol")
        spec = script.spec
        animation = spec.animations[0]
        rng = RngStream(1)
        windows = script._animation_windows(animation, rng)
        assert windows
        for start, end in windows:
            assert 0.0 <= start < end <= script.duration_s + 1e-9

    def test_windows_disjoint_and_sorted(self):
        script = make_script("JMol")
        animation = script.spec.animations[0]
        windows = script._animation_windows(animation, RngStream(2))
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2

    def test_total_active_close_to_fraction(self):
        script = make_script("JMol")
        animation = script.spec.animations[0]
        windows = script._animation_windows(animation, RngStream(3))
        active = sum(end - start for start, end in windows)
        target = script.duration_s * animation.active_fraction
        assert active <= target * 1.01
        assert active >= target * 0.5  # clipping can shorten, not double

    def test_post_count_matches_period(self):
        script = make_script("JMol")
        animation = script.spec.animations[0]
        posts = script._animation_events()
        expected = (
            script.duration_s * animation.active_fraction
            / (animation.period_ms / 1000.0)
        )
        assert len(posts) == pytest.approx(expected, rel=0.2)


class TestMicroBursts:
    def test_counts_scale_with_rate(self):
        script = make_script("Laoe")  # the paper's micro-episode monster
        bursts = [e for e in script.events() if isinstance(e, MicroBurst)]
        total = sum(b.count for b in bursts)
        expected = script.spec.micro_per_min * script.duration_s / 60.0
        assert total == pytest.approx(expected, rel=0.1)

    def test_bursts_have_allocation(self):
        script = make_script("Laoe")
        bursts = [e for e in script.events() if isinstance(e, MicroBurst)]
        assert all(b.alloc_bytes > 0 for b in bursts if b.count > 0)


class TestWorkerTimelines:
    def test_duty_cycle_respected(self):
        script = make_script("FindBugs")
        loader = next(
            t for t in script.background_timelines()
            if t.thread_name == "findbugs-analysis"
        )
        spec_worker = script.spec.background_threads[0]
        window_ns = sum(
            min(
                (start + duration) * SCALE, script.duration_s
            ) * NS_PER_S - start * SCALE * NS_PER_S
            for start, duration in spec_worker.windows
        )
        busy_fraction = loader.busy_ns() / window_ns
        assert busy_fraction == pytest.approx(
            spec_worker.duty_cycle, abs=0.25
        )

    def test_worker_runnable_in_window(self):
        script = make_script("FindBugs")
        loader = next(
            t for t in script.background_timelines()
            if t.thread_name == "findbugs-analysis"
        )
        spec_worker = script.spec.background_threads[0]
        start_s = spec_worker.windows[0][0] * SCALE
        mid_ns = round((start_s + 1.0) * NS_PER_S)
        state, stack = loader.at(mid_ns)
        # With duty cycle 0.95 a point early in the window is almost
        # surely runnable; accept waiting as the rare alternative.
        assert state in (ThreadState.RUNNABLE, ThreadState.WAITING)
        if state is ThreadState.RUNNABLE:
            assert "ProjectLoader" in stack.leaf.class_name

    def test_misc_worker_present(self):
        script = make_script("SwingSet")
        names = {t.thread_name for t in script.background_timelines()}
        assert any("misc-worker" in name for name in names)


class TestExplicitGcEvents:
    def test_rate_matches_spec(self):
        script = make_script("Arabeske")
        from repro.vm.behavior import ExplicitGc

        posted = [e for e in script.events() if isinstance(e, PostedEvent)]
        gc_events = [
            e for e in posted
            if any(isinstance(s, ExplicitGc) for s in e.behavior.steps)
        ]
        expected = (
            script.spec.explicit_gc_per_min * script.duration_s / 60.0
        )
        assert len(gc_events) == pytest.approx(expected, rel=0.6)

    def test_absent_without_spec(self):
        script = make_script("JEdit")
        from repro.vm.behavior import ExplicitGc

        posted = [e for e in script.events() if isinstance(e, PostedEvent)]
        assert not any(
            isinstance(s, ExplicitGc)
            for e in posted
            for s in e.behavior.steps
        )
