"""Fuzzing the text reader: corruption must fail loudly and typed.

Whatever a single-line corruption does to a trace file, the reader must
either still produce a valid trace (the corruption hit a comment, or
produced an equivalent record) or raise ``LagAlyzerError`` — never an
untyped exception like ``ValueError`` escaping from parsing internals,
and never a silently half-parsed trace.

The seeded mutation fuzzer at the bottom is stricter: for damage that
is *guaranteed* malformed (a record cut down to its tag, swapped
fields, an unknown record type, a bad version line) the reader must
raise :class:`TraceFormatError` specifically — and, for record-level
damage, name the damaged line.
"""

import random
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import LagAlyzerError, TraceFormatError
from repro.lila.reader import read_trace_lines
from repro.lila.writer import trace_to_lines

from helpers import dispatch, gc_iv, gui_sample, listener_iv, make_trace


def _baseline_lines():
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0,
                                         [gc_iv(10.0, 20.0)])]),
        dispatch(100.0, 130.0),
    ]
    samples = [gui_sample(5.0), gui_sample(15.0)]
    trace = make_trace(roots, samples=samples, e2e_ms=200.0, short_count=3)
    return trace_to_lines(trace)


_LINES = _baseline_lines()


@given(
    line_index=st.integers(min_value=0, max_value=len(_LINES) - 1),
    position=st.integers(min_value=0, max_value=200),
    replacement=st.text(
        alphabet="OCGPTMFt0123456789 abcxyz.#-!;", min_size=0, max_size=8
    ),
)
@settings(max_examples=300, deadline=None)
def test_single_line_corruption_is_typed(line_index, position, replacement):
    lines = list(_LINES)
    original = lines[line_index]
    cut = min(position, len(original))
    lines[line_index] = original[:cut] + replacement + original[cut:]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return  # loud, typed failure: exactly what we want
    # If it parsed, it must be a structurally valid trace.
    trace.validate()


@given(drop_index=st.integers(min_value=1, max_value=len(_LINES) - 1))
@settings(max_examples=100, deadline=None)
def test_dropped_line_is_typed(drop_index):
    lines = list(_LINES)
    del lines[drop_index]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return
    trace.validate()


@given(
    a=st.integers(min_value=1, max_value=len(_LINES) - 1),
    b=st.integers(min_value=1, max_value=len(_LINES) - 1),
)
@settings(max_examples=100, deadline=None)
def test_swapped_lines_are_typed(a, b):
    lines = list(_LINES)
    lines[a], lines[b] = lines[b], lines[a]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return
    trace.validate()


# ----------------------------------------------------------------------
# Seeded record-level mutation fuzzer: guaranteed damage, typed error,
# line number named.
# ----------------------------------------------------------------------

#: Line indices (0-based) of actual records: not the header, not blank,
#: not comments. Truncating any of these to its record tag, swapping
#: its fields, or changing its tag cannot parse.
_RECORD_INDICES = [
    index
    for index, line in enumerate(_LINES)
    if index > 0 and line.strip() and not line.startswith("#")
]


def _truncate_record(lines, rng):
    """Cut one record down to its bare tag (mid-record file damage)."""
    index = rng.choice(_RECORD_INDICES)
    lines[index] = lines[index][:1]
    return index


def _swap_fields(lines, rng):
    """Swap the first two fields of a timestamped record."""
    candidates = [
        index
        for index in _RECORD_INDICES
        if lines[index][0] in "Ot" and len(lines[index].split(" ")) >= 3
    ]
    index = rng.choice(candidates)
    tag, first, second, *rest = lines[index].split(" ")
    lines[index] = " ".join([tag, second, first, *rest])
    return index


def _unknown_record(lines, rng):
    """Change one record's tag to a type the format does not define."""
    index = rng.choice(_RECORD_INDICES)
    lines[index] = "Z" + lines[index][1:]
    return index


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize(
    "mutate", [_truncate_record, _swap_fields, _unknown_record]
)
def test_record_mutation_raises_typed_error_with_line_number(mutate, seed):
    lines = list(_LINES)
    index = mutate(lines, random.Random(f"{mutate.__name__}/{seed}"))
    with pytest.raises(TraceFormatError) as excinfo:
        read_trace_lines(lines)
    message = str(excinfo.value)
    match = re.search(r"line (\d+)", message)
    assert match, f"error does not name a line: {message!r}"
    # Line numbers are 1-based with the version header as line 1.
    assert int(match.group(1)) == index + 1, message


@pytest.mark.parametrize(
    "header",
    ["", "LILA 999", "LILA", "NOTLILA 1", "LILA one", "\x00\x01\x02"],
)
def test_bad_version_line_raises_typed_error(header):
    lines = [header, *list(_LINES)[1:]]
    with pytest.raises(TraceFormatError):
        read_trace_lines(lines)


def test_empty_input_raises_typed_error():
    with pytest.raises(TraceFormatError, match="empty"):
        read_trace_lines([])
