"""Fuzzing the text reader: corruption must fail loudly and typed.

Whatever a single-line corruption does to a trace file, the reader must
either still produce a valid trace (the corruption hit a comment, or
produced an equivalent record) or raise ``LagAlyzerError`` — never an
untyped exception like ``ValueError`` escaping from parsing internals,
and never a silently half-parsed trace.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import LagAlyzerError
from repro.lila.reader import read_trace_lines
from repro.lila.writer import trace_to_lines

from helpers import dispatch, gc_iv, gui_sample, listener_iv, make_trace


def _baseline_lines():
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0,
                                         [gc_iv(10.0, 20.0)])]),
        dispatch(100.0, 130.0),
    ]
    samples = [gui_sample(5.0), gui_sample(15.0)]
    trace = make_trace(roots, samples=samples, e2e_ms=200.0, short_count=3)
    return trace_to_lines(trace)


_LINES = _baseline_lines()


@given(
    line_index=st.integers(min_value=0, max_value=len(_LINES) - 1),
    position=st.integers(min_value=0, max_value=200),
    replacement=st.text(
        alphabet="OCGPTMFt0123456789 abcxyz.#-!;", min_size=0, max_size=8
    ),
)
@settings(max_examples=300, deadline=None)
def test_single_line_corruption_is_typed(line_index, position, replacement):
    lines = list(_LINES)
    original = lines[line_index]
    cut = min(position, len(original))
    lines[line_index] = original[:cut] + replacement + original[cut:]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return  # loud, typed failure: exactly what we want
    # If it parsed, it must be a structurally valid trace.
    trace.validate()


@given(drop_index=st.integers(min_value=1, max_value=len(_LINES) - 1))
@settings(max_examples=100, deadline=None)
def test_dropped_line_is_typed(drop_index):
    lines = list(_LINES)
    del lines[drop_index]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return
    trace.validate()


@given(
    a=st.integers(min_value=1, max_value=len(_LINES) - 1),
    b=st.integers(min_value=1, max_value=len(_LINES) - 1),
)
@settings(max_examples=100, deadline=None)
def test_swapped_lines_are_typed(a, b):
    lines = list(_LINES)
    lines[a], lines[b] = lines[b], lines[a]
    try:
        trace = read_trace_lines(lines)
    except LagAlyzerError:
        return
    trace.validate()
