"""Unit tests for pattern mining (keys, table, coverage)."""

import pytest

from repro.core.patterns import (
    Pattern,
    PatternTable,
    key_depth,
    key_descendant_count,
    pattern_key,
)

from helpers import (
    dispatch,
    episode,
    gc_iv,
    listener_iv,
    paint_iv,
    simple_episode,
)


class TestPatternKey:
    def test_same_structure_same_key(self):
        a = simple_episode(lag_ms=10.0, start_ms=0.0)
        b = simple_episode(lag_ms=900.0, start_ms=5000.0)
        assert pattern_key(a) == pattern_key(b)

    def test_different_symbol_different_key(self):
        a = simple_episode(symbol="com.x.A.actionPerformed")
        b = simple_episode(symbol="com.x.B.actionPerformed")
        assert pattern_key(a) != pattern_key(b)

    def test_different_kind_different_key(self):
        a = episode(dispatch(0.0, 10.0, [listener_iv("s", 0.0, 10.0)]))
        b = episode(dispatch(0.0, 10.0, [paint_iv("s", 0.0, 10.0)]))
        assert pattern_key(a) != pattern_key(b)

    def test_child_order_matters(self):
        ab = episode(dispatch(0.0, 10.0, [
            listener_iv("a", 0.0, 4.0), listener_iv("b", 5.0, 9.0)]))
        ba = episode(dispatch(0.0, 10.0, [
            listener_iv("b", 0.0, 4.0), listener_iv("a", 5.0, 9.0)]))
        assert pattern_key(ab) != pattern_key(ba)

    def test_nesting_matters(self):
        nested = episode(dispatch(0.0, 10.0, [
            listener_iv("a", 0.0, 9.0, [paint_iv("p", 1.0, 8.0)])]))
        flat = episode(dispatch(0.0, 10.0, [
            listener_iv("a", 0.0, 4.0), paint_iv("p", 5.0, 9.0)]))
        assert pattern_key(nested) != pattern_key(flat)

    def test_gc_blindness(self):
        with_gc = episode(dispatch(0.0, 10.0, [
            listener_iv("a", 0.0, 9.0, [gc_iv(1.0, 2.0)])]))
        without_gc = episode(dispatch(0.0, 10.0, [listener_iv("a", 0.0, 9.0)]))
        assert pattern_key(with_gc) == pattern_key(without_gc)
        assert pattern_key(with_gc, include_gc=True) != pattern_key(without_gc)

    def test_gc_only_episode_has_empty_key(self):
        gc_only = episode(dispatch(0.0, 500.0, [gc_iv(10.0, 400.0)]))
        assert pattern_key(gc_only) == ""
        assert pattern_key(gc_only, include_gc=True) != ""

    def test_key_metrics(self):
        ep = episode(dispatch(0.0, 10.0, [
            listener_iv("a", 0.0, 9.0, [paint_iv("p", 1.0, 8.0)])]))
        key = pattern_key(ep)
        assert key_descendant_count(key) == 2
        assert key_depth(key) == 3

    def test_empty_key_metrics(self):
        assert key_descendant_count("") == 0
        assert key_depth("") == 1


class TestPattern:
    def _pattern(self):
        eps = [
            simple_episode(lag_ms=10.0, index=0),
            simple_episode(lag_ms=120.0, index=1),
            simple_episode(lag_ms=50.0, index=2),
        ]
        return Pattern(pattern_key(eps[0]), eps)

    def test_lag_statistics(self):
        pattern = self._pattern()
        assert pattern.count == 3
        assert pattern.min_lag_ms == pytest.approx(10.0)
        assert pattern.max_lag_ms == pytest.approx(120.0)
        assert pattern.avg_lag_ms == pytest.approx(60.0)
        assert pattern.total_lag_ms == pytest.approx(180.0)

    def test_perceptible_counting(self):
        pattern = self._pattern()
        assert pattern.perceptible_count() == 1
        assert pattern.has_perceptible()
        assert not pattern.has_perceptible(threshold_ms=500.0)

    def test_representative_is_first(self):
        pattern = self._pattern()
        assert pattern.representative.index == 0

    def test_gc_episode_count(self):
        with_gc = episode(
            dispatch(0.0, 10.0, [listener_iv(
                "com.example.ClickListener.actionPerformed", 0.0, 9.0,
                [gc_iv(1.0, 2.0)])]),
        )
        pattern = Pattern(pattern_key(with_gc), [with_gc, simple_episode()])
        assert pattern.gc_episode_count() == 1

    def test_singleton(self):
        assert Pattern("k", [simple_episode()]).is_singleton
        assert not self._pattern().is_singleton


class TestPatternTable:
    def _episodes(self):
        eps = []
        for i in range(6):
            eps.append(simple_episode(lag_ms=10.0 + i, symbol="a.A.m", index=i))
        for i in range(3):
            eps.append(
                simple_episode(lag_ms=200.0, symbol="b.B.m", index=6 + i)
            )
        eps.append(episode(dispatch(0.0, 30.0), index=9))  # structureless
        eps.append(simple_episode(lag_ms=40.0, symbol="c.C.m", index=10))
        return eps

    def test_mining_groups_by_key(self):
        table = PatternTable.from_episodes(self._episodes())
        assert table.distinct_count == 3
        assert table.covered_episodes == 10
        assert table.excluded_episodes == 1

    def test_by_count_ordering(self):
        table = PatternTable.from_episodes(self._episodes())
        counts = [p.count for p in table.by_count()]
        assert counts == [6, 3, 1]

    def test_rows_ordered_by_total_lag(self):
        table = PatternTable.from_episodes(self._episodes())
        totals = [p.total_lag_ms for p in table.rows()]
        assert totals == sorted(totals, reverse=True)

    def test_perceptible_only_filter(self):
        table = PatternTable.from_episodes(self._episodes())
        filtered = table.perceptible_only()
        assert filtered.distinct_count == 1
        assert filtered.rows()[0].count == 3

    def test_singleton_stats(self):
        table = PatternTable.from_episodes(self._episodes())
        assert table.singleton_count == 1
        assert table.singleton_fraction == pytest.approx(1 / 3)
        assert table.singleton_episode_fraction == pytest.approx(1 / 10)

    def test_get_by_key(self):
        table = PatternTable.from_episodes(self._episodes())
        key = pattern_key(simple_episode(symbol="a.A.m"))
        assert table.get(key).count == 6
        assert table.get("nonexistent") is None

    def test_mean_structure_metrics(self):
        table = PatternTable.from_episodes(self._episodes())
        assert table.mean_descendants == pytest.approx(1.0)
        assert table.mean_depth == pytest.approx(2.0)

    def test_empty_table(self):
        table = PatternTable.from_episodes([])
        assert table.distinct_count == 0
        assert table.singleton_fraction == 0.0
        assert table.mean_descendants == 0.0
        assert table.cumulative_episode_distribution() == [0.0] * 101

    def test_cdf_monotone_and_bounded(self):
        table = PatternTable.from_episodes(self._episodes())
        cdf = table.cumulative_episode_distribution()
        assert len(cdf) == 101
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(100.0)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_cdf_skew(self):
        # 6 of 10 covered episodes live in 1 of 3 patterns: the curve
        # must be well above the diagonal early on.
        table = PatternTable.from_episodes(self._episodes())
        cdf = table.cumulative_episode_distribution()
        assert cdf[34] >= 60.0  # top ~1/3 of patterns covers >= 60%

    def test_iteration(self):
        table = PatternTable.from_episodes(self._episodes())
        assert len(list(table)) == len(table) == 3

    def test_include_gc_changes_grouping(self):
        with_gc = episode(
            dispatch(0.0, 10.0, [listener_iv("a.A.m", 0.0, 9.0, [gc_iv(1.0, 2.0)])]),
        )
        plain = simple_episode(symbol="a.A.m")
        blind = PatternTable.from_episodes([with_gc, plain])
        aware = PatternTable.from_episodes([with_gc, plain], include_gc=True)
        assert blind.distinct_count == 1
        assert aware.distinct_count == 2
