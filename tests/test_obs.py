"""Tests for repro.obs: tracing, metrics, profiling, and their CLI.

The load-bearing properties: spans nest correctly within and across
threads and survive the process-pool round-trip as one connected tree;
metric merging is associative and deterministic across worker
orderings; exports validate; and a failing cache write degrades to a
warning plus a counter instead of killing the run.
"""

import itertools
import json
import os
import threading
import warnings

import pytest

from repro.apps.sessions import simulate_sessions
from repro.cli import main
from repro.core.api import AnalysisConfig
from repro.engine import MISS, AnalysisEngine, ResultCache
from repro.obs import Observer, MetricsRegistry, span_depth
from repro.obs import runtime as obs_runtime
from repro.obs.export import (
    metrics_to_prometheus,
    parse_prometheus,
    spans_from_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
    validate_chrome_trace,
)
from repro.obs.observer import load_bundle
from repro.obs.profiling import ProfileAggregator
from repro.study.runner import StudyConfig, run_study


@pytest.fixture(autouse=True)
def _no_ambient_observer():
    """Every test starts and ends with observation disabled."""
    obs_runtime.uninstall()
    yield
    obs_runtime.uninstall()


@pytest.fixture(scope="module")
def traces():
    return simulate_sessions("CrosswordSage", count=2, seed=11, scale=0.04)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpanNesting:
    def test_nested_spans_link_parents(self):
        obs = Observer()
        with obs.span("outer") as outer:
            with obs.span("middle") as middle:
                with obs.span("inner") as inner:
                    pass
        spans = obs.spans()
        assert [s.name for s in spans] == ["inner", "middle", "outer"]
        assert inner.parent_id == middle.span_id
        assert middle.parent_id == outer.span_id
        assert outer.parent_id is None
        assert span_depth(spans) == 3

    def test_span_records_wall_and_cpu_time(self):
        obs = Observer()
        with obs.span("work", answer=42):
            sum(range(10_000))
        (span,) = obs.spans()
        assert span.end_ns >= span.start_ns
        assert span.cpu_ns >= 0
        assert span.attrs["answer"] == 42
        assert span.pid == os.getpid()

    def test_exception_recorded_not_swallowed(self):
        obs = Observer()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (span,) = obs.spans()
        assert span.attrs["error"] == "ValueError"

    def test_sibling_threads_nest_independently(self):
        """Each thread gets its own stack; explicit parents cross over."""
        obs = Observer()
        with obs.span("root") as root:
            root_id = root.span_id

            def worker(label):
                with obs.span("thread.task", parent_id=root_id):
                    with obs.span(f"thread.{label}"):
                        pass

            threads = [
                threading.Thread(target=worker, args=(i,), name=f"w{i}")
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = obs.spans()
        tasks = [s for s in spans if s.name == "thread.task"]
        assert len(tasks) == 4
        assert all(s.parent_id == root_id for s in tasks)
        inner = [s for s in spans if s.name.startswith("thread.") and s is not None and s.name != "thread.task"]
        task_ids = {s.span_id for s in tasks}
        assert all(s.parent_id in task_ids for s in inner)
        assert span_depth(spans) == 3

    def test_metric_span_feeds_histogram(self):
        obs = Observer()
        with obs.span("timed", metric="timed_ms"):
            pass
        snapshot = obs.metrics.as_dict()
        assert snapshot["histograms"]["timed_ms"]["count"] == 1


class TestRuntime:
    def test_disabled_helpers_are_noops(self):
        assert obs_runtime.current() is None
        with obs_runtime.maybe_span("x") as span:
            assert span is None
        obs_runtime.count("c")
        obs_runtime.observe("h", 1.0)
        obs_runtime.set_gauge("g", 2.0)
        with obs_runtime.profiled("p"):
            pass

    def test_installed_restores_previous(self):
        first, second = Observer(), Observer()
        with obs_runtime.installed(first):
            assert obs_runtime.current() is first
            with obs_runtime.installed(second):
                assert obs_runtime.current() is second
            assert obs_runtime.current() is first
        assert obs_runtime.current() is None

    def test_installed_none_is_noop(self):
        outer = Observer()
        with obs_runtime.installed(outer):
            with obs_runtime.installed(None):
                assert obs_runtime.current() is outer

    def test_fork_inherited_observer_counts_as_disabled(self, monkeypatch):
        """A pid mismatch (observer inherited via fork) reads as absent."""
        obs = Observer()
        obs_runtime.install(obs)
        monkeypatch.setattr(obs_runtime, "_owner_pid", os.getpid() + 1)
        assert obs_runtime.current() is None
        obs_runtime.count("ghost")
        with obs_runtime.maybe_span("ghost") as span:
            assert span is None
        assert obs.metrics.counter_value("ghost") == 0
        assert obs.spans() == []


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def _worker_snapshot(seed):
    registry = MetricsRegistry()
    registry.inc("cache.hits", seed)
    registry.inc("cache.misses", 2 * seed + 1)
    registry.set_gauge("engine.workers", float(seed))
    for value in range(seed + 1):
        registry.observe("engine.map_ms", float(value * 7 % 300))
    return registry.as_dict()


class TestMetricsMerge:
    def test_counters_add_gauges_max(self):
        registry = MetricsRegistry()
        registry.merge({"counters": {"c": 2}, "gauges": {"g": 1.0}})
        registry.merge({"counters": {"c": 3}, "gauges": {"g": 4.0}})
        registry.merge({"counters": {"c": 1}, "gauges": {"g": 2.0}})
        snapshot = registry.as_dict()
        assert snapshot["counters"]["c"] == 6
        assert snapshot["gauges"]["g"] == 4.0

    def test_merge_deterministic_across_worker_orderings(self):
        """Any arrival order of worker snapshots → identical registry."""
        snapshots = [_worker_snapshot(seed) for seed in range(4)]
        results = []
        for ordering in itertools.permutations(range(4)):
            registry = MetricsRegistry()
            for index in ordering:
                registry.merge(snapshots[index])
            results.append(registry.as_dict())
        assert all(result == results[0] for result in results[1:])

    def test_merge_associative(self):
        """merge(merge(a,b),c) == merge(a,merge(b,c)) as snapshots."""
        a, b, c = (_worker_snapshot(seed) for seed in (1, 2, 3))
        left = MetricsRegistry.from_dict(a)
        left.merge(b)
        left = MetricsRegistry.from_dict(left.as_dict())
        left.merge(c)
        bc = MetricsRegistry.from_dict(b)
        bc.merge(c)
        right = MetricsRegistry.from_dict(a)
        right.merge(bc.as_dict())
        assert left.as_dict() == right.as_dict()

    def test_mismatched_buckets_fold_mass_not_dropped(self):
        registry = MetricsRegistry()
        registry.observe("h", 3.0)
        registry.merge(
            {
                "histograms": {
                    "h": {
                        "buckets": [10.0],
                        "counts": [2, 0],
                        "sum": 8.0,
                        "count": 2,
                    }
                }
            }
        )
        hist = registry.as_dict()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(11.0)


# ----------------------------------------------------------------------
# Observer snapshot / absorb
# ----------------------------------------------------------------------


class TestSnapshotAbsorb:
    def test_absorb_reparents_worker_roots(self):
        worker = Observer()
        with worker.span("worker.root"):
            with worker.span("worker.child"):
                pass
        worker.metrics.inc("cache.hits", 5)

        dispatcher = Observer()
        with dispatcher.span("dispatch") as dispatch:
            dispatcher.absorb(worker.snapshot(), parent_id=dispatch.span_id)
        spans = {s.name: s for s in dispatcher.spans()}
        assert spans["worker.root"].parent_id == dispatch.span_id
        assert spans["worker.child"].parent_id == spans["worker.root"].span_id
        assert dispatcher.metrics.counter_value("cache.hits") == 5
        assert span_depth(dispatcher.spans()) == 3

    def test_absorb_none_is_noop(self):
        obs = Observer()
        obs.absorb(None, parent_id="x")
        assert obs.spans() == []

    def test_absorb_merges_profiles(self):
        worker = Observer(profile=True)
        with worker.profiled("statistics"):
            sum(range(1000))
        dispatcher = Observer()
        dispatcher.absorb(worker.snapshot())
        assert dispatcher.profiler is not None
        assert "statistics" in dispatcher.profiler.keys()

    def test_save_and_load_bundle_roundtrip(self, tmp_path):
        obs = Observer()
        with obs.span("a", k="v"):
            pass
        obs.metrics.inc("cache.hits")
        obs.save(tmp_path / "bundle")
        bundle = load_bundle(tmp_path / "bundle")
        assert [s.name for s in bundle["spans"]] == ["a"]
        assert bundle["spans"][0].attrs == {"k": "v"}
        assert bundle["metrics"]["counters"]["cache.hits"] == 1
        assert bundle["profile"] is None

    def test_load_bundle_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nothing")

    def test_summary_line_mentions_spans_and_cache(self):
        obs = Observer()
        with obs.span("study.run"):
            pass
        obs.metrics.inc("cache.hits", 3)
        obs.metrics.inc("cache.misses", 1)
        line = obs.summary_line()
        assert line.startswith("[obs] spans=1")
        assert "cache=3/4 hits (75.0%)" in line
        assert "slowest=study.run" in line


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------


class TestProfiling:
    def test_profile_aggregates_hotspots(self):
        aggregator = ProfileAggregator()
        for _ in range(2):
            with aggregator.profiled("statistics"):
                sorted(range(5000), key=lambda v: -v)
        rows = aggregator.top("statistics", 5)
        assert rows
        assert all(len(row) == 4 for row in rows)
        assert rows == sorted(rows, key=lambda r: -r[3])
        report = aggregator.format_report(top=3)
        assert "statistics" in report

    def test_merge_adds_counts(self):
        first, second = ProfileAggregator(), ProfileAggregator()
        with first.profiled("k"):
            sum(range(100))
        with second.profiled("k"):
            sum(range(100))
        snapshot = second.as_dict()
        first.merge(snapshot)
        merged_calls = {row[0]: row[1] for row in first.top("k", 50)}
        single_calls = {row[0]: row[1] for row in second.top("k", 50)}
        shared = set(merged_calls) & set(single_calls)
        assert shared
        for label in shared:
            assert merged_calls[label] >= single_calls[label]


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------


def _sample_observer():
    obs = Observer()
    with obs.span("root"):
        with obs.span("child", metric="child_ms"):
            pass
    obs.metrics.inc("cache.hits", 2)
    obs.metrics.inc("cache.misses", 1)
    obs.metrics.set_gauge("engine.workers", 2)
    return obs


class TestExports:
    def test_jsonl_roundtrip(self):
        spans = _sample_observer().spans()
        again = spans_from_jsonl(spans_to_jsonl(spans))
        assert [s.to_dict() for s in again] == [s.to_dict() for s in spans]

    def test_chrome_trace_validates(self):
        document = spans_to_chrome(_sample_observer().spans())
        validate_chrome_trace(document)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"root", "child"}
        metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        # Serialization must be pure JSON (validated by CI smoke too).
        validate_chrome_trace(json.loads(json.dumps(document)))

    def test_chrome_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                                  "name": "x", "ts": -1, "dur": 0}]}
            )

    def test_prometheus_roundtrip(self):
        obs = _sample_observer()
        text = metrics_to_prometheus(obs.metrics.as_dict())
        values = parse_prometheus(text)
        assert values["lagalyzer_cache_hits_total"] == 2
        assert values["lagalyzer_cache_misses_total"] == 1
        assert values["lagalyzer_engine_workers"] == 2
        assert values['lagalyzer_child_ms_bucket{le="+Inf"}'] == 1
        assert values["lagalyzer_child_ms_count"] == 1

    def test_span_timeline_svg(self):
        from repro.viz.obstimeline import render_span_timeline

        doc = render_span_timeline(_sample_observer().spans())
        text = doc.to_string()
        assert text.startswith("<svg")
        assert "pid" in text


# ----------------------------------------------------------------------
# Pipeline integration: engine and study across processes
# ----------------------------------------------------------------------


class TestPipelineIntegration:
    def test_engine_worker_spans_reparented(self, traces):
        obs = Observer()
        engine = AnalysisEngine(workers=2, use_cache=False, obs=obs)
        engine.map_traces(["statistics", "patterns"], traces, AnalysisConfig())
        spans = obs.spans()
        ids = {s.span_id for s in spans}
        dispatch = next(s for s in spans if s.name == "engine.map_traces")
        workers = [s for s in spans if s.name == "engine.worker_task"]
        assert workers, "worker spans did not survive the pool round-trip"
        assert all(w.parent_id == dispatch.span_id for w in workers)
        unresolved = [
            s for s in spans
            if s.parent_id is not None and s.parent_id not in ids
        ]
        assert unresolved == []
        assert span_depth(spans) >= 3
        assert obs.metrics.counter_value("engine.tasks") == 2

    def test_engine_serial_matches_parallel_metrics(self, traces):
        names = ["statistics"]
        serial_obs, parallel_obs = Observer(), Observer()
        AnalysisEngine(workers=1, use_cache=False, obs=serial_obs).map_traces(
            names, traces, AnalysisConfig()
        )
        AnalysisEngine(workers=2, use_cache=False, obs=parallel_obs).map_traces(
            names, traces, AnalysisConfig()
        )
        serial = serial_obs.metrics.as_dict()["counters"]
        parallel = parallel_obs.metrics.as_dict()["counters"]
        for key in ("cache.hits", "cache.misses"):
            assert serial.get(key, 0) == parallel.get(key, 0)

    def test_observed_study_builds_connected_tree(self, tmp_path):
        config = StudyConfig(
            sessions=1,
            scale=0.03,
            applications=("Arabeske", "Euclide"),
        )
        obs = Observer()
        run_study(
            config,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            obs=obs,
        )
        spans = obs.spans()
        ids = {s.span_id for s in spans}
        names = {s.name for s in spans}
        assert {"study.run", "study.app", "engine.map_traces",
                "analysis.map"} <= names
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["study.run"]
        assert all(
            s.parent_id in ids for s in spans if s.parent_id is not None
        )
        assert span_depth(spans) >= 4
        counters = obs.metrics.as_dict()["counters"]
        assert counters.get("cache.misses", 0) > 0
        assert counters.get("vm.episodes_built", 0) > 0

    def test_unobserved_run_collects_nothing(self, traces):
        engine = AnalysisEngine(workers=1, use_cache=False)
        engine.map_traces(["statistics"], traces, AnalysisConfig())
        assert obs_runtime.current() is None


# ----------------------------------------------------------------------
# Cache-write failure degradation (satellite)
# ----------------------------------------------------------------------


class TestCacheWriteFailure:
    def test_put_failure_warns_counts_and_continues(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")
        obs = Observer()

        def broken_replace(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", broken_replace)
        with obs_runtime.installed(obs):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                cache.put("deadbeef" * 8, {"partial": 1})
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "cache write failed" in str(w.message)
            for w in caught
        )
        assert cache.stats.write_errors == 1
        assert cache.stats.stores == 0
        assert obs.metrics.counter_value("cache.write_errors") == 1
        assert cache.get("deadbeef" * 8) is MISS

    def test_study_survives_cache_write_failures(self, tmp_path, monkeypatch):
        def broken_replace(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", broken_replace)
        config = StudyConfig(
            sessions=1, scale=0.03, applications=("Arabeske",)
        )
        obs = Observer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_study(
                config, cache_dir=str(tmp_path / "cache"), obs=obs
            )
        assert "Arabeske" in result.apps
        assert obs.metrics.counter_value("cache.write_errors") > 0

    def test_persisted_stats_status(self, tmp_path):
        from repro.engine.cache import ResultCache

        missing = ResultCache(tmp_path / "never")
        _, status = missing.persisted_stats_status()
        assert status == "missing"

        corrupt = ResultCache(tmp_path / "bad")
        corrupt.root.mkdir(parents=True)
        (corrupt.root / "stats.json").write_text("{oops", encoding="utf-8")
        _, status = corrupt.persisted_stats_status()
        assert status == "corrupt"

        good = ResultCache(tmp_path / "good")
        good.put("feedf00d" * 8, {"x": 1})
        good.flush_stats()
        stats, status = good.persisted_stats_status()
        assert status == "ok"
        assert stats.stores == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestObsCli:
    @pytest.fixture()
    def bundle_dir(self, tmp_path):
        obs = Observer(profile=True)
        with obs.span("study.run"):
            with obs.span("engine.map_traces"):
                with obs.profiled("statistics"):
                    with obs.span("analysis.map", metric="engine.map_ms"):
                        sum(range(1000))
        obs.metrics.inc("cache.hits", 1)
        obs.metrics.inc("cache.misses", 1)
        return obs.save(tmp_path / "bundle")

    def test_report(self, bundle_dir, capsys):
        assert main(["obs", "report", str(bundle_dir)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "cache.hits" in out
        assert "slowest spans" in out
        assert "statistics" in out  # profile section

    def test_report_missing_bundle(self, tmp_path, capsys):
        # Exit code 2 = "no such input", distinct from 1, no traceback.
        assert main(["obs", "report", str(tmp_path / "none")]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one actionable line
        assert "no observability bundle" in err
        assert "--obs" in err  # tells the user how to produce one

    def test_report_empty_bundle_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs", "report", str(empty)]) == 2
        assert "no observability bundle" in capsys.readouterr().err

    def test_export_missing_bundle(self, tmp_path, capsys):
        code = main(
            ["obs", "export", str(tmp_path / "none"), "--format", "prom"]
        )
        assert code == 2
        assert "no observability bundle" in capsys.readouterr().err

    def test_export_chrome(self, bundle_dir, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["obs", "export", str(bundle_dir), "--format", "chrome",
             "-o", str(out)]
        )
        assert code == 0
        validate_chrome_trace(json.loads(out.read_text()))

    def test_export_prom_stdout(self, bundle_dir, capsys):
        code = main(
            ["obs", "export", str(bundle_dir), "--format", "prom", "-o", "-"]
        )
        assert code == 0
        values = parse_prometheus(capsys.readouterr().out)
        assert values["lagalyzer_cache_hits_total"] == 1

    def test_export_jsonl(self, bundle_dir, tmp_path):
        out = tmp_path / "spans.jsonl"
        code = main(
            ["obs", "export", str(bundle_dir), "--format", "jsonl",
             "-o", str(out)]
        )
        assert code == 0
        assert len(spans_from_jsonl(out.read_text())) == 3

    def test_timeline(self, bundle_dir, tmp_path):
        out = tmp_path / "spans.svg"
        code = main(["obs", "timeline", str(bundle_dir), "-o", str(out)])
        assert code == 0
        assert out.read_text().startswith("<svg")

    def test_study_obs_end_to_end(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        code = main(
            ["study", "--apps", "Arabeske", "--sessions", "1",
             "--scale", "0.03", "-o", str(tmp_path / "out"),
             "--cache-dir", str(tmp_path / "cache"),
             "--obs", str(obs_dir), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[obs] spans=" in out
        bundle = load_bundle(obs_dir)
        assert span_depth(bundle["spans"]) >= 4
        assert bundle["profile"]

    def test_study_rejects_unknown_app(self, capsys):
        code = main(["study", "--apps", "NotAnApp"])
        assert code == 1
        assert "unknown application" in capsys.readouterr().err


class TestEngineCacheStatsCli:
    def test_missing_cache_dir(self, tmp_path, capsys):
        code = main(
            ["engine", "cache", "stats",
             "--cache-dir", str(tmp_path / "none")]
        )
        assert code == 0
        assert "no cache yet" in capsys.readouterr().out

    def test_dir_without_stats(self, tmp_path, capsys):
        root = tmp_path / "cache"
        root.mkdir()
        code = main(["engine", "cache", "stats", "--cache-dir", str(root)])
        assert code == 0
        assert "no recorded statistics yet" in capsys.readouterr().out

    def test_corrupt_stats(self, tmp_path, capsys):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "stats.json").write_text("{not json", encoding="utf-8")
        code = main(["engine", "cache", "stats", "--cache-dir", str(root)])
        assert code == 2
        assert "unreadable" in capsys.readouterr().err

    def test_healthy_stats_include_write_errors(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put("cafebabe" * 8, {"x": 1})
        cache.flush_stats()
        code = main(
            ["engine", "cache", "stats", "--cache-dir", str(cache.root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stores:       1" in out
        assert "write errors: 0" in out
