"""Integration tests for the simulated JVM."""

import pytest

from repro.core.errors import SimulationError
from repro.core.intervals import IntervalKind, NS_PER_MS, NS_PER_S
from repro.core.samples import ThreadState
from repro.vm.behavior import Behavior, Compute, java_stack, listener
from repro.vm.heap import HeapConfig
from repro.vm.jvm import (
    DEFAULT_DAEMONS,
    MicroBurst,
    PostedEvent,
    SessionConfig,
    SimulatedJVM,
)
from repro.vm.threads import ThreadTimeline


def make_config(duration_s=2.0, **kwargs):
    return SessionConfig(
        application="TestApp",
        session_id="s0",
        seed=77,
        duration_s=duration_s,
        **kwargs,
    )


def click_behavior(duration_ms=20.0):
    return Behavior(
        [
            listener(
                "app.Click.actionPerformed",
                [Compute(duration_ms, java_stack("app.Model", "update"),
                         sigma=0.0)],
            )
        ]
    )


class TestSessionConfig:
    def test_rejects_bad_duration(self):
        with pytest.raises(SimulationError):
            make_config(duration_s=0.0).validate()

    def test_rejects_negative_filter(self):
        with pytest.raises(SimulationError):
            make_config(filter_ms=-1.0).validate()


class TestSimulatedJVM:
    def test_events_become_episodes(self):
        jvm = SimulatedJVM(make_config())
        trace = jvm.run([
            PostedEvent(0, click_behavior()),
            PostedEvent(NS_PER_S, click_behavior()),
        ])
        assert len(trace.episodes) == 2
        trace.validate()

    def test_busy_edt_delays_next_event(self):
        jvm = SimulatedJVM(make_config())
        trace = jvm.run([
            PostedEvent(0, click_behavior(duration_ms=100.0)),
            PostedEvent(10 * NS_PER_MS, click_behavior()),
        ])
        first, second = trace.episodes
        assert second.start_ns >= first.end_ns

    def test_events_after_session_end_dropped(self):
        jvm = SimulatedJVM(make_config(duration_s=1.0))
        trace = jvm.run([
            PostedEvent(0, click_behavior()),
            PostedEvent(5 * NS_PER_S, click_behavior()),
        ])
        assert len(trace.episodes) == 1

    def test_micro_bursts_counted_not_materialized(self):
        jvm = SimulatedJVM(make_config())
        trace = jvm.run([MicroBurst(0, count=1234, alloc_bytes=0)])
        assert trace.short_episode_count == 1234
        assert trace.episodes == []

    def test_micro_burst_allocation_can_trigger_root_gc(self):
        config = make_config(
            heap=HeapConfig(
                young_capacity_bytes=1024, pause_jitter=0.0
            ),
        )
        jvm = SimulatedJVM(config)
        trace = jvm.run([MicroBurst(0, count=10, alloc_bytes=4096)])
        gui_roots = trace.thread_roots[trace.gui_thread]
        assert any(r.kind is IntervalKind.GC for r in gui_roots)

    def test_default_daemons_present(self):
        jvm = SimulatedJVM(make_config())
        trace = jvm.run([PostedEvent(0, click_behavior())])
        for daemon in DEFAULT_DAEMONS:
            assert daemon in trace.thread_roots

    def test_background_timeline_sampled(self):
        jvm = SimulatedJVM(make_config())
        worker = ThreadTimeline("worker")
        worker.record(
            0, 2 * NS_PER_S, ThreadState.RUNNABLE,
            java_stack("app.Loader", "run"),
        )
        jvm.add_background_timeline(worker)
        trace = jvm.run([PostedEvent(0, click_behavior(duration_ms=100.0))])
        sample = trace.episodes[0].samples[0]
        assert sample.thread("worker").state is ThreadState.RUNNABLE

    def test_cannot_add_gui_timeline(self):
        jvm = SimulatedJVM(make_config())
        with pytest.raises(SimulationError):
            jvm.add_background_timeline(ThreadTimeline("AWT-EventQueue-0"))

    def test_metadata_and_determinism(self):
        def run():
            jvm = SimulatedJVM(make_config())
            return jvm.run([PostedEvent(0, click_behavior(50.0))])

        a, b = run(), run()
        assert a.metadata.application == "TestApp"
        assert a.metadata.extra["seed"] == "77"
        assert a.metadata.end_ns == b.metadata.end_ns
        assert len(a.samples) == len(b.samples)
        assert [s.timestamp_ns for s in a.samples] == [
            s.timestamp_ns for s in b.samples
        ]

    def test_session_duration_respected(self):
        jvm = SimulatedJVM(make_config(duration_s=3.0))
        trace = jvm.run([])
        assert trace.metadata.duration_s == pytest.approx(3.0)

    def test_unsorted_events_processed_in_time_order(self):
        jvm = SimulatedJVM(make_config())
        trace = jvm.run([
            PostedEvent(NS_PER_S, click_behavior(30.0)),
            PostedEvent(0, click_behavior(20.0)),
        ])
        assert trace.episodes[0].start_ns < trace.episodes[1].start_ns
        assert trace.episodes[0].duration_ms == pytest.approx(20.0)
