"""Unit tests for thread timelines."""

import pytest

from repro.core.errors import SimulationError
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.vm.threads import ThreadTimeline

STACK = StackTrace([StackFrame("a.B", "m")])


class TestThreadTimeline:
    def test_idle_by_default(self):
        timeline = ThreadTimeline("worker")
        state, stack = timeline.at(12345)
        assert state is ThreadState.WAITING
        assert stack.leaf is None

    def test_recorded_segment_lookup(self):
        timeline = ThreadTimeline("worker")
        timeline.record(100, 200, ThreadState.RUNNABLE, STACK)
        state, stack = timeline.at(150)
        assert state is ThreadState.RUNNABLE
        assert stack is STACK

    def test_half_open_bounds(self):
        timeline = ThreadTimeline("worker")
        timeline.record(100, 200, ThreadState.RUNNABLE, STACK)
        assert timeline.at(100)[0] is ThreadState.RUNNABLE
        assert timeline.at(200)[0] is ThreadState.WAITING

    def test_gap_between_segments_is_idle(self):
        timeline = ThreadTimeline("worker")
        timeline.record(0, 100, ThreadState.RUNNABLE, STACK)
        timeline.record(200, 300, ThreadState.BLOCKED, STACK)
        assert timeline.at(150)[0] is ThreadState.WAITING
        assert timeline.at(250)[0] is ThreadState.BLOCKED

    def test_zero_length_segments_dropped(self):
        timeline = ThreadTimeline("worker")
        timeline.record(100, 100, ThreadState.RUNNABLE, STACK)
        assert timeline.segments == ()

    def test_rejects_overlap(self):
        timeline = ThreadTimeline("worker")
        timeline.record(0, 100, ThreadState.RUNNABLE, STACK)
        with pytest.raises(SimulationError, match="overlaps"):
            timeline.record(50, 150, ThreadState.RUNNABLE, STACK)

    def test_touching_segments_allowed(self):
        timeline = ThreadTimeline("worker")
        timeline.record(0, 100, ThreadState.RUNNABLE, STACK)
        timeline.record(100, 200, ThreadState.SLEEPING, STACK)
        assert timeline.at(100)[0] is ThreadState.SLEEPING

    def test_busy_ns(self):
        timeline = ThreadTimeline("worker")
        timeline.record(0, 100, ThreadState.RUNNABLE, STACK)
        timeline.record(200, 250, ThreadState.RUNNABLE, STACK)
        assert timeline.busy_ns() == 150

    def test_custom_idle(self):
        timeline = ThreadTimeline(
            "worker", idle_state=ThreadState.SLEEPING, idle_stack=STACK
        )
        state, stack = timeline.at(0)
        assert state is ThreadState.SLEEPING
        assert stack is STACK

    def test_before_first_segment_is_idle(self):
        timeline = ThreadTimeline("worker")
        timeline.record(100, 200, ThreadState.RUNNABLE, STACK)
        assert timeline.at(50)[0] is ThreadState.WAITING
