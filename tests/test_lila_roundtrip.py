"""Round-trip tests: Trace -> LiLa text -> Trace."""

import pytest

from repro.core.errors import TraceFormatError
from repro.core.samples import ThreadState
from repro.lila.reader import read_trace, read_trace_lines
from repro.lila.writer import trace_to_lines, write_trace

from helpers import (
    GUI,
    dispatch,
    gc_iv,
    gui_sample,
    listener_iv,
    make_trace,
    paint_iv,
)


def _rich_trace():
    nested_gc = gc_iv(20.0, 30.0)
    roots = [
        dispatch(0.0, 50.0, [
            listener_iv("a.Click.actionPerformed", 1.0, 49.0, [
                paint_iv("javax.swing.JFrame.paint", 10.0, 40.0, [nested_gc]),
            ]),
        ]),
        gc_iv(60.0, 80.0, symbol="GC.major"),
        dispatch(100.0, 130.0),
    ]
    samples = [
        gui_sample(5.0),
        gui_sample(15.0, state=ThreadState.BLOCKED,
                   extra_threads=[("worker", ThreadState.RUNNABLE)]),
        gui_sample(45.0, frames=()),
    ]
    return make_trace(
        roots,
        samples=samples,
        e2e_ms=200.0,
        short_count=777,
        extra_threads={"worker": [gc_iv(60.0, 80.0, symbol="GC.major")]},
    )


def _assert_same_tree(a, b):
    assert a.kind == b.kind
    assert a.symbol == b.symbol
    assert a.start_ns == b.start_ns
    assert a.end_ns == b.end_ns
    assert len(a.children) == len(b.children)
    for child_a, child_b in zip(a.children, b.children):
        _assert_same_tree(child_a, child_b)


class TestRoundTrip:
    def test_metadata_survives(self):
        original = _rich_trace()
        loaded = read_trace_lines(trace_to_lines(original))
        assert loaded.metadata.application == original.metadata.application
        assert loaded.metadata.session_id == original.metadata.session_id
        assert loaded.metadata.end_ns == original.metadata.end_ns
        assert loaded.metadata.gui_thread == GUI
        assert loaded.metadata.filter_ms == original.metadata.filter_ms
        assert loaded.short_episode_count == 777

    def test_interval_trees_survive(self):
        original = _rich_trace()
        loaded = read_trace_lines(trace_to_lines(original))
        assert set(loaded.thread_roots) == set(original.thread_roots)
        for thread in original.thread_roots:
            assert len(loaded.thread_roots[thread]) == len(
                original.thread_roots[thread]
            )
            for a, b in zip(
                original.thread_roots[thread], loaded.thread_roots[thread]
            ):
                _assert_same_tree(a, b)

    def test_samples_survive(self):
        original = _rich_trace()
        loaded = read_trace_lines(trace_to_lines(original))
        assert len(loaded.samples) == len(original.samples)
        for a, b in zip(original.samples, loaded.samples):
            assert a.timestamp_ns == b.timestamp_ns
            assert len(a.threads) == len(b.threads)
            for ta, tb in zip(a.threads, b.threads):
                assert ta.thread_name == tb.thread_name
                assert ta.state == tb.state
                assert ta.stack == tb.stack

    def test_episodes_reconstructed(self):
        loaded = read_trace_lines(trace_to_lines(_rich_trace()))
        assert len(loaded.episodes) == 2
        assert len(loaded.episodes[0].samples) == 3

    def test_file_roundtrip(self, tmp_path):
        path = write_trace(_rich_trace(), tmp_path / "trace.lila")
        loaded = read_trace(path)
        assert loaded.metadata.application == "TestApp"

    def test_serialization_is_deterministic(self):
        assert trace_to_lines(_rich_trace()) == trace_to_lines(_rich_trace())


class TestReaderErrors:
    def test_empty_input(self):
        with pytest.raises(TraceFormatError, match="empty"):
            read_trace_lines([])

    def test_missing_metadata(self):
        with pytest.raises(TraceFormatError, match="missing required"):
            read_trace_lines(["#%lila 1", "F 0"])

    def test_unknown_record(self):
        lines = trace_to_lines(_rich_trace()) + ["Z bogus"]
        with pytest.raises(TraceFormatError, match="unknown record"):
            read_trace_lines(lines)

    def test_interval_before_thread(self):
        with pytest.raises(TraceFormatError, match="before any T"):
            read_trace_lines(["#%lila 1", "O 0 dispatch d"])

    def test_sample_entry_outside_tick(self):
        with pytest.raises(TraceFormatError, match="outside a tick"):
            read_trace_lines(["#%lila 1", "t gui runnable -"])

    def test_bad_timestamp(self):
        with pytest.raises(TraceFormatError, match="bad timestamp"):
            read_trace_lines(["#%lila 1", "T gui", "O abc dispatch d"])

    def test_comments_and_blanks_ignored(self):
        lines = trace_to_lines(_rich_trace())
        lines.insert(2, "# a comment")
        lines.insert(3, "")
        loaded = read_trace_lines(lines)
        assert len(loaded.episodes) == 2

    def test_nesting_violation_caught(self):
        lines = [
            "#%lila 1",
            "M application App",
            "M session_id s0",
            "M start_ns 0",
            "M end_ns 1000",
            f"M gui_thread {GUI}",
            f"T {GUI}",
            "O 0 dispatch d",
            "C 100",
            "O 50 dispatch d2",  # overlaps previous root
            "C 150",
        ]
        with pytest.raises(Exception):
            read_trace_lines(lines)
