"""Cause-diff acceptance: migration, injected-cause attribution, CLI.

The headline acceptance pin of the workload-family refactor: given two
warehouse runs of the same ``io_service`` study where run B carries one
injected cause (a degraded database, every IO wait stretched), ``repro
study diff A B`` must rank the injected cause first — and must do so
deterministically whether the summaries were computed serially, by a
worker pool, or compacted from engine bundles. Alongside it live the
v2 -> v3 schema migration pins (family column backfill, causes table)
and the CLI surface of ``study diff``.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.apps.io_service import simulate_service_sessions
from repro.cli import main
from repro.cli.study import EXIT_NO_WAREHOUSE
from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.engine.cache import ResultCache, config_fingerprint
from repro.engine.engine import AnalysisEngine
from repro.warehouse.schema import MIGRATIONS, SCHEMA_VERSION
from repro.warehouse.store import INGEST_ANALYSES, StudyWarehouse

#: The slow endpoint's IO call — the label the injected degradation
#: must surface under (``io_scale`` stretches every endpoint's IO wait,
#: and orders.search has by far the largest baseline wait).
INJECTED_LABEL = "iowait:java.sql.Statement.executeQuery"

CONFIG = AnalysisConfig(perceptible_threshold_ms=100.0)
SEED = 20100401
SCALE = 0.05
SESSIONS = 2


def service_traces(io_scale: float) -> list:
    return simulate_service_sessions(
        "OrderApi", count=SESSIONS, seed=SEED, scale=SCALE, io_scale=io_scale
    )


@pytest.fixture(scope="module")
def baseline_traces() -> list:
    return service_traces(1.0)


@pytest.fixture(scope="module")
def degraded_traces() -> list:
    return service_traces(3.0)


def ingest_run(wh: StudyWarehouse, run_id: str, traces: list) -> None:
    wh.record_run(run_id, ts=1000.0)
    for trace in traces:
        wh.ingest_trace(trace, run_id, CONFIG, ts=1000.0)


# ----------------------------------------------------------------------
# Schema: v2 -> v3 migration
# ----------------------------------------------------------------------


class TestMigrationV3:
    def _v2_file(self, tmp_path: Path) -> Path:
        """A version-2 warehouse file with one pre-family session."""
        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript(MIGRATIONS[0])
        connection.executescript(MIGRATIONS[1])
        connection.execute(
            "INSERT INTO meta (key, value)"
            " VALUES ('study_schema_version', '2')"
        )
        connection.execute(
            "INSERT INTO runs (run_id, created_ts) VALUES ('r1', 100.0)"
        )
        connection.execute(
            "INSERT INTO sessions (run_id, app, session_id, ingested_ts,"
            " records, traced, perceptible) VALUES ('r1', 'OldApp', 's0',"
            " 100.0, 7, 10.0, 3.0)"
        )
        connection.execute(
            "INSERT INTO patterns (run_id, app, session_id, pattern_key,"
            " count, perceptible) VALUES ('r1', 'OldApp', 's0', 'p', 4, 1)"
        )
        connection.commit()
        connection.close()
        return path

    def test_v2_file_migrates_preserving_rows(self, tmp_path):
        upgraded = StudyWarehouse(self._v2_file(tmp_path))
        assert upgraded.schema_version() == SCHEMA_VERSION
        connection = sqlite3.connect(str(upgraded.path))
        try:
            names = {
                row[0]
                for row in connection.execute("SELECT name FROM sqlite_master")
            }
            rows = connection.execute(
                "SELECT app, records, traced, family FROM sessions"
            ).fetchall()
        finally:
            connection.close()
        # The causes table and its index arrive with v3...
        assert "causes" in names
        assert "idx_causes_run_label" in names
        # ...v2 rows survive, and `family` backfills to gui.
        assert rows == [("OldApp", 7, 10.0, "gui")]
        assert upgraded.aggregate()[0].traced_episodes == 10
        assert upgraded.top_patterns()[0].occurrences == 4

    def test_migrated_file_accepts_family_rows_and_diff(self, tmp_path):
        wh = StudyWarehouse(self._v2_file(tmp_path))
        trace = service_traces(1.0)[0]
        assert wh.ingest_trace(trace, "r2", CONFIG, ts=200.0)
        connection = sqlite3.connect(str(wh.path))
        try:
            family = connection.execute(
                "SELECT family FROM sessions WHERE run_id = 'r2'"
            ).fetchone()[0]
            cause_rows = connection.execute(
                "SELECT COUNT(*) FROM causes WHERE run_id = 'r2'"
            ).fetchone()[0]
        finally:
            connection.close()
        assert family == "io_service"
        assert cause_rows > 0
        # Diffing against the pre-family run degrades to "everything is
        # new in r2" rather than failing.
        report = wh.diff("r1", "r2")
        assert report.total_delta_ns > 0
        assert all(delta.a_total_ns == 0 for delta in report.deltas)


# ----------------------------------------------------------------------
# The acceptance pin: injected cause ranks first, deterministically
# ----------------------------------------------------------------------


class TestInjectedCauseAttribution:
    def test_diff_ranks_injected_cause_first(
        self, tmp_path, baseline_traces, degraded_traces
    ):
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        ingest_run(wh, "A", baseline_traces)
        ingest_run(wh, "B", degraded_traces)
        report = wh.diff("A", "B")
        assert report.total_delta_ns > 0, "degraded run must be slower"
        assert report.deltas[0].label == INJECTED_LABEL
        assert report.deltas[0].delta_ns > 0
        assert report.regressions(1)[0].label == INJECTED_LABEL
        # The analyzer facade reaches the same report.
        facade = LagAlyzer.diff("A", "B", wh.path)
        assert facade == report

    def test_reverse_diff_ranks_it_as_improvement(
        self, tmp_path, baseline_traces, degraded_traces
    ):
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        ingest_run(wh, "A", baseline_traces)
        ingest_run(wh, "B", degraded_traces)
        report = wh.diff("B", "A")
        assert report.total_delta_ns < 0
        assert report.improvements(1)[0].label == INJECTED_LABEL

    @pytest.mark.parametrize("workers", (0, 2))
    def test_bundle_path_agrees_across_worker_pools(
        self, tmp_path, workers, baseline_traces, degraded_traces
    ):
        """Engine fan-out -> bundle compaction -> diff reproduces the
        direct-ingest report exactly, at every worker count."""
        direct = StudyWarehouse(tmp_path / "direct.sqlite")
        ingest_run(direct, "A", baseline_traces)
        ingest_run(direct, "B", degraded_traces)
        expected = direct.diff("A", "B")

        compacted = StudyWarehouse(tmp_path / f"w{workers}.sqlite")
        for run_id, traces in (("A", baseline_traces), ("B", degraded_traces)):
            cache_dir = tmp_path / f"cache-{workers}-{run_id}"
            engine = AnalysisEngine(workers=workers, cache_dir=cache_dir)
            engine.map_traces(INGEST_ANALYSES, traces, CONFIG)
            compacted.record_run(run_id, ts=1000.0)
            counters = compacted.ingest_bundles(
                ResultCache(cache_dir), run_id,
                config_fingerprint=config_fingerprint(CONFIG), ts=1000.0,
            )
            assert counters["ingested"] == len(traces)
        actual = compacted.diff("A", "B")
        assert actual == expected
        assert actual.deltas[0].label == INJECTED_LABEL


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestStudyDiffCli:
    @pytest.fixture()
    def wh_path(self, tmp_path, baseline_traces, degraded_traces) -> str:
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        ingest_run(wh, "A", baseline_traces)
        ingest_run(wh, "B", degraded_traces)
        return str(wh.path)

    def test_json_output_ranks_injected_cause(self, wh_path, capsys):
        code = main(
            ["study", "diff", "A", "B", "--warehouse", wh_path, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_a"] == "A"
        assert payload["run_b"] == "B"
        assert payload["total_delta_ns"] > 0
        assert payload["deltas"][0]["label"] == INJECTED_LABEL
        assert payload["deltas"][0]["delta_ns"] > 0

    def test_table_output_names_runs_and_cause(self, wh_path, capsys):
        code = main(["study", "diff", "A", "B", "--warehouse", wh_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "A -> B" in out
        assert INJECTED_LABEL in out

    def test_limit_caps_rows(self, wh_path, capsys):
        code = main(
            ["study", "diff", "A", "B", "--warehouse", wh_path,
             "--json", "-n", "1"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["deltas"]) == 1

    def test_missing_warehouse_exit_code(self, tmp_path, capsys):
        code = main(
            ["study", "diff", "A", "B",
             "--warehouse", str(tmp_path / "absent.sqlite")]
        )
        assert code == EXIT_NO_WAREHOUSE
