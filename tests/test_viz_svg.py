"""Unit tests for the SVG builder."""


from repro.viz.svg import SvgDocument


class TestSvgDocument:
    def test_document_shell(self):
        doc = SvgDocument(200, 100)
        text = doc.to_string()
        assert text.startswith("<svg ")
        assert text.endswith("</svg>")
        assert 'width="200"' in text
        assert 'viewBox="0 0 200 100"' in text

    def test_background_rect(self):
        doc = SvgDocument(10, 10, background="#123456")
        assert 'fill="#123456"' in doc.to_string()
        assert len(doc) == 1

    def test_no_background(self):
        doc = SvgDocument(10, 10, background=None)
        assert len(doc) == 0

    def test_rect_with_title(self):
        doc = SvgDocument(10, 10, background=None)
        doc.rect(1, 2, 3, 4, fill="#fff", title="hover me")
        assert "<title>hover me</title>" in doc.to_string()

    def test_text_escaping(self):
        doc = SvgDocument(10, 10, background=None)
        doc.text(0, 0, "<evil> & 'friends'")
        text = doc.to_string()
        assert "<evil>" not in text
        assert "&lt;evil&gt;" in text
        assert "&amp;" in text

    def test_attribute_escaping(self):
        doc = SvgDocument(10, 10, background=None)
        doc.rect(0, 0, 5, 5, title='quote " inside')
        assert 'quote " inside' in doc.to_string().replace("&quot;", '"')

    def test_negative_size_clamped(self):
        doc = SvgDocument(10, 10, background=None)
        doc.rect(0, 0, -5, -5)
        assert 'width="0"' in doc.to_string()

    def test_polyline_points(self):
        doc = SvgDocument(10, 10, background=None)
        doc.polyline([(0, 0), (5.5, 2.25)])
        assert 'points="0,0 5.5,2.25"' in doc.to_string()

    def test_rotated_text(self):
        doc = SvgDocument(10, 10, background=None)
        doc.text(5, 5, "vertical", rotate=-90.0)
        assert "rotate(-90 5 5)" in doc.to_string()

    def test_line_dash(self):
        doc = SvgDocument(10, 10, background=None)
        doc.line(0, 0, 10, 10, dash="4,3")
        assert 'stroke-dasharray="4,3"' in doc.to_string()

    def test_circle_title(self):
        doc = SvgDocument(10, 10, background=None)
        doc.circle(5, 5, 2, title="sample")
        assert "<title>sample</title>" in doc.to_string()

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        path = doc.save(tmp_path / "sub" / "out.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_deterministic_output(self):
        def build():
            doc = SvgDocument(20, 20)
            doc.rect(1, 1, 5, 5, fill="#abc")
            doc.text(2, 2, "hi")
            return doc.to_string()

        assert build() == build()
