"""Tests for the chart renderers."""


from repro.viz.charts import (
    render_cdf_chart,
    render_dot_chart,
    render_stacked_bars,
)
from repro.viz.colors import TRIGGER_COLORS


class TestStackedBars:
    def _data(self):
        return {
            "AppA": {"input": 50.0, "output": 30.0,
                     "asynchronous": 10.0, "unspecified": 10.0},
            "AppB": {"input": 10.0, "output": 80.0,
                     "asynchronous": 5.0, "unspecified": 5.0},
        }

    def test_renders_rows_and_legend(self):
        text = render_stacked_bars(
            self._data(), TRIGGER_COLORS, "Triggers"
        ).to_string()
        assert "AppA" in text and "AppB" in text
        for category in TRIGGER_COLORS:
            assert category in text

    def test_tooltips_contain_values(self):
        text = render_stacked_bars(
            self._data(), TRIGGER_COLORS, "Triggers"
        ).to_string()
        assert "AppA: input 50.0%" in text

    def test_zero_segments_skipped(self):
        data = {"App": {"input": 100.0, "output": 0.0,
                        "asynchronous": 0.0, "unspecified": 0.0}}
        text = render_stacked_bars(data, TRIGGER_COLORS, "t").to_string()
        assert "App: output" not in text

    def test_custom_axis_maximum(self):
        text = render_stacked_bars(
            self._data(), TRIGGER_COLORS, "t", x_max=60.0
        ).to_string()
        assert ">60<" in text  # the rightmost tick label


class TestDotChart:
    def test_values_and_reference_line(self):
        data = {"AppA": 1.2, "AppB": 0.8}
        text = render_dot_chart(data, "Concurrency").to_string()
        assert "AppA: 1.20" in text
        assert "stroke-dasharray" in text  # the reference guide at 1.0

    def test_without_reference(self):
        text = render_dot_chart(
            {"A": 0.5}, "t", reference=None
        ).to_string()
        assert "stroke-dasharray" not in text

    def test_values_clamped_to_max(self):
        doc = render_dot_chart({"A": 99.0}, "t", x_max=2.0)
        assert "A: 99.00" in doc.to_string()


class TestCdfChart:
    def test_renders_curves_and_legend(self):
        curves = {
            "AppA": [i for i in range(101)],
            "AppB": [min(100, 2 * i) for i in range(101)],
        }
        text = render_cdf_chart(curves).to_string()
        assert "AppA" in text and "AppB" in text
        assert text.count("<polyline") == 2

    def test_axis_labels(self):
        text = render_cdf_chart({"A": [0.0] * 101}).to_string()
        assert "Patterns [%]" in text
        assert "Cumulative Episodes Count [%]" in text

    def test_empty_curves(self):
        text = render_cdf_chart({}).to_string()
        assert "<svg" in text
