"""Tests for the HTML pattern browser."""

import pytest

from repro.cli import main
from repro.core.api import LagAlyzer
from repro.viz.htmlbrowser import render_html_browser, write_html_browser

from helpers import dispatch, listener_iv, make_trace


@pytest.fixture()
def analyzer():
    roots = [
        dispatch(0.0, 150.0, [listener_iv("a.Slow.m", 0.0, 149.0)]),
        dispatch(300.0, 460.0, [listener_iv("a.Slow.m", 300.0, 459.0)]),
        dispatch(600.0, 610.0, [listener_iv("b.Fast.m", 600.0, 609.0)]),
    ]
    return LagAlyzer.from_traces([make_trace(roots, e2e_ms=10_000.0)])


class TestHtmlBrowser:
    def test_complete_document(self, analyzer):
        html = render_html_browser(analyzer)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")
        assert "Pattern browser — TestApp" in html

    def test_perceptible_filter_default(self, analyzer):
        html = render_html_browser(analyzer)
        assert "a.Slow.m" in html
        assert "b.Fast.m" not in html

    def test_all_patterns_mode(self, analyzer):
        html = render_html_browser(analyzer, perceptible_only=False)
        assert "b.Fast.m" in html

    def test_sketches_inlined(self, analyzer):
        html = render_html_browser(analyzer)
        # One pattern with two episodes: first + worst sketch = 2 SVGs.
        assert html.count("<svg") == 2
        assert "src=" not in html

    def test_episode_list(self, analyzer):
        html = render_html_browser(analyzer)
        assert "150.0" in html
        assert "160.0" in html

    def test_occurrence_badge(self, analyzer):
        html = render_html_browser(analyzer)
        assert "occ-always" in html

    def test_limit(self, analyzer):
        html = render_html_browser(
            analyzer, perceptible_only=False, max_patterns=1
        )
        assert html.count("<details>") == 1

    def test_write(self, analyzer, tmp_path):
        path = write_html_browser(analyzer, tmp_path / "b.html")
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_cli(self, tmp_path):
        trace_path = tmp_path / "t.lila"
        assert main([
            "simulate", "--app", "CrosswordSage", "--scale", "0.05",
            "-o", str(trace_path),
        ]) == 0
        out = tmp_path / "browser.html"
        assert main(["browse", str(trace_path), "-o", str(out)]) == 0
        assert "<svg" in out.read_text()

    def test_drilldown_included(self, analyzer):
        html = render_html_browser(analyzer)
        assert "diagnosis:" in html
        assert "location:" in html
