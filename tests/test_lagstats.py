"""Tests for lag-distribution statistics."""

import pytest

from repro.core.lagstats import (
    duration_bands,
    log_histogram,
    percentile,
    summarize_lags,
)

from helpers import simple_episode


class TestPercentile:
    def test_single_value(self):
        assert percentile([42.0], 0.5) == 42.0

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [1.0, 5.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_clamps_fraction(self):
        assert percentile([1.0, 2.0], 2.0) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestSummarizeLags:
    def test_summary_fields(self):
        episodes = [simple_episode(lag_ms=float(lag), index=i)
                    for i, lag in enumerate((10, 20, 30, 40, 100))]
        summary = summarize_lags(episodes)
        assert summary.count == 5
        assert summary.min_ms == pytest.approx(10.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.median_ms == pytest.approx(30.0)
        assert summary.mean_ms == pytest.approx(40.0)
        assert summary.total_ms == pytest.approx(200.0)
        assert summary.p90_ms <= summary.p99_ms <= summary.max_ms

    def test_empty_population(self):
        summary = summarize_lags([])
        assert summary.count == 0
        assert summary.describe() == "no episodes"

    def test_describe(self):
        summary = summarize_lags([simple_episode(50.0)])
        assert "n=1" in summary.describe()
        assert "p90=50.0" in summary.describe()


class TestLogHistogram:
    def test_bins_cover_all_episodes(self):
        episodes = [simple_episode(lag_ms=float(lag), index=i)
                    for i, lag in enumerate((2, 5, 20, 90, 400))]
        bins = log_histogram(episodes)
        assert sum(count for _, _, count in bins) == 5

    def test_bin_edges_monotone(self):
        episodes = [simple_episode(lag_ms=float(lag), index=i)
                    for i, lag in enumerate((2, 500))]
        bins = log_histogram(episodes)
        for low, high, _ in bins:
            assert high > low
        edges = [low for low, _, _ in bins]
        assert edges == sorted(edges)

    def test_floor_clamps_tiny_lags(self):
        episodes = [simple_episode(lag_ms=0.01)]
        bins = log_histogram(episodes, floor_ms=1.0)
        assert bins[0][0] == pytest.approx(1.0)

    def test_empty(self):
        assert log_histogram([]) == []

    def test_bad_bins_per_decade(self):
        with pytest.raises(ValueError):
            log_histogram([simple_episode()], bins_per_decade=0)


class TestDurationBands:
    def test_matches_table3_columns(self):
        episodes = [
            simple_episode(10.0, index=0),
            simple_episode(50.0, index=1),
            simple_episode(150.0, index=2),
        ]
        bands = duration_bands(episodes, filtered_count=1000)
        assert bands.below_filter == 1000
        assert bands.traced == 3
        assert bands.traced_fast == 2
        assert bands.perceptible == 1

    def test_threshold_parameter(self):
        episodes = [simple_episode(120.0)]
        bands = duration_bands(episodes, 0, threshold_ms=150.0)
        assert bands.perceptible == 0
