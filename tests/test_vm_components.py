"""Unit tests for the Swing-like component tree."""

import pytest

from repro.vm.components import Component, component_tree


class TestComponent:
    def test_paint_symbol(self):
        assert Component("javax.swing.JFrame").paint_symbol == (
            "javax.swing.JFrame.paint"
        )

    def test_walk_preorder(self):
        leaf = Component("pkg.Leaf")
        mid = Component("pkg.Mid", [leaf])
        root = Component("pkg.Root", [mid])
        assert [c.class_name for c in root.walk()] == [
            "pkg.Root", "pkg.Mid", "pkg.Leaf",
        ]

    def test_size_and_depth(self):
        leaf_a = Component("pkg.A")
        leaf_b = Component("pkg.B")
        root = Component("pkg.Root", [Component("pkg.Mid", [leaf_a]), leaf_b])
        assert root.size() == 4
        assert root.depth() == 3
        assert leaf_a.depth() == 1

    def test_total_paint_ms(self):
        root = Component(
            "pkg.Root",
            [Component("pkg.A", self_paint_ms=2.0)],
            self_paint_ms=1.0,
        )
        assert root.total_paint_ms() == pytest.approx(3.0)


class TestComponentTree:
    def test_swing_chrome_wraps_content(self):
        window = component_tree("org.app", ("Canvas",), depth=1, fanout=1)
        names = [c.class_name for c in window.walk()]
        assert names[:3] == [
            "javax.swing.JFrame",
            "javax.swing.JRootPane",
            "javax.swing.JLayeredPane",
        ]
        assert names[3] == "org.app.Canvas"

    def test_depth_and_fanout(self):
        window = component_tree("org.app", ("A", "B"), depth=2, fanout=2)
        # chrome(3) + content 1 + 2 = 6
        assert window.size() == 6
        assert window.depth() == 5

    def test_fanout_levels_limits_blowup(self):
        window = component_tree(
            "org.app", ("A",), depth=8, fanout=2, fanout_levels=2
        )
        # Content: 1 + 2 + 4 nodes at levels 1-3, then 4 chains of 5.
        assert window.size() == 3 + 1 + 2 + 4 + 4 * 5
        assert window.depth() == 3 + 8

    def test_content_classes_cycle(self):
        window = component_tree("org.app", ("A", "B"), depth=1, fanout=1)
        content = [
            c.class_name for c in window.walk()
            if c.class_name.startswith("org.app.")
        ]
        assert content == ["org.app.A"]

    def test_paint_cost_propagated(self):
        window = component_tree(
            "org.app", ("A",), depth=1, fanout=1, self_paint_ms=7.0
        )
        content = [
            c for c in window.walk() if c.class_name.startswith("org.app.")
        ]
        assert all(c.self_paint_ms == 7.0 for c in content)
