"""Unit tests for the interval model and the nesting invariant."""

import pytest

from repro.core.errors import NestingError
from repro.core.intervals import (
    Interval,
    IntervalKind,
    IntervalTreeBuilder,
    merge_adjacent,
    total_span_ns,
)

from helpers import dispatch, gc_iv, interval, ms, paint_iv


class TestIntervalKind:
    def test_six_kinds_match_table1(self):
        # Table I's six gui kinds, plus the workload-family kinds
        # (request/iowait for io_service, stage for async_pipeline),
        # which are appended after GC so enumeration-order codes of the
        # original six never move.
        names = {kind.value for kind in IntervalKind}
        assert names == {
            "dispatch", "listener", "paint", "native", "async", "gc",
            "request", "iowait", "stage",
        }
        assert [kind.value for kind in IntervalKind][:6] == [
            "dispatch", "listener", "paint", "native", "async", "gc",
        ]

    def test_from_name_roundtrip(self):
        for kind in IntervalKind:
            assert IntervalKind.from_name(kind.value) is kind

    def test_from_name_is_case_insensitive(self):
        assert IntervalKind.from_name("PAINT") is IntervalKind.PAINT

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown interval kind"):
            IntervalKind.from_name("render")

    def test_gc_is_not_structural(self):
        assert not IntervalKind.GC.is_structural
        for kind in IntervalKind:
            if kind is not IntervalKind.GC:
                assert kind.is_structural


class TestInterval:
    def test_durations(self):
        node = interval(IntervalKind.PAINT, "a.b", 10.0, 35.0)
        assert node.duration_ns == ms(25.0)
        assert node.duration_ms == pytest.approx(25.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(NestingError, match="ends before it starts"):
            Interval(IntervalKind.PAINT, "a.b", 100, 50)

    def test_zero_length_is_legal(self):
        node = Interval(IntervalKind.GC, "GC.minor", 100, 100)
        assert node.duration_ns == 0

    def test_contains_time_half_open(self):
        node = interval(IntervalKind.NATIVE, "n", 10.0, 20.0)
        assert node.contains_time(ms(10.0))
        assert node.contains_time(ms(19.999))
        assert not node.contains_time(ms(20.0))
        assert not node.contains_time(ms(9.999))

    def test_encloses_and_overlaps(self):
        outer = interval(IntervalKind.DISPATCH, "d", 0.0, 100.0)
        inner = interval(IntervalKind.PAINT, "p", 10.0, 20.0)
        disjoint = interval(IntervalKind.PAINT, "p", 200.0, 210.0)
        assert outer.encloses(inner)
        assert not inner.encloses(outer)
        assert outer.overlaps(inner)
        assert not outer.overlaps(disjoint)

    def test_children_get_parent_pointer(self):
        child = paint_iv("p", 1.0, 2.0)
        parent = dispatch(0.0, 10.0, [child])
        assert child.parent is parent

    def test_preorder_order(self):
        #      d
        #    a   b
        #   a1
        a1 = paint_iv("a1", 1.0, 2.0)
        a = paint_iv("a", 0.5, 3.0, [a1])
        b = paint_iv("b", 4.0, 5.0)
        root = dispatch(0.0, 10.0, [a, b])
        symbols = [node.symbol for node in root.preorder()]
        assert symbols == ["EventQueue.dispatchEvent", "a", "a1", "b"]

    def test_descendant_count_excluding_gc(self):
        gc = gc_iv(1.0, 2.0)
        a = paint_iv("a", 0.5, 3.0, [gc])
        root = dispatch(0.0, 10.0, [a])
        assert root.descendant_count() == 2
        assert root.descendant_count(include_gc=False) == 1

    def test_depth(self):
        a1 = paint_iv("a1", 1.0, 2.0)
        a = paint_iv("a", 0.5, 3.0, [a1])
        root = dispatch(0.0, 10.0, [a])
        assert root.depth() == 3
        assert a1.depth() == 1

    def test_depth_excluding_gc(self):
        gc = gc_iv(1.0, 2.0)
        a = paint_iv("a", 0.5, 3.0, [gc])
        root = dispatch(0.0, 10.0, [a])
        assert root.depth() == 3
        assert root.depth(include_gc=False) == 2

    def test_find_first_preorder_match(self):
        early = paint_iv("early", 1.0, 2.0)
        late = paint_iv("late", 3.0, 4.0)
        root = dispatch(0.0, 10.0, [early, late])
        found = root.find(lambda n: n.kind is IntervalKind.PAINT)
        assert found is early

    def test_find_returns_none(self):
        root = dispatch(0.0, 10.0)
        assert root.find(lambda n: n.kind is IntervalKind.GC) is None

    def test_find_all(self):
        a = paint_iv("a", 1.0, 2.0)
        b = paint_iv("b", 3.0, 4.0)
        root = dispatch(0.0, 10.0, [a, b])
        assert root.find_all(lambda n: n.kind is IntervalKind.PAINT) == [a, b]

    def test_self_time(self):
        child = paint_iv("p", 2.0, 6.0)
        root = dispatch(0.0, 10.0, [child])
        assert root.self_time_ns() == ms(6.0)

    def test_validate_accepts_proper_nesting(self):
        inner = paint_iv("i", 2.0, 4.0)
        a = paint_iv("a", 1.0, 5.0, [inner])
        b = paint_iv("b", 5.0, 7.0)
        dispatch(0.0, 10.0, [a, b]).validate()

    def test_validate_rejects_escaping_child(self):
        child = paint_iv("c", 5.0, 15.0)
        root = dispatch(0.0, 10.0, [child])
        with pytest.raises(NestingError, match="escapes parent"):
            root.validate()

    def test_validate_rejects_overlapping_siblings(self):
        a = paint_iv("a", 1.0, 5.0)
        b = paint_iv("b", 4.0, 7.0)
        root = dispatch(0.0, 10.0, [a, b])
        with pytest.raises(NestingError, match="siblings overlap"):
            root.validate()

    def test_repr_mentions_kind_and_symbol(self):
        node = paint_iv("javax.swing.JFrame.paint", 0.0, 1.0)
        assert "paint" in repr(node)
        assert "JFrame" in repr(node)


class TestIntervalTreeBuilder:
    def test_builds_nested_tree(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 0)
        builder.open(IntervalKind.LISTENER, "l", 10)
        builder.close(50)
        builder.close(60)
        roots = builder.finish()
        assert len(roots) == 1
        assert roots[0].kind is IntervalKind.DISPATCH
        assert roots[0].children[0].kind is IntervalKind.LISTENER
        roots[0].validate()

    def test_multiple_roots(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d1", 0)
        builder.close(10)
        builder.open(IntervalKind.DISPATCH, "d2", 20)
        builder.close(30)
        assert len(builder.finish()) == 2

    def test_close_without_open(self):
        with pytest.raises(NestingError, match="close without"):
            IntervalTreeBuilder().close(10)

    def test_open_before_parent_start(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 100)
        with pytest.raises(NestingError, match="before its enclosing"):
            builder.open(IntervalKind.PAINT, "p", 50)

    def test_open_inside_previous_sibling(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 0)
        builder.open(IntervalKind.PAINT, "a", 10)
        builder.close(50)
        with pytest.raises(NestingError, match="previous sibling"):
            builder.open(IntervalKind.PAINT, "b", 40)

    def test_root_overlapping_previous_root(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d1", 0)
        builder.close(100)
        with pytest.raises(NestingError, match="inside the previous root"):
            builder.open(IntervalKind.DISPATCH, "d2", 50)

    def test_close_before_last_child(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 0)
        builder.open(IntervalKind.PAINT, "p", 10)
        builder.close(80)
        with pytest.raises(NestingError, match="before its last child"):
            builder.close(70)

    def test_finish_with_open_intervals(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 0)
        with pytest.raises(NestingError, match="unclosed"):
            builder.finish()

    def test_add_complete_nests_into_open(self):
        builder = IntervalTreeBuilder()
        builder.open(IntervalKind.DISPATCH, "d", 0)
        builder.add_complete(IntervalKind.GC, "GC.minor", 10, 30)
        root = builder.close(100)
        assert root.children[0].kind is IntervalKind.GC
        root.validate()

    def test_add_complete_as_root(self):
        builder = IntervalTreeBuilder()
        builder.add_complete(IntervalKind.GC, "GC.major", 5, 50)
        roots = builder.finish()
        assert roots[0].kind is IntervalKind.GC

    def test_open_depth(self):
        builder = IntervalTreeBuilder()
        assert builder.open_depth == 0
        builder.open(IntervalKind.DISPATCH, "d", 0)
        builder.open(IntervalKind.PAINT, "p", 1)
        assert builder.open_depth == 2


class TestSpanHelpers:
    def test_merge_adjacent_disjoint(self):
        spans = merge_adjacent(
            [paint_iv("a", 0.0, 1.0), paint_iv("b", 5.0, 6.0)]
        )
        assert spans == [(0, ms(1.0)), (ms(5.0), ms(6.0))]

    def test_merge_adjacent_overlapping(self):
        spans = merge_adjacent(
            [paint_iv("a", 0.0, 5.0), paint_iv("b", 3.0, 8.0)]
        )
        assert spans == [(0, ms(8.0))]

    def test_merge_adjacent_touching(self):
        spans = merge_adjacent(
            [paint_iv("a", 0.0, 5.0), paint_iv("b", 5.0, 8.0)]
        )
        assert spans == [(0, ms(8.0))]

    def test_merge_adjacent_unsorted_input(self):
        spans = merge_adjacent(
            [paint_iv("b", 5.0, 6.0), paint_iv("a", 0.0, 1.0)]
        )
        assert spans[0][0] == 0

    def test_merge_adjacent_empty(self):
        assert merge_adjacent([]) == []

    def test_total_span_counts_overlap_once(self):
        total = total_span_ns(
            [paint_iv("a", 0.0, 10.0), paint_iv("b", 5.0, 15.0)]
        )
        assert total == ms(15.0)
