"""The ``repro study query`` CLI: golden output, exit codes, fuzzing.

Exit-code contract under test: 0 on success, 1 when ``regressions``
finds a regression, 2 when the warehouse file is missing. The fuzz
tests drive hostile application / run identifiers through every query
path to pin the parameterized-SQL guarantee: identifiers are data,
never syntax.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.statistics import SessionStats
from repro.engine.cache import ResultCache, config_fingerprint
from repro.engine.engine import AnalysisEngine
from repro.warehouse.store import INGEST_ANALYSES, StudyWarehouse

GOLDEN_DIR = Path(__file__).parent / "golden"
TRACE_PATHS = [
    GOLDEN_DIR / f"CrosswordSage-session-{index}.lila" for index in range(3)
]


def make_stats(app: str = "TestApp", **overrides: float) -> SessionStats:
    values = dict(
        e2e_s=60.0,
        in_episode_pct=10.0,
        below_filter=5.0,
        traced=10.0,
        perceptible=2.0,
        long_per_min=0.5,
        distinct_patterns=3.0,
        covered_episodes=8.0,
        singleton_pct=20.0,
        mean_descendants=4.0,
        mean_depth=2.0,
    )
    values.update(overrides)
    return SessionStats(application=app, **values)


@pytest.fixture()
def seeded_path(tmp_path: Path) -> str:
    """A warehouse with two runs, two apps, and a known regression."""
    wh = StudyWarehouse(tmp_path / "wh.sqlite")
    wh.record_run("base", label="before", source="bundles", ts=1000.0)
    wh.record_run("cand", label="after", source="bundles", ts=2000.0)
    wh.ingest_session(
        "base", "Alpha", "s0",
        make_stats("Alpha", traced=100.0, perceptible=5.0, long_per_min=1.0),
        pattern_counts={"d(l)": (10, 4), "d(p)": (20, 0)},
        trace_digest="a0", ts=1000.0,
    )
    wh.ingest_session(
        "base", "Beta", "s0",
        make_stats("Beta", traced=50.0, perceptible=10.0, long_per_min=3.0),
        pattern_counts={"d(l)": (8, 4)},
        trace_digest="b0", ts=1060.0,
    )
    wh.ingest_session(
        "cand", "Alpha", "s1",
        make_stats("Alpha", traced=100.0, perceptible=30.0, long_per_min=5.0),
        pattern_counts={"d(l)": (12, 9)},
        trace_digest="a1", ts=5000.0,
    )
    return str(wh.path)


def run_query(capsys, *argv: str):
    code = main(["study", "query", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# Exit-code contract
# ----------------------------------------------------------------------


class TestExitCodes:
    @pytest.mark.parametrize(
        "argv",
        [
            ("runs",),
            ("aggregate",),
            ("top",),
            ("series",),
            ("regressions", "--baseline", "a", "--candidate", "b"),
        ],
        ids=["runs", "aggregate", "top", "series", "regressions"],
    )
    def test_missing_warehouse_exits_2(self, tmp_path, capsys, argv):
        missing = str(tmp_path / "absent.sqlite")
        code, out, err = run_query(capsys, *argv, "--warehouse", missing)
        assert code == 2
        assert out == ""
        assert "no study warehouse at" in err

    def test_success_exits_0(self, seeded_path, capsys):
        for argv in (("runs",), ("aggregate",), ("top",), ("series",)):
            code, _, _ = run_query(capsys, *argv, "--warehouse", seeded_path)
            assert code == 0

    def test_regression_found_exits_1(self, seeded_path, capsys):
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", seeded_path,
            "--baseline", "base", "--candidate", "cand",
        )
        assert code == 1
        assert "1 application(s) regressed" in out

    def test_no_regression_exits_0(self, seeded_path, capsys):
        # Same runs on both sides: every delta is zero.
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", seeded_path,
            "--baseline", "base", "--candidate", "base",
        )
        assert code == 0
        assert "no regressions" in out

    def test_min_delta_suppresses_regression(self, seeded_path, capsys):
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", seeded_path,
            "--baseline", "base", "--candidate", "cand",
            "--min-delta", "0.9",
        )
        assert code == 0
        assert "no regressions" in out

    def test_query_without_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "query"])
        assert excinfo.value.code == 2

    def test_bad_bucket_is_usage_error(self, seeded_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "study", "query", "series", "--warehouse", seeded_path,
                "--bucket", "fortnight",
            ])
        assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Golden output per subcommand
# ----------------------------------------------------------------------


class TestGoldenOutput:
    def test_runs_table(self, seeded_path, capsys):
        _, out, _ = run_query(capsys, "runs", "--warehouse", seeded_path)
        lines = out.splitlines()
        assert lines[0].split() == ["RUN", "SOURCE", "SESSIONS", "LABEL"]
        assert lines[1].split() == ["base", "bundles", "2", "before"]
        assert lines[2].split() == ["cand", "bundles", "1", "after"]

    def test_runs_json(self, seeded_path, capsys):
        _, out, _ = run_query(
            capsys, "runs", "--warehouse", seeded_path, "--json"
        )
        records = json.loads(out)
        assert [r["run_id"] for r in records] == ["base", "cand"]
        assert records[0]["sessions"] == 2

    def test_aggregate_table(self, seeded_path, capsys):
        _, out, _ = run_query(capsys, "aggregate", "--warehouse", seeded_path)
        lines = out.splitlines()
        assert lines[0].split() == [
            "APP", "SESSIONS", "TRACED", "PERCEPT", "RATE", "LONG/MIN",
        ]
        assert lines[1].split() == [
            "Alpha", "2", "200", "35", "0.175", "3.00",
        ]
        assert lines[2].split() == ["Beta", "1", "50", "10", "0.200", "3.00"]

    def test_aggregate_filters_and_json(self, seeded_path, capsys):
        _, out, _ = run_query(
            capsys, "aggregate", "--warehouse", seeded_path,
            "--apps", "Beta", "--json",
        )
        rows = json.loads(out)
        assert [row["application"] for row in rows] == ["Beta"]
        _, out, _ = run_query(
            capsys, "aggregate", "--warehouse", seeded_path,
            "--runs", "cand", "--json",
        )
        rows = json.loads(out)
        assert [(row["application"], row["sessions"]) for row in rows] == [
            ("Alpha", 1)
        ]
        _, out, _ = run_query(
            capsys, "aggregate", "--warehouse", seeded_path,
            "--since", "4000", "--json",
        )
        assert [row["application"] for row in json.loads(out)] == ["Alpha"]

    def test_top_table_and_limit(self, seeded_path, capsys):
        _, out, _ = run_query(capsys, "top", "--warehouse", seeded_path)
        lines = out.splitlines()
        assert lines[0].split() == [
            "APP", "OCCUR", "PERCEPT", "SESSIONS", "PATTERN",
        ]
        # Ranked by perceptible episodes: Alpha d(l) 13, Beta d(l) 4, ...
        assert lines[1].split() == ["Alpha", "22", "13", "2", "d(l)"]
        assert lines[2].split() == ["Beta", "8", "4", "1", "d(l)"]
        _, out, _ = run_query(
            capsys, "top", "--warehouse", seeded_path, "-n", "1", "--json"
        )
        assert len(json.loads(out)) == 1

    def test_top_occurrence_metric(self, seeded_path, capsys):
        _, out, _ = run_query(
            capsys, "top", "--warehouse", seeded_path,
            "--analyses", "occurrences", "--json",
        )
        rows = json.loads(out)
        assert (rows[0]["application"], rows[0]["pattern_key"]) == (
            "Alpha", "d(l)",
        )
        assert rows[0]["occurrences"] == 22

    def test_series_table(self, seeded_path, capsys):
        _, out, _ = run_query(
            capsys, "series", "--warehouse", seeded_path,
            "--metric", "perceptible",
        )
        lines = out.splitlines()
        assert lines[0].split() == ["APP", "BUCKET", "SESSIONS", "VALUE"]
        assert lines[1].split() == ["Alpha", "0", "1", "5.0000"]
        assert lines[2].split() == ["Alpha", "3600", "1", "30.0000"]
        assert lines[3].split() == ["Beta", "0", "1", "10.0000"]

    def test_regressions_table(self, seeded_path, capsys):
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", seeded_path,
            "--baseline", "base", "--candidate", "cand",
        )
        assert code == 1
        lines = out.splitlines()
        assert "perceptible_rate: baseline base vs candidate cand" in lines[0]
        assert lines[1].split() == [
            "APP", "BASELINE", "CANDIDATE", "DELTA", "VERDICT",
        ]
        assert lines[2].split() == [
            "Alpha", "0.0500", "0.3000", "+0.2500", "REGRESSED",
        ]
        assert lines[3].split() == ["Beta", "0.2000", "0.0000", "-0.2000", "ok"]

    def test_regressions_json_carries_exit_semantics(
        self, seeded_path, capsys
    ):
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", seeded_path,
            "--baseline", "base", "--candidate", "cand", "--json",
        )
        assert code == 1
        report = json.loads(out)
        assert report["metric"] == "perceptible_rate"
        entries = {e["application"]: e for e in report["entries"]}
        assert entries["Alpha"]["regressed"]
        assert not entries["Beta"]["regressed"]

    def test_empty_warehouse_prints_placeholders(self, tmp_path, capsys):
        path = str(tmp_path / "empty.sqlite")
        StudyWarehouse(path).schema_version()  # create an empty file
        _, out, _ = run_query(capsys, "runs", "--warehouse", path)
        assert out == "no runs recorded\n"
        _, out, _ = run_query(capsys, "aggregate", "--warehouse", path)
        assert out == "no sessions match\n"
        _, out, _ = run_query(capsys, "top", "--warehouse", path)
        assert out == "no patterns match\n"


# ----------------------------------------------------------------------
# Hostile identifiers: parameterized SQL end to end
# ----------------------------------------------------------------------


HOSTILE_IDENTIFIERS = [
    "app'; DROP TABLE sessions; --",
    'app" OR "1"="1',
    "../../etc/passwd",
    "Robert'); DELETE FROM patterns;--",
    "名前 アプリ",
    "app\\with\\backslashes",
]


class TestHostileIdentifiers:
    @pytest.mark.parametrize("hostile", HOSTILE_IDENTIFIERS)
    def test_query_filters_treat_identifiers_as_data(
        self, tmp_path, capsys, hostile
    ):
        wh = StudyWarehouse(tmp_path / "wh.sqlite")
        wh.ingest_session(
            hostile, hostile, "s0", make_stats(hostile, traced=7.0),
            pattern_counts={hostile: (3, 2)}, trace_digest="d", ts=100.0,
        )
        wh.ingest_session(
            "clean-run", "CleanApp", "s0", make_stats("CleanApp"),
            trace_digest="e", ts=100.0,
        )
        path = str(wh.path)
        code, out, _ = run_query(
            capsys, "aggregate", "--warehouse", path,
            "--apps", hostile, "--json",
        )
        assert code == 0
        rows = json.loads(out)
        assert [row["application"] for row in rows] == [hostile]
        assert rows[0]["traced_episodes"] == 7
        code, out, _ = run_query(
            capsys, "top", "--warehouse", path,
            "--apps", hostile, "--runs", hostile, "--json",
        )
        assert code == 0
        assert json.loads(out)[0]["pattern_key"] == hostile
        code, out, _ = run_query(
            capsys, "regressions", "--warehouse", path,
            "--baseline", hostile, "--candidate", "clean-run", "--json",
        )
        assert code in (0, 1)
        # Nothing was dropped or deleted by the hostile strings.
        connection = sqlite3.connect(path)
        try:
            assert connection.execute(
                "SELECT COUNT(*) FROM sessions"
            ).fetchone()[0] == 2
            assert connection.execute(
                "SELECT COUNT(*) FROM patterns"
            ).fetchone()[0] == 1
        finally:
            connection.close()


# ----------------------------------------------------------------------
# End to end: study --warehouse, then query — the acceptance pin
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_study_builds_queryable_warehouse(self, tmp_path, capsys):
        warehouse = tmp_path / "wh.sqlite"
        code = main([
            "study", "--apps", "CrosswordSage", "--sessions", "1",
            "--scale", "0.05", "--workers", "1",
            "-o", str(tmp_path / "out"),
            "--cache-dir", str(tmp_path / "cache"),
            "--warehouse", str(warehouse),
            "--warehouse-run-id", "cli-run",
        ])
        assert code == 0
        capsys.readouterr()
        code, out, _ = run_query(
            capsys, "runs", "--warehouse", str(warehouse), "--json"
        )
        assert code == 0
        records = json.loads(out)
        assert [r["run_id"] for r in records] == ["cli-run"]
        assert records[0]["sessions"] == 1
        assert records[0]["source"] == "bundles"

    def test_top_query_matches_recomputed_summaries(self, tmp_path, capsys):
        """`study query top --analyses perceptible_lag` over a warehouse
        compacted from the golden corpus returns values identical to
        recomputing via ``LagAlyzer.summaries()`` — the ISSUE's
        acceptance pin, through the real CLI."""
        analyzer = LagAlyzer.load(
            TRACE_PATHS,
            config=AnalysisConfig(perceptible_threshold_ms=100.0),
        )
        engine = AnalysisEngine(workers=1, cache_dir=tmp_path / "cache")
        engine.map_traces(INGEST_ANALYSES, analyzer.traces, analyzer.config)
        warehouse = StudyWarehouse(tmp_path / "wh.sqlite")
        warehouse.ingest_bundles(
            ResultCache(tmp_path / "cache"), "golden",
            config_fingerprint=config_fingerprint(analyzer.config),
        )

        code, out, _ = run_query(
            capsys, "top", "--warehouse", str(warehouse.path),
            "--analyses", "perceptible_lag", "-n", "100000", "--json",
        )
        assert code == 0
        rows = json.loads(out)

        # Recompute through the exact pass summaries() reduces.
        from repro.core.plan import build_plan

        plan = build_plan(INGEST_ANALYSES)
        merged: dict = {}
        for trace in analyzer.traces:
            partial = plan.execute(trace, analyzer.config)["occurrence"]
            for key, (count, perceptible) in partial.counts.items():
                prev_count, prev_perceptible = merged.get(key, (0, 0))
                merged[key] = (
                    prev_count + count, prev_perceptible + perceptible
                )
        assert {
            row["pattern_key"]: (row["occurrences"], row["perceptible"])
            for row in rows
        } == merged
        perceptibles = [row["perceptible"] for row in rows]
        assert perceptibles == sorted(perceptibles, reverse=True)
