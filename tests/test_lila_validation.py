"""Tests for the trace linter."""


from repro.lila.validation import (
    Diagnostic,
    Severity,
    has_errors,
    lint_trace,
)

from helpers import dispatch, gc_iv, gui_sample, listener_iv, make_trace


def _codes(diagnostics):
    return {d.code for d in diagnostics}


class TestCleanTrace:
    def test_healthy_trace_is_clean(self):
        trace = make_trace(
            [dispatch(0.0, 50.0, [listener_iv("l", 0.0, 49.0)])],
            samples=[gui_sample(10.0), gui_sample(20.0), gui_sample(30.0)],
            e2e_ms=1000.0,
            short_count=10,
        )
        diagnostics = lint_trace(trace)
        assert not has_errors(diagnostics)
        assert "EP001" not in _codes(diagnostics)


class TestEpisodeChecks:
    def test_sub_filter_episode_flagged(self):
        trace = make_trace([dispatch(0.0, 1.0)], short_count=5)
        assert "EP001" in _codes(lint_trace(trace))

    def test_absurd_episode_flagged(self):
        trace = make_trace(
            [dispatch(0.0, 700_000.0)], e2e_ms=800_000.0
        )
        assert "EP002" in _codes(lint_trace(trace))


class TestGcChecks:
    def test_missing_gc_replication_flagged(self):
        trace = make_trace(
            [dispatch(0.0, 50.0, [listener_iv("l", 0.0, 49.0,
                                              [gc_iv(10.0, 20.0)])])],
            extra_threads={"worker": []},  # worker lacks the GC copy
        )
        diagnostics = lint_trace(trace)
        assert "GC001" in _codes(diagnostics)

    def test_replicated_gc_is_fine(self):
        trace = make_trace(
            [dispatch(0.0, 50.0, [listener_iv("l", 0.0, 49.0,
                                              [gc_iv(10.0, 20.0)])])],
            extra_threads={"worker": [gc_iv(10.0, 20.0)]},
        )
        assert "GC001" not in _codes(lint_trace(trace))


class TestSampleChecks:
    def test_no_samples_flagged(self):
        trace = make_trace([dispatch(0.0, 50.0)])
        assert "SM001" in _codes(lint_trace(trace))

    def test_samples_inside_gc_are_an_error(self):
        trace = make_trace(
            [dispatch(0.0, 100.0, [gc_iv(20.0, 60.0)])],
            samples=[gui_sample(30.0)],  # impossible under JVMTI
        )
        diagnostics = lint_trace(trace)
        assert "SM002" in _codes(diagnostics)
        assert has_errors(diagnostics)

    def test_sample_rate_mismatch_flagged(self):
        # Declared period 10 ms; actual spacing 50 ms.
        samples = [gui_sample(float(t)) for t in range(0, 1000, 50)]
        trace = make_trace([dispatch(0.0, 999.0)], samples=samples)
        assert "SM004" in _codes(lint_trace(trace))


class TestSessionChecks:
    def test_empty_session_flagged(self):
        trace = make_trace([], short_count=0)
        assert "TR001" in _codes(lint_trace(trace))

    def test_replay_like_session_noted(self):
        trace = make_trace([dispatch(0.0, 990.0)], e2e_ms=1000.0)
        assert "TR002" in _codes(lint_trace(trace))


class TestOrdering:
    def test_errors_sort_first(self):
        trace = make_trace(
            [dispatch(0.0, 100.0, [gc_iv(20.0, 60.0)])],
            samples=[gui_sample(30.0)],
        )
        diagnostics = lint_trace(trace)
        severities = [d.severity for d in diagnostics]
        assert severities[0] is Severity.ERROR

    def test_str_format(self):
        diagnostic = Diagnostic(Severity.WARNING, "X001", "something")
        assert "WARNING" in str(diagnostic)
        assert "X001" in str(diagnostic)
