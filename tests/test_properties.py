"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.intervals import (
    Interval,
    IntervalKind,
    IntervalTreeBuilder,
    merge_adjacent,
    total_span_ns,
)
from repro.core.patterns import PatternTable, key_depth, pattern_key
from repro.core.samples import (
    Sample,
    StackFrame,
    StackTrace,
    ThreadSample,
    ThreadState,
    samples_in_range,
)
from repro.lila.format import (
    decode_frame,
    decode_stack,
    encode_frame,
    encode_stack,
)

from helpers import GUI, dispatch, episode, listener_iv

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_identifier = st.text(
    alphabet=string.ascii_letters + string.digits + "_$",
    min_size=1,
    max_size=12,
)

_class_name = st.builds(
    lambda parts: ".".join(parts),
    st.lists(_identifier, min_size=1, max_size=4),
)

_frame = st.builds(
    StackFrame,
    class_name=_class_name,
    method_name=_identifier,
    is_native=st.booleans(),
)

_stack = st.builds(StackTrace, st.lists(_frame, max_size=6))


@st.composite
def _event_sequences(draw):
    """Random well-formed open/close event sequences for the builder."""
    events = []
    time = 0
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        time += draw(st.integers(min_value=0, max_value=50))
        if depth == 0 or draw(st.booleans()):
            kind = draw(st.sampled_from(list(IntervalKind)))
            events.append(("open", kind, time))
            depth += 1
        else:
            events.append(("close", None, time))
            depth -= 1
    while depth > 0:
        time += draw(st.integers(min_value=0, max_value=50))
        events.append(("close", None, time))
        depth -= 1
    return events


@st.composite
def _interval_trees(draw, max_depth=3):
    """Random properly nested trees via the builder."""
    builder = IntervalTreeBuilder()
    for action, kind, time in draw(_event_sequences()):
        if action == "open":
            builder.open(kind, "sym", time)
        else:
            builder.close(time)
    return builder.finish()


# ----------------------------------------------------------------------
# Interval invariants
# ----------------------------------------------------------------------


@given(_interval_trees())
@settings(max_examples=60)
def test_builder_output_always_validates(roots):
    for root in roots:
        root.validate()


@given(_interval_trees())
@settings(max_examples=60)
def test_descendant_count_matches_traversal(roots):
    for root in roots:
        assert root.descendant_count() == sum(1 for _ in root.descendants())


@given(_interval_trees())
@settings(max_examples=60)
def test_children_nest_in_time(roots):
    for root in roots:
        for node in root.preorder():
            for child in node.children:
                assert node.start_ns <= child.start_ns
                assert child.end_ns <= node.end_ns


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=200),
), max_size=20))
@settings(max_examples=60)
def test_merge_adjacent_disjoint_and_sorted(raw):
    intervals = [
        Interval(IntervalKind.GC, "g", start, start + length)
        for start, length in raw
    ]
    merged = merge_adjacent(intervals)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # Coverage is preserved: every original point lies in some span.
    for interval in intervals:
        assert any(
            s <= interval.start_ns and interval.end_ns <= e
            for s, e in merged
        )
    assert total_span_ns(intervals) == sum(e - s for s, e in merged)


# ----------------------------------------------------------------------
# Pattern-key invariants
# ----------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=500))
@settings(max_examples=40)
def test_pattern_key_ignores_timing(a_ms, b_ms):
    ep_a = episode(dispatch(0.0, float(a_ms),
                            [listener_iv("x.Y.m", 0.0, float(a_ms) * 0.9)]))
    ep_b = episode(dispatch(0.0, float(b_ms),
                            [listener_iv("x.Y.m", 0.0, float(b_ms) * 0.9)]))
    assert pattern_key(ep_a) == pattern_key(ep_b)


@given(_interval_trees())
@settings(max_examples=60)
def test_key_depth_never_exceeds_tree_depth(roots):
    for root in roots:
        if root.kind is not IntervalKind.DISPATCH:
            continue
        ep = episode(root)
        assert key_depth(pattern_key(ep)) <= root.depth()


@given(_interval_trees())
@settings(max_examples=60)
def test_pattern_table_covers_structured_episodes(roots):
    episodes = [
        episode(root, index=i)
        for i, root in enumerate(roots)
        if root.kind is IntervalKind.DISPATCH
    ]
    table = PatternTable.from_episodes(episodes)
    structured = sum(1 for ep in episodes if ep.has_structure)
    assert table.covered_episodes == structured
    assert table.covered_episodes + table.excluded_episodes == len(episodes)


# ----------------------------------------------------------------------
# Sample slicing
# ----------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=40),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60)
def test_samples_in_range_matches_filter(times, a, b):
    start, end = min(a, b), max(a, b)
    samples = [
        Sample(t, [ThreadSample(GUI, ThreadState.RUNNABLE)])
        for t in sorted(times)
    ]
    picked = samples_in_range(samples, start, end)
    expected = [s for s in samples if start <= s.timestamp_ns < end]
    assert [s.timestamp_ns for s in picked] == [
        s.timestamp_ns for s in expected
    ]


# ----------------------------------------------------------------------
# LiLa format round trips
# ----------------------------------------------------------------------


@given(_frame)
@settings(max_examples=100)
def test_frame_roundtrip(frame):
    assert decode_frame(encode_frame(frame)) == frame


@given(_stack)
@settings(max_examples=100)
def test_stack_roundtrip(stack):
    assert decode_stack(encode_stack(stack)) == stack
