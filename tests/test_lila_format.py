"""Unit tests for the LiLa format grammar (frames, stacks, header)."""

import pytest

from repro.core.errors import TraceFormatError
from repro.core.samples import StackFrame, StackTrace
from repro.lila.format import (
    EMPTY_STACK_TOKEN,
    FORMAT_VERSION,
    MAGIC,
    check_symbol,
    decode_frame,
    decode_stack,
    encode_frame,
    encode_stack,
    header_line,
    parse_header,
)


class TestSymbols:
    def test_accepts_java_identifiers(self):
        assert check_symbol("javax.swing.JFrame.paint") == (
            "javax.swing.JFrame.paint"
        )
        assert check_symbol("com.x.Inner$1.run") == "com.x.Inner$1.run"

    def test_rejects_empty(self):
        with pytest.raises(TraceFormatError, match="empty"):
            check_symbol("")

    @pytest.mark.parametrize("bad", ["a b", "a\tb", "a\nb", "a;b"])
    def test_rejects_separators(self, bad):
        with pytest.raises(TraceFormatError, match="forbidden"):
            check_symbol(bad)


class TestFrames:
    def test_roundtrip_java_frame(self):
        frame = StackFrame("javax.swing.JFrame", "paint")
        assert decode_frame(encode_frame(frame)) == frame

    def test_roundtrip_native_frame(self):
        frame = StackFrame("sun.java2d.loops.DrawLine", "DrawLine",
                           is_native=True)
        token = encode_frame(frame)
        assert token.startswith("!")
        assert decode_frame(token) == frame

    def test_decode_rejects_malformed(self):
        with pytest.raises(TraceFormatError, match="malformed stack frame"):
            decode_frame("no-separator")

    def test_decode_rejects_empty_parts(self):
        with pytest.raises(TraceFormatError):
            decode_frame("#method")
        with pytest.raises(TraceFormatError):
            decode_frame("class#")

    def test_class_names_with_inner_classes(self):
        frame = StackFrame("com.apple.laf.AquaComboBoxUI$1", "actionPerformed")
        assert decode_frame(encode_frame(frame)) == frame


class TestStacks:
    def test_empty_stack_token(self):
        assert encode_stack(StackTrace(())) == EMPTY_STACK_TOKEN
        assert decode_stack(EMPTY_STACK_TOKEN) == StackTrace(())

    def test_roundtrip_preserves_order(self):
        stack = StackTrace(
            [
                StackFrame("a.Leaf", "m", is_native=True),
                StackFrame("b.Mid", "n"),
                StackFrame("c.Base", "run"),
            ]
        )
        assert decode_stack(encode_stack(stack)) == stack


class TestHeader:
    def test_header_roundtrip(self):
        assert parse_header(header_line()) == FORMAT_VERSION

    def test_rejects_wrong_magic(self):
        with pytest.raises(TraceFormatError, match="not a LiLa trace"):
            parse_header("#%other 1")

    def test_rejects_wrong_version(self):
        with pytest.raises(TraceFormatError, match="unsupported"):
            parse_header(f"{MAGIC} 99")

    def test_rejects_garbage_version(self):
        with pytest.raises(TraceFormatError, match="bad version"):
            parse_header(f"{MAGIC} one")

    def test_rejects_extra_tokens(self):
        with pytest.raises(TraceFormatError):
            parse_header(f"{MAGIC} 1 extra")
