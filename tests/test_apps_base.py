"""Tests for the template catalog machinery."""

import pytest

from repro.apps.base import AppSpec, TemplateCatalog
from repro.apps.sessions import build_catalog, build_window
from repro.core.errors import SimulationError
from repro.vm.rng import RngStream


def small_spec(**overrides):
    defaults = dict(
        name="MiniApp",
        version="1.0",
        classes=10,
        description="test app",
        package="org.mini",
        content_classes=("Canvas", "Panel"),
        listener_vocab=("ClickListener", "KeyListener"),
        e2e_s=60.0,
        traced_per_min=300.0,
        micro_per_min=1000.0,
        n_common_templates=40,
        rare_per_session=10,
    )
    defaults.update(overrides)
    return AppSpec(**defaults)


def make_catalog(spec=None):
    spec = spec or small_spec()
    return TemplateCatalog(spec, RngStream(5), build_window(spec))


class TestSpecValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(SimulationError):
            small_spec(e2e_s=0.0).validate()

    def test_rejects_negative_rates(self):
        with pytest.raises(SimulationError):
            small_spec(traced_per_min=-1.0).validate()

    def test_rejects_empty_vocab(self):
        with pytest.raises(SimulationError):
            small_spec(listener_vocab=()).validate()

    def test_rejects_bad_weights(self):
        with pytest.raises(SimulationError):
            small_spec(
                input_weight=0.0, output_weight=0.0,
                async_weight=0.0, unspec_weight=0.0,
            ).validate()


class TestTemplateCatalog:
    def test_generates_requested_count(self):
        catalog = make_catalog()
        assert len(catalog.common) == 40

    def test_trigger_mix_weighted_by_popularity(self):
        spec = small_spec(
            n_common_templates=100,
            input_weight=0.5, output_weight=0.3,
            async_weight=0.05, unspec_weight=0.15,
        )
        catalog = make_catalog(spec)
        total = sum(t.weight for t in catalog.common)
        input_share = sum(
            t.weight for t in catalog.common if t.trigger == "input"
        ) / total
        assert input_share == pytest.approx(0.5, abs=0.08)

    def test_slow_share_calibrated(self):
        spec = small_spec(
            n_common_templates=120, slow_share_target=0.05
        )
        catalog = make_catalog(spec)
        # Identify slow templates by weight share: execute is too
        # expensive here, so approximate via the chooser invariant —
        # total weight of templates that exceed the fast median.
        # Instead, verify through the public contract: per-template
        # structure is fixed and deterministic.
        weights = [t.weight for t in catalog.common]
        assert weights[0] >= weights[-1]

    def test_templates_deterministic_across_builds(self):
        spec = small_spec()
        a = TemplateCatalog(spec, RngStream(5), build_window(spec))
        b = TemplateCatalog(spec, RngStream(5), build_window(spec))
        assert [t.name for t in a.common] == [t.name for t in b.common]
        assert [t.trigger for t in a.common] == [t.trigger for t in b.common]

    def test_rare_templates_unique(self):
        catalog = make_catalog()
        names = {catalog.make_rare().name for _ in range(10)}
        assert len(names) == 10

    def test_pick_common_respects_weights(self):
        catalog = make_catalog()
        rng = RngStream(11)
        picks = [catalog.pick_common(rng).name for _ in range(500)]
        top = catalog.common[0].name
        # The rank-0 template must be the most common pick by far.
        assert picks.count(top) >= max(
            picks.count(t.name) for t in catalog.common[1:]
        )

    def test_unspec_templates_never_slow(self):
        # Build with a large slow target to stress the exclusion.
        spec = small_spec(n_common_templates=80, slow_share_target=0.5,
                          unspec_weight=0.5)
        catalog = make_catalog(spec)
        # Unspec templates produce dispatches without children: check
        # via behavior structure (they contain only Compute steps).
        from repro.vm.behavior import Compute

        for template in catalog.common:
            if template.trigger == "unspec":
                assert all(
                    isinstance(step, Compute)
                    for step in template.behavior.steps
                )


class TestWindow:
    def test_build_window_uses_spec_shape(self):
        spec = small_spec(paint_depth=3, paint_fanout=1)
        window = build_window(spec)
        assert window.depth() == 3 + 3  # chrome + content

    def test_build_catalog_stable_across_sessions(self):
        spec = small_spec()
        a = build_catalog(spec, seed=123)
        b = build_catalog(spec, seed=123)
        assert [t.name for t in a.common] == [t.name for t in b.common]
