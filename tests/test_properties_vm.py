"""Property-based tests on the simulator's invariants."""


from hypothesis import given, settings, strategies as st

from repro.core.intervals import IntervalKind
from repro.vm.behavior import (
    Behavior,
    Block,
    Compute,
    ExecutionContext,
    NativeCall,
    Sleep,
    Wait,
    java_stack,
    listener,
    native_stack,
)
from repro.vm.clock import VirtualClock
from repro.vm.heap import Heap, HeapConfig
from repro.vm.rng import RngStream
from repro.vm.threads import ThreadTimeline
from repro.vm.tracer import TraceCollector

GUI = "AWT-EventQueue-0"


@st.composite
def _behaviors(draw):
    """Random small behaviours with deterministic durations."""
    def step(depth):
        choice = draw(st.integers(min_value=0, max_value=5))
        duration = draw(
            st.floats(min_value=0.1, max_value=30.0, allow_nan=False)
        )
        stack = java_stack("org.app.X", "m")
        if choice == 0:
            return Compute(duration, stack, sigma=0.0,
                           alloc_bytes_per_ms=draw(
                               st.integers(min_value=0, max_value=200_000)))
        if choice == 1:
            return Sleep(duration, stack, sigma=0.0)
        if choice == 2:
            return Wait(duration, stack, sigma=0.0)
        if choice == 3:
            return Block(duration, stack, sigma=0.0)
        if choice == 4:
            return NativeCall(
                "sun.x.Y.n", duration, native_stack("sun.x.Y", "n"),
                sigma=0.0,
            )
        body = (
            [step(depth + 1)]
            if depth < 2 and draw(st.booleans())
            else []
        )
        return listener(f"a.L{draw(st.integers(0, 5))}.run", body)

    steps = [step(0) for _ in range(draw(st.integers(1, 5)))]
    return Behavior(steps)


def _run(behavior, young_mb=4):
    clock = VirtualClock()
    rng = RngStream(13)
    heap = Heap(
        HeapConfig(young_capacity_bytes=young_mb * 1024 * 1024,
                   pause_jitter=0.0),
        rng.fork("heap"),
    )
    tracer = TraceCollector(GUI, filter_ms=0.0, rng=rng.fork("tracer"))
    timeline = ThreadTimeline(GUI)
    ctx = ExecutionContext(clock, rng.fork("exec"), heap, tracer, timeline)
    tracer.begin_episode(clock.now_ns)
    behavior.execute(ctx)
    root = tracer.end_episode(clock.now_ns)
    return root, ctx


@given(_behaviors())
@settings(max_examples=50, deadline=None)
def test_episode_tree_always_validates(behavior):
    root, _ = _run(behavior)
    root.validate()


@given(_behaviors())
@settings(max_examples=50, deadline=None)
def test_timeline_covers_episode_minus_gc(behavior):
    root, ctx = _run(behavior)
    gc_ns = sum(
        n.duration_ns for n in root.preorder()
        if n.kind is IntervalKind.GC
    )
    # The EDT timeline accounts for every non-GC nanosecond of the
    # episode (during GC all threads are stopped, nothing is recorded).
    assert ctx.edt_timeline.busy_ns() == root.duration_ns - gc_ns


@given(_behaviors())
@settings(max_examples=50, deadline=None)
def test_heap_never_left_over_capacity(behavior):
    _, ctx = _run(behavior, young_mb=1)
    # After execution, young occupancy never exceeds capacity plus one
    # chunk's worth of allocation (the collection fires on crossing).
    max_chunk_alloc = int(200_000 * ExecutionContext.CHUNK_MS)
    assert ctx.heap.young_used <= (
        ctx.heap.config.young_capacity_bytes + max_chunk_alloc
    )


@given(_behaviors())
@settings(max_examples=50, deadline=None)
def test_blackouts_cover_every_gc(behavior):
    root, ctx = _run(behavior, young_mb=1)
    blackouts = ctx.tracer.merged_blackouts()
    for node in root.preorder():
        if node.kind is not IntervalKind.GC:
            continue
        assert any(
            start <= node.start_ns and node.end_ns <= end
            for start, end in blackouts
        )


@given(st.integers(min_value=1, max_value=10_000_000),
       st.lists(st.integers(min_value=0, max_value=500_000), max_size=40))
@settings(max_examples=60)
def test_heap_collection_counts(young, allocations):
    heap = Heap(
        HeapConfig(young_capacity_bytes=young, pause_jitter=0.0),
        RngStream(3),
    )
    collections = 0
    for nbytes in allocations:
        request = heap.allocate(nbytes)
        if request is not None:
            heap.collected(request)
            collections += 1
    assert heap.minor_count + heap.major_count == collections
    assert heap.young_used < young + 500_001
