"""Tests for the parallel map-reduce engine and its result cache.

The load-bearing property: for every analysis, every worker count, and
every cache temperature, the produced summary is byte-identical
(``pickle.dumps`` equal) to the serial uncached ``summarize()``.
"""

import pickle

import pytest

from repro.apps.sessions import simulate_sessions
from repro.core.analyses import REGISTRY, get_analysis
from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.errors import AnalysisError
from repro.engine import AnalysisEngine, MISS, ResultCache, parallel_map
from repro.engine.cache import config_fingerprint
from repro.lila.digest import file_digest, trace_digest

from helpers import dispatch, listener_iv, make_trace

ANALYSES = sorted(REGISTRY)
WORKER_COUNTS = (1, 2, 4)
SEEDS = (11, 42)


@pytest.fixture(scope="module")
def trace_sets():
    """Per-seed simulated session pairs (small but structurally rich)."""
    return {
        seed: simulate_sessions(
            "CrosswordSage", count=2, seed=seed, scale=0.04
        )
        for seed in SEEDS
    }


def _serial(analysis_name, traces, config, perceptible_only=False):
    return get_analysis(analysis_name).summarize(
        traces, config, perceptible_only=perceptible_only
    )


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("analysis_name", ANALYSES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_summary_identical_across_workers(
        self, trace_sets, analysis_name, workers
    ):
        config = AnalysisConfig()
        for seed, traces in trace_sets.items():
            expected = _serial(analysis_name, traces, config)
            engine = AnalysisEngine(workers=workers, use_cache=False)
            got = engine.summarize(analysis_name, traces, config)
            assert pickle.dumps(got) == pickle.dumps(expected), (
                f"{analysis_name} differs at workers={workers}, seed={seed}"
            )

    @pytest.mark.parametrize(
        "analysis_name", ["triggers", "location", "concurrency", "threadstates"]
    )
    def test_perceptible_only_identical(self, trace_sets, analysis_name):
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[0]]
        expected = _serial(analysis_name, traces, config, perceptible_only=True)
        engine = AnalysisEngine(workers=2, use_cache=False)
        got = engine.summarize(
            analysis_name, traces, config, perceptible_only=True
        )
        assert pickle.dumps(got) == pickle.dumps(expected)

    def test_reduce_is_order_sensitive_like_serial(self, trace_sets):
        """Partials merged in trace order reproduce pattern tie-breaks."""
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[0]]
        analysis = get_analysis("patterns")
        partials = [analysis.map_trace(t, config) for t in traces]
        merged = analysis.reduce(partials)
        analyzer = LagAlyzer.from_traces(traces, config=config)
        table = analyzer.pattern_table()
        assert merged.distinct_patterns == table.distinct_count
        assert merged.covered_episodes == table.covered_episodes
        assert list(merged.cdf) == table.cumulative_episode_distribution()


class TestCachedEquivalence:
    @pytest.mark.parametrize("analysis_name", ANALYSES)
    def test_cached_summary_identical(
        self, trace_sets, analysis_name, tmp_path
    ):
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[0]]
        expected = _serial(analysis_name, traces, config)
        cold = AnalysisEngine(workers=1, cache_dir=tmp_path)
        got_cold = cold.summarize(analysis_name, traces, config)
        assert cold.cache.stats.hits == 0
        assert cold.cache.stats.stores == len(traces)
        warm = AnalysisEngine(workers=1, cache_dir=tmp_path)
        got_warm = warm.summarize(analysis_name, traces, config)
        assert warm.cache.stats.hits == len(traces)
        assert warm.cache.stats.misses == 0
        assert pickle.dumps(got_cold) == pickle.dumps(expected)
        assert pickle.dumps(got_warm) == pickle.dumps(expected)

    def test_warm_cache_skips_all_map_work(self, trace_sets, tmp_path):
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[1]]
        names = list(REGISTRY)
        cold = AnalysisEngine(cache_dir=tmp_path)
        cold.map_traces(names, traces, config)
        # Cold: every legacy entry misses and is stored, plus one fused
        # bundle per trace.
        assert cold.cache.stats.misses == len(names) * len(traces)
        assert cold.cache.stats.stores == len(names) * len(traces)
        assert cold.cache.stats.bundle_misses == len(traces)
        assert cold.cache.stats.bundle_stores == len(traces)
        warm = AnalysisEngine(cache_dir=tmp_path)
        warm.map_traces(names, traces, config)
        # Warm: the whole multi-analysis request is served from one
        # bundle read per trace; the legacy entries are never touched.
        assert warm.cache.stats.misses == 0
        assert warm.cache.stats.bundle_misses == 0
        assert warm.cache.stats.hits == 0
        assert warm.cache.stats.bundle_hits == len(traces)

    def test_legacy_entries_serve_single_analysis_after_fused_run(
        self, trace_sets, tmp_path
    ):
        """Per-analysis lookups still hit after a fused multi-analysis run."""
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[1]]
        AnalysisEngine(cache_dir=tmp_path).map_traces(
            list(REGISTRY), traces, config
        )
        warm = AnalysisEngine(cache_dir=tmp_path)
        warm.summarize("triggers", traces, config)
        assert warm.cache.stats.hits == len(traces)
        assert warm.cache.stats.misses == 0

    def test_fused_subset_plan_reuses_legacy_entries(
        self, trace_sets, tmp_path
    ):
        """A different analysis subset (new plan fingerprint) misses its
        bundle but is still served from the legacy per-analysis entries."""
        config = AnalysisConfig()
        traces = trace_sets[SEEDS[1]]
        AnalysisEngine(cache_dir=tmp_path).map_traces(
            list(REGISTRY), traces, config
        )
        warm = AnalysisEngine(cache_dir=tmp_path)
        warm.map_traces(["triggers", "location"], traces, config)
        assert warm.cache.stats.bundle_misses == len(traces)
        assert warm.cache.stats.hits == 2 * len(traces)
        assert warm.cache.stats.misses == 0
        # The subset bundle was backfilled; a third run reads it directly.
        assert warm.cache.stats.bundle_stores == len(traces)
        third = AnalysisEngine(cache_dir=tmp_path)
        third.map_traces(["triggers", "location"], traces, config)
        assert third.cache.stats.bundle_hits == len(traces)
        assert third.cache.stats.hits == 0

    def test_config_change_invalidates(self, trace_sets, tmp_path):
        traces = trace_sets[SEEDS[0]]
        engine = AnalysisEngine(cache_dir=tmp_path)
        engine.summarize("triggers", traces, AnalysisConfig())
        engine.summarize(
            "triggers", traces, AnalysisConfig(perceptible_threshold_ms=150.0)
        )
        assert engine.cache.stats.hits == 0
        assert engine.cache.stats.misses == 2 * len(traces)


class TestCacheRobustness:
    def _one_entry(self, tmp_path):
        trace = make_trace(
            [dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)])]
        )
        config = AnalysisConfig()
        engine = AnalysisEngine(cache_dir=tmp_path)
        expected = engine.summarize("triggers", [trace], config)
        entries = list(engine.cache._entries())
        assert len(entries) == 1
        return trace, config, entries[0], expected

    def test_truncated_entry_discarded(self, tmp_path):
        trace, config, entry, expected = self._one_entry(tmp_path)
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) // 2])
        engine = AnalysisEngine(cache_dir=tmp_path)
        got = engine.summarize("triggers", [trace], config)
        assert pickle.dumps(got) == pickle.dumps(expected)
        assert engine.cache.stats.discarded == 1
        assert engine.cache.stats.hits == 0

    def test_garbage_entry_discarded(self, tmp_path):
        trace, config, entry, expected = self._one_entry(tmp_path)
        entry.write_bytes(b"this is not a cache entry at all")
        engine = AnalysisEngine(cache_dir=tmp_path)
        got = engine.summarize("triggers", [trace], config)
        assert pickle.dumps(got) == pickle.dumps(expected)
        assert engine.cache.stats.discarded == 1

    def test_checksum_mismatch_discarded(self, tmp_path):
        trace, config, entry, expected = self._one_entry(tmp_path)
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit
        entry.write_bytes(bytes(blob))
        engine = AnalysisEngine(cache_dir=tmp_path)
        got = engine.summarize("triggers", [trace], config)
        assert pickle.dumps(got) == pickle.dumps(expected)
        assert engine.cache.stats.discarded == 1

    def test_discarded_entry_is_rewritten(self, tmp_path):
        trace, config, entry, _ = self._one_entry(tmp_path)
        entry.write_bytes(b"garbage")
        engine = AnalysisEngine(cache_dir=tmp_path)
        engine.summarize("triggers", [trace], config)
        warm = AnalysisEngine(cache_dir=tmp_path)
        warm.summarize("triggers", [trace], config)
        assert warm.cache.stats.hits == 1

    def test_clear_and_stats(self, tmp_path):
        trace, config, entry, _ = self._one_entry(tmp_path)
        cache = ResultCache(tmp_path)
        assert cache.entry_count() == 1
        assert cache.total_bytes() > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.get("0" * 64) is MISS

    def test_stats_flush_accumulates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.stats.hits = 3
        cache.stats.misses = 1
        cache.flush_stats()
        cache.stats.hits = 2
        total = cache.flush_stats()
        assert total.hits == 5
        assert total.misses == 1
        assert ResultCache(tmp_path).persisted_stats().hits == 5


class TestDigests:
    def test_trace_digest_stable_and_memoized(self, trace_sets):
        trace = trace_sets[SEEDS[0]][0]
        first = trace_digest(trace)
        assert first == trace_digest(trace)
        assert len(first) == 64

    def test_digest_distinguishes_sessions(self, trace_sets):
        a, b = trace_sets[SEEDS[0]]
        assert trace_digest(a) != trace_digest(b)

    def test_file_digest_tracks_content(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"abc")
        first = file_digest(path)
        path.write_bytes(b"abcd")
        assert file_digest(path) != first

    def test_config_fingerprint_sensitivity(self):
        base = AnalysisConfig()
        assert config_fingerprint(base) == config_fingerprint(AnalysisConfig())
        assert config_fingerprint(base) != config_fingerprint(
            AnalysisConfig(perceptible_threshold_ms=150.0)
        )
        assert config_fingerprint(base) != config_fingerprint(
            AnalysisConfig(include_gc_in_patterns=True)
        )


class TestScheduler:
    def test_parallel_map_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1], workers=2) == [3, 2, 1]

    def test_serial_fallback_for_single_item(self):
        assert parallel_map(abs, [-7], workers=8) == [7]

    def test_task_errors_propagate(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map((1).__truediv__, [1, 0], workers=1)

    def test_negative_workers_rejected(self):
        with pytest.raises(AnalysisError):
            parallel_map(abs, [1, 2], workers=-2)


class TestStudyParallelism:
    @staticmethod
    def _tiny_config():
        from repro.study.runner import StudyConfig

        return StudyConfig(
            sessions=2, scale=0.04, applications=("CrosswordSage", "JFreeChart")
        )

    def test_run_study_workers_and_cache_identical(self, tmp_path):
        from repro.study.runner import run_study

        config = self._tiny_config()
        baseline = run_study(config, workers=1, use_cache=False)
        variants = {
            "workers=2": run_study(config, workers=2, use_cache=False),
            "cold cache": run_study(config, workers=1, cache_dir=tmp_path),
            "warm cache": run_study(config, workers=2, cache_dir=tmp_path),
        }
        for name in baseline.apps:
            expected = pickle.dumps(baseline.apps[name])
            for label, result in variants.items():
                assert pickle.dumps(result.apps[name]) == expected, (
                    f"{name} differs under {label}"
                )

    def test_warm_study_run_does_no_map_work(self, tmp_path):
        from repro.study.runner import StudyConfig, analyze_app

        config = StudyConfig(
            sessions=1, scale=0.04, applications=("CrosswordSage",)
        )
        cold = AnalysisEngine(cache_dir=tmp_path)
        analyze_app("CrosswordSage", config, engine=cold)
        assert cold.cache.stats.stores > 0
        assert cold.cache.stats.bundle_stores == config.sessions
        warm = AnalysisEngine(cache_dir=tmp_path)
        analyze_app("CrosswordSage", config, engine=warm)
        # The warm study is served entirely from fused bundles: no
        # legacy probes, no misses, one bundle hit per session.
        assert warm.cache.stats.misses == 0
        assert warm.cache.stats.bundle_misses == 0
        assert warm.cache.stats.hits == 0
        assert warm.cache.stats.bundle_hits == cold.cache.stats.bundle_stores
