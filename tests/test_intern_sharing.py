"""Study-wide intern-table sharing and pickle byte-identity pins.

A study run columnarizes every trace through one shared string / stack
:class:`~repro.core.store.buffers.InternTable` pair, so repeated
symbols across a study's sessions intern once. The contract under test:
sharing is *invisible* — canonical lines, content digests, and every
analysis result are identical to per-trace interning — and pickled
stores are byte-stable across pickling round-trips (the engine ships
traces to workers by pickle; a round-trip must be a fixed point).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.core.analyses import REGISTRY
from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.export import analysis_to_dict
from repro.core.store.buffers import InternTable
from repro.core.store.facade import as_columnar
from repro.lila.digest import trace_digest
from repro.lila.reader import read_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACES = sorted(GOLDEN_DIR.glob("*.lila"))

CONFIG = AnalysisConfig(perceptible_threshold_ms=100.0)


def object_traces() -> list:
    """The corpus as plain object traces (what a study run simulates)."""
    return [read_trace(path).columnar.to_trace() for path in GOLDEN_TRACES]


def fresh_facades() -> list:
    return [as_columnar(trace) for trace in object_traces()]


def shared_facades() -> tuple:
    interns = InternTable()
    stack_interns = InternTable()
    facades = [
        as_columnar(trace, interns=interns, stack_interns=stack_interns)
        for trace in object_traces()
    ]
    return facades, interns, stack_interns


def by_application(facades: list) -> dict:
    grouped: dict = {}
    for facade in facades:
        grouped.setdefault(facade.metadata.application, []).append(facade)
    return grouped


def test_sharing_pools_symbols_across_traces():
    facades, interns, stack_interns = shared_facades()
    assert len(facades) > 1, "corpus too small to witness sharing"
    # Every store aliases the one shared pool...
    for facade in facades:
        assert facade.columnar.strings is interns.strings
    # ...which is strictly smaller than the per-trace tables summed
    # (the corpus apps share symbol vocabulary between sessions).
    separate = sum(len(f.columnar.strings) for f in fresh_facades())
    assert len(interns) < separate
    assert len(stack_interns) > 0


def test_sharing_is_invisible_to_serialization_and_digests():
    shared, _, _ = shared_facades()
    for fresh, pooled in zip(fresh_facades(), shared):
        assert (
            fresh.columnar.canonical_lines()
            == pooled.columnar.canonical_lines()
        )
        assert trace_digest(fresh) == trace_digest(pooled)


def test_sharing_is_invisible_to_every_analysis():
    shared, _, _ = shared_facades()
    for fresh, pooled in zip(fresh_facades(), shared):
        expected = analysis_to_dict(
            LagAlyzer.from_traces([fresh], config=CONFIG)
        )
        actual = analysis_to_dict(
            LagAlyzer.from_traces([pooled], config=CONFIG)
        )
        assert expected == actual


@pytest.mark.parametrize("mode", ("fresh", "shared"))
def test_pickle_round_trip_is_a_fixed_point(mode):
    """``dumps(loads(dumps(t)))`` == ``dumps(t)``, shared pool or not."""
    if mode == "fresh":
        facades = fresh_facades()
    else:
        facades, _, _ = shared_facades()
    for facade in facades:
        first = pickle.dumps(facade)
        restored = pickle.loads(first)
        second = pickle.dumps(restored)
        assert first == second, (
            f"pickle round-trip drifted ({mode}, "
            f"{facade.metadata.session_id})"
        )
        # The restored trace is the same trace, behaviorally.
        assert trace_digest(restored) == trace_digest(facade)
        assert (
            restored.columnar.canonical_lines()
            == facade.columnar.canonical_lines()
        )


def test_round_tripped_store_still_analyzes_identically():
    shared, _, _ = shared_facades()
    for facade in shared:
        restored = pickle.loads(pickle.dumps(facade))
        expected = analysis_to_dict(
            LagAlyzer.from_traces([facade], config=CONFIG)
        )
        actual = analysis_to_dict(
            LagAlyzer.from_traces([restored], config=CONFIG)
        )
        assert expected == actual


def test_registry_summaries_agree_between_pools():
    """Every registered analysis (causes included) reduces identically
    over a fresh-pool and a shared-pool study, app by app."""
    fresh_by_app = by_application(fresh_facades())
    shared_by_app = by_application(shared_facades()[0])
    assert fresh_by_app.keys() == shared_by_app.keys()
    names = tuple(REGISTRY)
    for app in sorted(fresh_by_app):
        fresh = LagAlyzer.from_traces(fresh_by_app[app], config=CONFIG)
        shared = LagAlyzer.from_traces(shared_by_app[app], config=CONFIG)
        assert pickle.dumps(sorted(fresh.summaries(names).items())) == (
            pickle.dumps(sorted(shared.summaries(names).items()))
        ), app
