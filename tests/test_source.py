"""The :mod:`repro.lila.source` streaming layer: records and errors.

Covers the record-stream contract shared by every reader — text file,
in-memory lines, and binary — plus the provenance contract: every
ingestion failure surfaces as :class:`TraceFormatError` stamped with
the source's path and line (text) or byte offset (binary).
"""

from __future__ import annotations

import pytest

from repro.core.errors import TraceFormatError
from repro.core.intervals import IntervalKind
from repro.core.samples import ThreadState
from repro.core.store import (
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
)
from repro.faults import runtime as faults_runtime
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.lila.binary import write_trace_binary
from repro.lila.source import (
    BinaryTraceSource,
    LinesTraceSource,
    TextTraceSource,
    build_store,
    build_trace,
    open_source,
)
from repro.obs import runtime as obs_runtime
from repro.obs.observer import Observer

from helpers import dispatch, listener_iv, make_trace

TINY = """\
#%lila 1
M application App
M session_id s0
M start_ns 0
M end_ns 100000000
M gui_thread gui
M x.build nightly
F 2
T gui
O 1000000 dispatch java.awt.EventQueue#dispatchEvent
O 2000000 listener app.Editor#run
C 5000000
C 10000000
G 12000000 13000000 gc.Coll#minor
P 3000000
t gui runnable app.Editor#run;java.awt.EventQueue#dispatchEvent
"""


def tiny_lines():
    return TINY.splitlines()


# ----------------------------------------------------------------------
# Record stream shape
# ----------------------------------------------------------------------


class TestRecordStream:
    def test_lines_source_yields_expected_records(self):
        records = list(LinesTraceSource(tiny_lines()).records())
        tags = [record[0] for record in records]
        assert tags == [
            REC_META, REC_META, REC_META, REC_META, REC_META, REC_META,
            REC_FILTERED, REC_THREAD, REC_OPEN, REC_OPEN, REC_CLOSE,
            REC_CLOSE, REC_GC, REC_TICK, REC_ENTRY,
        ]
        assert records[0] == (REC_META, "application", "App", False)
        assert records[5] == (REC_META, "build", "nightly", True)
        assert records[6] == (REC_FILTERED, 2)
        assert records[7] == (REC_THREAD, "gui")
        tag, start_ns, kind, symbol = records[8]
        assert (start_ns, kind) == (1_000_000, IntervalKind.DISPATCH)
        assert symbol == "java.awt.EventQueue#dispatchEvent"
        assert records[10] == (REC_CLOSE, 5_000_000)
        tag, t0, t1, gc_symbol = records[12]
        assert (t0, t1) == (12_000_000, 13_000_000)
        assert records[13] == (REC_TICK, 3_000_000)
        tag, thread, state, stack = records[14]
        assert (thread, state) == ("gui", ThreadState.RUNNABLE)
        assert [frame.method_name for frame in stack.frames] == [
            "run", "dispatchEvent"
        ]

    def test_text_file_matches_lines_source(self, tmp_path):
        path = tmp_path / "t.lila"
        path.write_text(TINY, encoding="utf-8")
        from_file = list(TextTraceSource(path).records())
        from_lines = list(LinesTraceSource(tiny_lines()).records())
        assert from_file == from_lines

    def test_binary_source_streams_equivalent_records(self, tmp_path):
        trace = make_trace(
            [dispatch(0, 50, [listener_iv("a.B#c", 0, 40)])]
        )
        path = write_trace_binary(trace, tmp_path / "t.lilb")
        store = build_store(BinaryTraceSource(path))
        assert store.interval_count == 2
        rebuilt = store.to_trace().metadata
        assert rebuilt.application == trace.metadata.application
        assert rebuilt.session_id == trace.metadata.session_id
        assert (rebuilt.start_ns, rebuilt.end_ns) == (
            trace.metadata.start_ns, trace.metadata.end_ns
        )

    def test_open_source_autodetects_encoding(self, tmp_path):
        text_path = tmp_path / "t.lila"
        text_path.write_text(TINY, encoding="utf-8")
        trace = make_trace([dispatch(0, 50)])
        binary_path = write_trace_binary(trace, tmp_path / "t.lilb")
        assert isinstance(open_source(text_path), TextTraceSource)
        assert isinstance(open_source(binary_path), BinaryTraceSource)

    def test_labels(self, tmp_path):
        path = tmp_path / "session.lila"
        path.write_text(TINY, encoding="utf-8")
        assert TextTraceSource(path).label() == "session.lila"
        assert LinesTraceSource([]).label() == "<lines>"


# ----------------------------------------------------------------------
# Error provenance
# ----------------------------------------------------------------------


class TestErrorProvenance:
    def damage(self, line_index, replacement):
        lines = tiny_lines()
        lines[line_index] = replacement
        return lines

    def test_text_error_carries_path_and_line(self, tmp_path):
        path = tmp_path / "bad.lila"
        path.write_text(
            "\n".join(self.damage(9, "O nonsense dispatch a#b")) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError) as info:
            build_store(TextTraceSource(path))
        error = info.value
        assert error.path == path
        assert error.line == 10
        assert error.locate() == f"{path}:10"
        assert "line 10" in str(error)

    def test_lines_error_has_no_path(self):
        with pytest.raises(TraceFormatError) as info:
            build_store(
                LinesTraceSource(self.damage(10, "O 2000000 bogus a#b"))
            )
        error = info.value
        assert error.path is None
        assert error.line == 11
        assert "unknown interval kind" in str(error)

    def test_unknown_thread_state_is_line_stamped(self):
        with pytest.raises(TraceFormatError) as info:
            build_store(
                LinesTraceSource(self.damage(15, "t gui R a.B#c"))
            )
        assert info.value.line == 16
        assert "unknown thread state" in str(info.value)

    def test_nesting_violation_is_line_stamped(self):
        # A close with no matching open is a nesting violation raised by
        # the builder; text sources re-type it with the line it hit.
        lines = tiny_lines()
        lines.insert(9, "C 500000")
        with pytest.raises(TraceFormatError) as info:
            build_store(LinesTraceSource(lines))
        assert info.value.line == 10

    def test_truncated_file_fails_without_line(self):
        # Damage only discoverable at end of stream (an unclosed
        # interval) is typed but not pinned to a line.
        lines = tiny_lines()[:10]
        with pytest.raises(TraceFormatError) as info:
            build_store(LinesTraceSource(lines))
        assert info.value.line is None

    def test_binary_error_carries_offset(self, tmp_path):
        trace = make_trace([dispatch(0, 50)])
        path = write_trace_binary(trace, tmp_path / "t.lilb")
        data = path.read_bytes()
        truncated = tmp_path / "cut.lilb"
        truncated.write_bytes(data[: len(data) - 6])
        with pytest.raises(TraceFormatError) as info:
            build_store(BinaryTraceSource(truncated))
        error = info.value
        assert error.path == truncated
        assert error.offset is not None
        assert error.locate() == f"{truncated}:@{error.offset}"

    def test_fault_injected_damage_surfaces_as_format_error(self, tmp_path):
        path = tmp_path / "s.lila"
        path.write_text(TINY, encoding="utf-8")
        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule(kind="trace_garbled", at=(path.name,)),
            ),
        )
        with faults_runtime.installed(FaultInjector(plan)):
            with pytest.raises(TraceFormatError) as info:
                build_store(TextTraceSource(path, faults=True))
        assert info.value.line is not None


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


class TestBuildStore:
    def test_build_trace_returns_lazy_facade(self):
        trace = build_trace(LinesTraceSource(tiny_lines()))
        assert trace.is_materialized is False
        assert trace.metadata.application == "App"
        assert trace.short_episode_count == 2

    def test_obs_metrics_record_stream_and_store_size(self):
        observer = Observer()
        with obs_runtime.installed(observer):
            store = build_store(LinesTraceSource(tiny_lines()))
        registry = observer.metrics
        assert registry.counter_value("lila.records_streamed") == 15
        assert registry.gauge("store.bytes").value == store.nbytes
        assert store.nbytes > 0
