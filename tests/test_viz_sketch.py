"""Tests for the episode-sketch renderer."""


from repro.core.samples import ThreadState
from repro.viz.colors import INTERVAL_COLORS, STATE_COLORS
from repro.core.intervals import IntervalKind
from repro.viz.sketch import render_episode_sketch

from helpers import (
    dispatch,
    episode,
    gc_iv,
    gui_sample,
    listener_iv,
    paint_iv,
)


def _figure1_like_episode():
    gc = gc_iv(400.0, 800.0, symbol="GC.major")
    native = paint_iv("javax.swing.JToolBar.paint", 300.0, 1300.0, [gc])
    layered = paint_iv("javax.swing.JLayeredPane.paint", 150.0, 1500.0, [native])
    frame = paint_iv("javax.swing.JFrame.paint", 100.0, 1600.0, [layered])
    samples = [
        gui_sample(150.0),
        gui_sample(250.0, state=ThreadState.BLOCKED),
        gui_sample(1400.0),
    ]
    return episode(dispatch(0.0, 1705.0, [frame]), samples=samples)


class TestEpisodeSketch:
    def test_renders_all_intervals(self):
        doc = render_episode_sketch(_figure1_like_episode())
        text = doc.to_string()
        for symbol in ("JFrame.paint", "JLayeredPane.paint", "JToolBar.paint"):
            assert symbol in text

    def test_colors_by_kind(self):
        text = render_episode_sketch(_figure1_like_episode()).to_string()
        assert INTERVAL_COLORS[IntervalKind.PAINT] in text
        assert INTERVAL_COLORS[IntervalKind.GC] in text
        assert INTERVAL_COLORS[IntervalKind.DISPATCH] in text

    def test_sample_dots_colored_by_state(self):
        text = render_episode_sketch(_figure1_like_episode()).to_string()
        assert STATE_COLORS[ThreadState.RUNNABLE] in text
        assert STATE_COLORS[ThreadState.BLOCKED] in text

    def test_sample_tooltip_contains_stack(self):
        text = render_episode_sketch(_figure1_like_episode()).to_string()
        assert "com.example.app.Editor.update" in text

    def test_default_title_has_lag(self):
        text = render_episode_sketch(_figure1_like_episode()).to_string()
        assert "1705 ms" in text

    def test_custom_title(self):
        doc = render_episode_sketch(
            _figure1_like_episode(), title="My episode"
        )
        assert "My episode" in doc.to_string()

    def test_time_axis_labels(self):
        text = render_episode_sketch(_figure1_like_episode()).to_string()
        assert "0 ms" in text
        assert "1705 ms" in text

    def test_height_grows_with_depth(self):
        shallow = episode(dispatch(0.0, 100.0))
        deep = _figure1_like_episode()
        assert render_episode_sketch(deep).height > (
            render_episode_sketch(shallow).height
        )

    def test_episode_without_samples(self):
        ep = episode(dispatch(0.0, 100.0, [listener_iv("l", 0.0, 99.0)]))
        text = render_episode_sketch(ep).to_string()
        assert "<svg" in text
