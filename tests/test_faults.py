"""Chaos suite: the pipeline under deterministic fault injection.

Every test drives the real study pipeline (or the real engine) under a
seeded :class:`~repro.faults.FaultPlan` and asserts three things the
fault layer guarantees:

1. the run *completes* — transient faults are absorbed by retries,
   deterministic damage is quarantined instead of aborting;
2. surviving results are byte-identical to a fault-free serial run;
3. the fault schedule itself is reproducible: the same seed + plan
   fires at the same coordinates on every run.

``FAULTS_WORKERS`` selects the fan-out (default serial); CI runs the
suite at 0 (per-CPU) and 2. ``FAULTS_RECORD=path.json`` writes the
canonical fault schedule and result digests for cross-run flake
detection.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

import pytest

from repro.core.errors import AnalysisError, TraceFormatError
from repro.engine import AnalysisEngine, RetryPolicy, run_tasks
from repro.engine.cache import ResultCache
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    hash_unit,
)
from repro.faults import runtime as faults_runtime
from repro.faults.injector import InjectedFault
from repro.lila.writer import write_trace
from repro.obs import Observer
from repro.obs import runtime as obs_runtime
from repro.study import StudyConfig, run_study
from repro.apps.sessions import simulate_sessions

#: Fan-out used by the study-level chaos tests (CI runs 0 and 2).
WORKERS = int(os.environ.get("FAULTS_WORKERS", "1"))

APPS = ("CrosswordSage", "FreeMind")
CONFIG = StudyConfig(sessions=2, scale=0.05, applications=APPS)


@pytest.fixture(scope="module")
def clean_study():
    """The fault-free serial reference run every test compares against."""
    return run_study(CONFIG, workers=1, use_cache=False)


def app_digest(app):
    """A byte-exact fingerprint of one application's results."""
    return pickle.dumps(
        (
            app.session_stats,
            app.mean_stats,
            app.occurrence,
            app.triggers_all,
            app.triggers_perceptible,
            app.location_all,
            app.concurrency_all,
            app.threadstates_all,
            app.pattern_cdf,
        )
    )


def session_rows_digest(app, drop_sessions=()):
    """Fingerprint of the per-session rows, minus quarantined sessions.

    Dropping a session changes every cross-session aggregate, so a
    faulted application is compared to the clean reference on its
    surviving per-session rows (simulated sessions are ``session-N``
    in trace order).
    """
    kept = [
        row
        for index, row in enumerate(app.session_stats)
        if f"session-{index}" not in drop_sessions
    ]
    return pickle.dumps(kept)


def run_faulted(plan, workers=WORKERS, cache_dir=None, **kwargs):
    """One study run under ``plan``; returns (injector, observer, result)."""
    injector = FaultInjector(plan)
    obs = Observer()
    result = run_study(
        CONFIG,
        workers=workers,
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
        obs=obs,
        faults=injector,
        **kwargs,
    )
    return injector, obs, result


def counter(obs, name):
    return obs.metrics.as_dict().get("counters", {}).get(name, 0)


# ----------------------------------------------------------------------
# The plan layer
# ----------------------------------------------------------------------


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        seed=42,
        rules=(
            FaultRule(kind="worker_crash", at=(3, "7"), mode="exit"),
            FaultRule(kind="cache_corrupt", probability=0.25),
            FaultRule(kind="worker_hang", probability=0.1, seconds=1.5),
        ),
    )
    path = plan.save(tmp_path / "plan.json")
    loaded = FaultPlan.load(path)
    assert loaded == plan
    assert loaded.rules[0].at == ("3", "7")  # keys normalized to strings
    # Defaults resolved: transient kinds fire on the first attempt only.
    assert loaded.rules[0].times == 1
    assert loaded.rules[1].times is None


@pytest.mark.parametrize(
    "bad",
    [
        dict(kind="meteor_strike", probability=1.0),
        dict(kind="worker_crash", site="engine.magic", probability=1.0),
        dict(kind="worker_crash"),  # no at, no probability
        dict(kind="worker_crash", probability=1.5),
        dict(kind="worker_crash", probability=1.0, times=0),
        dict(kind="worker_crash", probability=1.0, mode="explode"),
    ],
)
def test_plan_validation_rejects(bad):
    with pytest.raises(FaultPlanError):
        FaultRule(**bad)


def test_plan_rejects_unknown_fields_and_bad_json(tmp_path):
    with pytest.raises(FaultPlanError):
        FaultRule.from_dict({"kind": "worker_crash", "when": "later"})
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(FaultPlanError):
        FaultPlan.load(path)


def test_hash_unit_is_deterministic_and_seed_sensitive():
    assert hash_unit(1, "a", 2) == hash_unit(1, "a", 2)
    assert 0.0 <= hash_unit(1, "a", 2) < 1.0
    assert hash_unit(1, "x") != hash_unit(2, "x")
    draws = [hash_unit(0, "key", i) for i in range(200)]
    assert 0.3 < sum(draws) / len(draws) < 0.7  # roughly uniform


# ----------------------------------------------------------------------
# Schedule determinism
# ----------------------------------------------------------------------

#: One of everything the ISSUE's acceptance scenario names: a worker
#: crash, universal cache corruption, and one truncated trace.
COMBO_PLAN = FaultPlan(
    seed=7,
    rules=(
        FaultRule(kind="worker_crash", at=("1",), mode="raise"),
        FaultRule(kind="cache_corrupt", probability=1.0),
        FaultRule(
            kind="trace_truncated",
            site="trace.map",
            at=(f"{APPS[1]}/session-1",),
        ),
    ),
)


def test_same_seed_same_plan_reproduces_schedule():
    """Re-running an identical plan fires at identical coordinates."""
    schedules = []
    for _ in range(2):
        injector, _, _ = run_faulted(COMBO_PLAN, workers=1)
        assert injector.events, "the plan must actually fire"
        schedules.append(injector.schedule())
    assert schedules[0] == schedules[1]


def test_probability_rules_decide_per_key_not_per_call():
    plan = FaultPlan(
        seed=3, rules=(FaultRule(kind="task_error", probability=0.5),)
    )
    injector = FaultInjector(plan)
    fired = set()
    for key in range(20):
        try:
            injector.check("engine.task", key=key)
        except InjectedFault:
            fired.add(str(key))
    # The decision is the documented pure hash of the coordinates.
    expected = {
        str(key)
        for key in range(20)
        if hash_unit(3, 0, "task_error", "engine.task", str(key)) < 0.5
    }
    assert fired == expected
    assert 0 < len(fired) < 20  # p=0.5 over 20 keys hits some, not all


# ----------------------------------------------------------------------
# Transient faults: retries absorb them, results stay identical
# ----------------------------------------------------------------------


def test_worker_crash_is_retried_and_results_identical(clean_study):
    plan = FaultPlan(
        seed=1,
        rules=(FaultRule(kind="worker_crash", at=("0", "1"), mode="raise"),),
    )
    injector, obs, result = run_faulted(plan)
    assert not result.quarantined
    assert counter(obs, "engine.retries") >= 1
    assert counter(obs, "faults.injected") >= 1
    for name in APPS:
        assert app_digest(result.apps[name]) == app_digest(
            clean_study.apps[name]
        )


def test_hard_worker_exit_breaks_pool_and_recovers(clean_study):
    """mode="exit" kills the worker process: a real BrokenProcessPool."""
    plan = FaultPlan(
        seed=2, rules=(FaultRule(kind="worker_crash", at=("0",), mode="exit"),)
    )
    injector, obs, result = run_faulted(plan, workers=2)
    assert not result.quarantined
    for name in APPS:
        assert app_digest(result.apps[name]) == app_digest(
            clean_study.apps[name]
        )


def test_injected_broken_pool_degrades_to_serial(clean_study):
    plan = FaultPlan(seed=4, rules=(FaultRule(kind="broken_pool", at=("0",)),))
    injector, obs, result = run_faulted(plan, workers=2)
    assert not result.quarantined
    assert counter(obs, "engine.pool_breaks") >= 1
    for name in APPS:
        assert app_digest(result.apps[name]) == app_digest(
            clean_study.apps[name]
        )


def test_worker_hang_trips_timeout_and_reruns():
    plan = FaultPlan(
        seed=5,
        rules=(FaultRule(kind="worker_hang", at=("0",), seconds=2.0),),
    )
    obs = Observer()
    with obs_runtime.installed(obs):
        with faults_runtime.installed(FaultInjector(plan)):
            outcomes = run_tasks(
                _identity, ["a", "b", "c"], workers=2, timeout=0.4
            )
    assert [outcome.value for outcome in outcomes] == ["a", "b", "c"]
    assert obs.metrics.counter_value("engine.timeouts") >= 1


# ----------------------------------------------------------------------
# Cache faults: the cache never changes answers, only costs
# ----------------------------------------------------------------------


def test_cache_corruption_is_detected_and_recomputed(clean_study, tmp_path):
    plan = FaultPlan(
        seed=6, rules=(FaultRule(kind="cache_corrupt", probability=1.0),)
    )
    cache_dir = tmp_path / "cache"
    run_faulted(plan, cache_dir=cache_dir)  # cold: populate
    injector, obs, warm = run_faulted(plan, cache_dir=cache_dir)
    if WORKERS == 1:
        # Serially the parent injector sees the warm reads itself; in
        # pooled runs they fire in workers and show up in the shared
        # cache stats below instead.
        assert any(e.kind == "cache_corrupt" for e in injector.events)
    stats = ResultCache(cache_dir).persisted_stats()
    assert stats.discarded + stats.read_errors > 0
    for name in APPS:
        assert app_digest(warm.apps[name]) == app_digest(
            clean_study.apps[name]
        )


def test_cache_io_errors_and_disk_full_tolerated(clean_study, tmp_path):
    plan = FaultPlan(
        seed=8,
        rules=(
            FaultRule(kind="cache_read_error", probability=1.0, times=None),
            FaultRule(kind="disk_full", probability=1.0, times=None),
        ),
    )
    cache_dir = tmp_path / "cache"
    injector, obs, result = run_faulted(plan, cache_dir=cache_dir)
    assert not result.quarantined
    stats = ResultCache(cache_dir).persisted_stats()
    assert stats.write_errors > 0
    assert stats.read_errors > 0
    for name in APPS:
        assert app_digest(result.apps[name]) == app_digest(
            clean_study.apps[name]
        )


# ----------------------------------------------------------------------
# Deterministic damage: quarantine, never abort
# ----------------------------------------------------------------------


def test_truncated_trace_is_quarantined_not_fatal(clean_study):
    plan = FaultPlan(
        seed=9,
        rules=(
            FaultRule(
                kind="trace_truncated",
                site="trace.map",
                at=(f"{APPS[1]}/session-1",),
            ),
        ),
    )
    injector, obs, result = run_faulted(plan)
    assert counter(obs, "engine.quarantined") >= 1
    assert list(result.quarantined) == [APPS[1]]
    (entry,) = result.quarantined[APPS[1]]
    assert entry.session_id == "session-1"
    assert "TraceFormatError" in entry.error
    # The undamaged application is untouched ...
    assert app_digest(result.apps[APPS[0]]) == app_digest(
        clean_study.apps[APPS[0]]
    )
    # ... and the damaged one keeps its surviving session, byte-identical.
    assert session_rows_digest(result.apps[APPS[1]]) == session_rows_digest(
        clean_study.apps[APPS[1]], drop_sessions={"session-1"}
    )


def test_all_sessions_quarantined_raises_typed_error():
    plan = FaultPlan(
        seed=10,
        rules=(
            FaultRule(
                kind="trace_truncated", site="trace.map", probability=1.0
            ),
        ),
    )
    with pytest.raises(AnalysisError, match="quarantined"):
        run_faulted(plan)


def test_reader_level_truncation_quarantines_file(tmp_path):
    traces = simulate_sessions(APPS[0], count=3, seed=1, scale=0.05)
    paths = [
        write_trace(trace, tmp_path / f"s{index}.lila")
        for index, trace in enumerate(traces)
    ]
    plan = FaultPlan(
        seed=11,
        rules=(FaultRule(kind="trace_truncated", at=(paths[1].name,)),),
    )
    engine = AnalysisEngine(workers=1, use_cache=False)
    with faults_runtime.installed(FaultInjector(plan)):
        loaded = engine.load_traces(paths, on_error="quarantine")
    assert len(loaded) == 2
    (entry,) = engine.quarantined
    assert entry.session_id == paths[1].name
    assert "TraceFormatError" in entry.error
    # The same damage aborts loudly when quarantine was not requested.
    with faults_runtime.installed(FaultInjector(plan)):
        with pytest.raises(TraceFormatError):
            engine.load_traces(paths, on_error="raise")


def test_exhausted_retries_quarantine_when_allowed():
    """A 'transient' fault that never stops firing ends in quarantine."""

    plan = FaultPlan(
        seed=12,
        rules=(FaultRule(kind="task_error", at=("1",), times=None),),
    )
    with faults_runtime.installed(FaultInjector(plan)):
        outcomes = run_tasks(
            _identity,
            ["a", "b", "c"],
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            quarantine_types=(TraceFormatError,),
        )
    assert [outcome.ok for outcome in outcomes] == [True, False, True]
    assert outcomes[1].quarantined
    assert outcomes[1].attempts == 2


def _identity(value):
    return value


# ----------------------------------------------------------------------
# The ISSUE acceptance scenario, end to end
# ----------------------------------------------------------------------


def test_acceptance_crash_corruption_truncation_combo(clean_study, tmp_path):
    """Crash + corrupted cache entry + truncated trace, in one study.

    The study must complete without aborting, quarantine exactly the
    truncated trace, and produce summaries byte-identical to a clean
    serial run on every surviving trace — cold and warm.
    """
    cache_dir = tmp_path / "cache"
    cold_injector, cold_obs, cold = run_faulted(
        COMBO_PLAN, cache_dir=cache_dir
    )
    warm_injector, warm_obs, warm = run_faulted(
        COMBO_PLAN, cache_dir=cache_dir
    )

    for obs, result in ((cold_obs, cold), (warm_obs, warm)):
        assert list(result.quarantined) == [APPS[1]]
        (entry,) = result.quarantined[APPS[1]]
        assert entry.session_id == "session-1"
        assert counter(obs, "engine.quarantined") >= 1
        assert app_digest(result.apps[APPS[0]]) == app_digest(
            clean_study.apps[APPS[0]]
        )
        assert session_rows_digest(
            result.apps[APPS[1]]
        ) == session_rows_digest(
            clean_study.apps[APPS[1]], drop_sessions={"session-1"}
        )
    assert counter(cold_obs, "engine.retries") >= 1  # the crash
    # Warm cache reads passed through the corruptor and recovered
    # (visible on the parent injector only when running serially).
    if WORKERS == 1:
        assert any(e.kind == "cache_corrupt" for e in warm_injector.events)
    # Identical state -> identical schedule (cold==cold is covered by
    # test_same_seed_same_plan_reproduces_schedule; here warm==warm).
    again_injector, _, _ = run_faulted(COMBO_PLAN, cache_dir=cache_dir)
    assert again_injector.schedule() == warm_injector.schedule()

    record_path = os.environ.get("FAULTS_RECORD")
    if record_path:
        record = {
            "workers": WORKERS,
            "cold_schedule": cold_injector.schedule(),
            "warm_schedule": warm_injector.schedule(),
            "digests": {
                name: hashlib.sha256(app_digest(cold.apps[name])).hexdigest()
                for name in APPS
            },
        }
        with open(record_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
