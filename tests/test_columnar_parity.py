"""Text <-> binary <-> column-file ingestion parity over the golden corpus.

Every golden trace is read through all encodings — the text file as
checked in, a binary round-trip of it, and an mmap-backed ``.lilac``
column file — and the paths must be indistinguishable: identical
columnar content (canonical lines, hence content digest) and identical
results from every registered analysis under several configurations.
Another leg compares the columnar fast path against the materialized
object path, so a drift in either the column kernels or the object
algorithms breaks the bond here. The engine legs pin mmap-vs-in-memory
and sharded-vs-unsharded fan-outs byte-identical across worker pools
and with the numpy kernels on and off.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import pytest

from repro.core.analyses import REGISTRY
from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.export import analysis_to_dict
from repro.engine.engine import AnalysisEngine
from repro.lila.binary import write_trace_binary
from repro.lila.colfile import open_column_trace, write_column_file
from repro.lila.digest import trace_digest
from repro.lila.source import (
    BinaryTraceSource,
    TextTraceSource,
    build_store,
    build_trace,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: ``PARITY_FAMILY`` narrows the corpus to one workload family's traces
#: (the CI family matrix runs one leg per family); unset runs them all.
_FAMILY_APPS = {
    "gui": "CrosswordSage",
    "io_service": "OrderApi",
    "async_pipeline": "IndexBuilder",
}
_FAMILY = os.environ.get("PARITY_FAMILY", "")
if _FAMILY and _FAMILY not in _FAMILY_APPS:
    raise RuntimeError(
        f"PARITY_FAMILY={_FAMILY!r} is not one of {sorted(_FAMILY_APPS)}"
    )
GOLDEN_TRACES = sorted(
    path
    for path in GOLDEN_DIR.glob("*.lila")
    if not _FAMILY or path.stem.startswith(_FAMILY_APPS[_FAMILY])
)

CONFIGS = {
    "default": AnalysisConfig(perceptible_threshold_ms=100.0),
    "all-threads": AnalysisConfig(
        perceptible_threshold_ms=100.0, all_dispatch_threads=True
    ),
    "with-gc": AnalysisConfig(
        perceptible_threshold_ms=100.0, include_gc_in_patterns=True
    ),
    "low-threshold": AnalysisConfig(perceptible_threshold_ms=5.0),
}


def text_facade(path: Path):
    return build_trace(TextTraceSource(path))


def binary_facade(path: Path, tmp_path: Path):
    """The same trace after a lossless detour through ``.lilb``."""
    trace = text_facade(path)
    binary_path = write_trace_binary(trace, tmp_path / (path.stem + ".lilb"))
    return build_trace(BinaryTraceSource(binary_path))


@pytest.fixture(params=GOLDEN_TRACES, ids=lambda path: path.stem)
def golden_path(request):
    return request.param


def test_corpus_is_present():
    assert GOLDEN_TRACES, "tests/golden holds no .lila traces"


def test_binary_round_trip_is_columnar_identical(golden_path, tmp_path):
    text = text_facade(golden_path)
    binary = binary_facade(golden_path, tmp_path)
    assert text.columnar.interval_count == binary.columnar.interval_count
    assert text.columnar.sample_count == binary.columnar.sample_count
    assert text.columnar.thread_order == binary.columnar.thread_order
    assert text.columnar.canonical_lines() == binary.columnar.canonical_lines()
    assert trace_digest(text) == trace_digest(binary)
    # Parity was established without ever building the object graph.
    assert text.is_materialized is False
    assert binary.is_materialized is False


def summary_of(trace, config) -> dict:
    """Every analysis result of one trace, as comparable plain data."""
    return analysis_to_dict(LagAlyzer.from_traces([trace], config=config))


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_all_analyses_agree_across_encodings(
    golden_path, tmp_path, config_name
):
    config = CONFIGS[config_name]
    text = text_facade(golden_path)
    binary = binary_facade(golden_path, tmp_path)
    assert summary_of(text, config) == summary_of(binary, config), (
        f"analysis summaries drifted between encodings ({config_name})"
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_columnar_path_matches_object_path(golden_path, config_name):
    """The column kernels and the object algorithms are one semantics."""
    config = CONFIGS[config_name]
    fast = text_facade(golden_path)
    slow = text_facade(golden_path)
    slow.thread_roots  # force materialization...
    slow.columnar = None  # ...then hide the store from the dispatchers
    assert summary_of(fast, config) == summary_of(slow, config), (
        f"columnar and object analysis paths disagree ({config_name})"
    )


# ---------------------------------------------------------------------
# Zero-copy column file (.lilac) and intra-trace sharding parity
# ---------------------------------------------------------------------

#: ``REPRO_NUMPY`` values exercised ("1" is inert when numpy is absent,
#: so the leg degrades to a pure-Python re-run rather than skipping).
NUMPY_MODES = ("0", "1")

#: Engine worker settings: 0 = one worker per CPU (pool), 2 = two.
WORKER_MODES = (0, 2)


def lilac_facade(path: Path, tmp_path: Path):
    """The same trace served from an mmap-backed ``.lilac`` file."""
    store = build_store(TextTraceSource(path))
    column_path = write_column_file(store, tmp_path / (path.stem + ".lilac"))
    return open_column_trace(column_path)


@pytest.mark.parametrize("numpy_mode", NUMPY_MODES)
def test_column_file_round_trip_is_columnar_identical(
    golden_path, tmp_path, numpy_mode, monkeypatch
):
    monkeypatch.setenv("REPRO_NUMPY", numpy_mode)
    text = text_facade(golden_path)
    mapped = lilac_facade(golden_path, tmp_path)
    assert text.columnar.interval_count == mapped.columnar.interval_count
    assert text.columnar.sample_count == mapped.columnar.sample_count
    assert text.columnar.thread_order == mapped.columnar.thread_order
    assert text.columnar.canonical_lines() == mapped.columnar.canonical_lines()
    assert trace_digest(text) == trace_digest(mapped)
    assert mapped.columnar.backing is not None, (
        "column file opened into a copy, not an mmap view"
    )


def engine_summaries(trace, workers: int, shards: int = 1) -> bytes:
    """Every analysis summary from one engine fan-out, as pinned bytes."""
    engine = AnalysisEngine(workers=workers, use_cache=False, shards=shards)
    summaries = engine.summarize_all(
        tuple(REGISTRY), [trace], CONFIGS["default"]
    )
    return pickle.dumps(sorted(summaries.items()))


@pytest.mark.parametrize("workers", WORKER_MODES)
@pytest.mark.parametrize("numpy_mode", NUMPY_MODES)
def test_mmap_fanout_matches_in_memory(
    golden_path, tmp_path, workers, numpy_mode, monkeypatch
):
    """A file-backed store must fan out byte-identically to in-memory."""
    monkeypatch.setenv("REPRO_NUMPY", numpy_mode)
    in_memory = engine_summaries(text_facade(golden_path), workers)
    mapped = engine_summaries(lilac_facade(golden_path, tmp_path), workers)
    assert in_memory == mapped, (
        f"mmap-backed fan-out drifted (workers={workers}, "
        f"REPRO_NUMPY={numpy_mode})"
    )


@pytest.mark.parametrize("shards", (2, 3))
@pytest.mark.parametrize("workers", WORKER_MODES)
@pytest.mark.parametrize("numpy_mode", NUMPY_MODES)
def test_sharded_fanout_matches_unsharded(
    golden_path, tmp_path, shards, workers, numpy_mode, monkeypatch
):
    """Row-range shards must merge to the unsharded result, byte for byte."""
    monkeypatch.setenv("REPRO_NUMPY", numpy_mode)
    trace = lilac_facade(golden_path, tmp_path)
    whole = engine_summaries(trace, workers, shards=1)
    sharded = engine_summaries(trace, workers, shards=shards)
    assert whole == sharded, (
        f"sharded fan-out drifted (shards={shards}, workers={workers}, "
        f"REPRO_NUMPY={numpy_mode})"
    )


def test_truncated_column_file_is_typed(golden_path, tmp_path):
    """A cut-off ``.lilac`` raises TraceFormatError naming path+offset."""
    from repro.core.errors import TraceFormatError

    store = build_store(TextTraceSource(golden_path))
    column_path = write_column_file(store, tmp_path / "t.lilac")
    data = column_path.read_bytes()
    for keep in (0, 7, 16, len(data) // 2, len(data) - 9):
        cut = tmp_path / f"cut-{keep}.lilac"
        cut.write_bytes(data[:keep])
        with pytest.raises(TraceFormatError) as error:
            open_column_trace(cut)
        assert str(error.value.path) == str(cut), (
            f"error lost its file provenance: {error.value}"
        )
        assert error.value.offset is not None, (
            f"error lost its byte offset: {error.value}"
        )


def test_subtree_self_times_numpy_parity_synthetic(monkeypatch):
    """The masked per-episode range reduction behind the cause kernel
    is integer-exact across numpy modes, on both sides of the n>32
    crossover."""
    from array import array

    from repro.core.store import accel

    monkeypatch.setenv("REPRO_NUMPY", "1")
    np = accel.get_numpy()
    for n in (1, 2, 5, 32, 33, 200):
        start = array("q")
        end = array("q")
        parent = array("q")
        for k in range(n):
            start.append(1_000_000 + k * 10)
            end.append(1_000_000 + k * 10 + (n - k) * 7 + (k % 3))
            parent.append(-1 if k == 0 else (k - 1) // 2)
        accelerated = accel.subtree_self_times(np, start, end, parent, 0, n)
        reference = accel.subtree_self_times(None, start, end, parent, 0, n)
        assert list(accelerated) == list(reference), f"n={n}"
        assert all(isinstance(value, int) for value in accelerated)


def test_subtree_self_times_numpy_parity_golden(golden_path, monkeypatch):
    """Both modes agree on every real episode subtree of the corpus."""
    from repro.core.store import accel

    monkeypatch.setenv("REPRO_NUMPY", "1")
    np = accel.get_numpy()
    store = build_store(TextTraceSource(golden_path))
    checked = 0
    for columns in store.threads:
        parent = columns.parent
        size = columns.size
        for row in range(len(columns)):
            if parent[row] >= 0:
                continue
            n = size[row]
            accelerated = accel.subtree_self_times(
                np, columns.start, columns.end, parent, row, n
            )
            reference = accel.subtree_self_times(
                None, columns.start, columns.end, parent, row, n
            )
            assert list(accelerated) == list(reference), (
                f"{columns.name} row {row} (n={n})"
            )
            checked += 1
    assert checked, "corpus trace held no episode subtrees"


def test_garbled_column_file_is_typed(golden_path, tmp_path):
    """Flipped header/segment bytes raise TraceFormatError, never crash."""
    from repro.core.errors import TraceFormatError

    store = build_store(TextTraceSource(golden_path))
    column_path = write_column_file(store, tmp_path / "t.lilac")
    data = bytearray(column_path.read_bytes())
    for position in (0, 4, 6, 12, 40, 80):
        garbled = bytearray(data)
        garbled[position] ^= 0xFF
        bad = tmp_path / f"bad-{position}.lilac"
        bad.write_bytes(bytes(garbled))
        try:
            trace = open_column_trace(bad)
            # A flip the header CRC cannot see (e.g. inside a segment)
            # may still load; it must at least stay structurally sound.
            assert trace.columnar.interval_count == store.interval_count
        except TraceFormatError as error:
            assert str(error.path) == str(bad), (
                f"error lost its file provenance: {error}"
            )
