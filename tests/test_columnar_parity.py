"""Text <-> binary ingestion parity over the golden corpus.

Every golden trace is read through both encodings — the text file as
checked in, and a binary round-trip of it — and the two paths must be
indistinguishable: identical columnar content (canonical lines, hence
content digest) and identical results from every registered analysis
under several configurations. A third leg compares the columnar fast
path against the materialized object path, so a drift in either the
column kernels or the object algorithms breaks the bond here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.export import analysis_to_dict
from repro.lila.binary import write_trace_binary
from repro.lila.digest import trace_digest
from repro.lila.source import (
    BinaryTraceSource,
    TextTraceSource,
    build_trace,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACES = sorted(GOLDEN_DIR.glob("*.lila"))

CONFIGS = {
    "default": AnalysisConfig(perceptible_threshold_ms=100.0),
    "all-threads": AnalysisConfig(
        perceptible_threshold_ms=100.0, all_dispatch_threads=True
    ),
    "with-gc": AnalysisConfig(
        perceptible_threshold_ms=100.0, include_gc_in_patterns=True
    ),
    "low-threshold": AnalysisConfig(perceptible_threshold_ms=5.0),
}


def text_facade(path: Path):
    return build_trace(TextTraceSource(path))


def binary_facade(path: Path, tmp_path: Path):
    """The same trace after a lossless detour through ``.lilb``."""
    trace = text_facade(path)
    binary_path = write_trace_binary(trace, tmp_path / (path.stem + ".lilb"))
    return build_trace(BinaryTraceSource(binary_path))


@pytest.fixture(params=GOLDEN_TRACES, ids=lambda path: path.stem)
def golden_path(request):
    return request.param


def test_corpus_is_present():
    assert GOLDEN_TRACES, "tests/golden holds no .lila traces"


def test_binary_round_trip_is_columnar_identical(golden_path, tmp_path):
    text = text_facade(golden_path)
    binary = binary_facade(golden_path, tmp_path)
    assert text.columnar.interval_count == binary.columnar.interval_count
    assert text.columnar.sample_count == binary.columnar.sample_count
    assert text.columnar.thread_order == binary.columnar.thread_order
    assert text.columnar.canonical_lines() == binary.columnar.canonical_lines()
    assert trace_digest(text) == trace_digest(binary)
    # Parity was established without ever building the object graph.
    assert text.is_materialized is False
    assert binary.is_materialized is False


def summary_of(trace, config) -> dict:
    """Every analysis result of one trace, as comparable plain data."""
    return analysis_to_dict(LagAlyzer.from_traces([trace], config=config))


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_all_analyses_agree_across_encodings(
    golden_path, tmp_path, config_name
):
    config = CONFIGS[config_name]
    text = text_facade(golden_path)
    binary = binary_facade(golden_path, tmp_path)
    assert summary_of(text, config) == summary_of(binary, config), (
        f"analysis summaries drifted between encodings ({config_name})"
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_columnar_path_matches_object_path(golden_path, config_name):
    """The column kernels and the object algorithms are one semantics."""
    config = CONFIGS[config_name]
    fast = text_facade(golden_path)
    slow = text_facade(golden_path)
    slow.thread_roots  # force materialization...
    slow.columnar = None  # ...then hide the store from the dispatchers
    assert summary_of(fast, config) == summary_of(slow, config), (
        f"columnar and object analysis paths disagree ({config_name})"
    )
