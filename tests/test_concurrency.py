"""Unit tests for the runnable-threads concurrency analysis."""

import pytest

from repro.core.concurrency import per_episode_means, summarize
from repro.core.samples import ThreadState

from helpers import dispatch, episode, gui_sample


class TestSummarize:
    def test_only_gui_runnable(self):
        samples = [gui_sample(t) for t in (10.0, 20.0)]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        assert summarize([ep]).mean_runnable == pytest.approx(1.0)

    def test_background_thread_raises_mean(self):
        samples = [
            gui_sample(10.0, extra_threads=[("worker", ThreadState.RUNNABLE)]),
            gui_sample(20.0, extra_threads=[("worker", ThreadState.WAITING)]),
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        assert summarize([ep]).mean_runnable == pytest.approx(1.5)

    def test_blocked_gui_lowers_mean(self):
        samples = [
            gui_sample(10.0, state=ThreadState.BLOCKED),
            gui_sample(20.0),
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        assert summarize([ep]).mean_runnable == pytest.approx(0.5)

    def test_no_samples(self):
        ep = episode(dispatch(0.0, 100.0))
        summary = summarize([ep])
        assert summary.sample_count == 0
        assert summary.mean_runnable == 0.0

    def test_aggregates_over_episodes(self):
        ep1 = episode(dispatch(0.0, 50.0), samples=[gui_sample(10.0)])
        ep2 = episode(
            dispatch(100.0, 150.0),
            samples=[gui_sample(110.0, state=ThreadState.WAITING)],
        )
        assert summarize([ep1, ep2]).mean_runnable == pytest.approx(0.5)


class TestPerEpisodeMeans:
    def test_skips_unsampled_episodes(self):
        sampled = episode(dispatch(0.0, 50.0), samples=[gui_sample(10.0)])
        unsampled = episode(dispatch(100.0, 104.0))
        means = per_episode_means([sampled, unsampled])
        assert means == [pytest.approx(1.0)]

    def test_mean_per_episode(self):
        samples = [
            gui_sample(10.0, extra_threads=[("w", ThreadState.RUNNABLE)]),
            gui_sample(20.0),
        ]
        ep = episode(dispatch(0.0, 100.0), samples=samples)
        assert per_episode_means([ep]) == [pytest.approx(1.5)]
