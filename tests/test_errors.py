"""Tests for the exception hierarchy contract."""

import pytest

from repro.core.errors import (
    AnalysisError,
    LagAlyzerError,
    NestingError,
    SimulationError,
    TraceFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [NestingError, TraceFormatError, AnalysisError, SimulationError],
    )
    def test_all_derive_from_base(self, error_type):
        # Callers may catch LagAlyzerError and get everything.
        assert issubclass(error_type, LagAlyzerError)
        with pytest.raises(LagAlyzerError):
            raise error_type("boom")

    def test_base_derives_from_exception(self):
        assert issubclass(LagAlyzerError, Exception)

    def test_types_are_distinct(self):
        # A nesting violation must not be catchable as a format error.
        with pytest.raises(NestingError):
            try:
                raise NestingError("x")
            except TraceFormatError:  # pragma: no cover
                pytest.fail("NestingError caught as TraceFormatError")
