"""Tests for the study harness (runner, tables, figures, report)."""

import pytest

from repro.study import figures, paper_data
from repro.study.report import render_figures, write_experiments_md
from repro.study.runner import StudyConfig, analyze_app, run_study
from repro.study.tables import format_table1, format_table2, format_table3

TINY = StudyConfig(
    sessions=1,
    scale=0.05,
    applications=("CrosswordSage", "JFreeChart"),
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_study(TINY)


class TestRunner:
    def test_result_shape(self, tiny_result):
        assert set(tiny_result.apps) == {"CrosswordSage", "JFreeChart"}
        ordered = tiny_result.ordered()
        assert [a.name for a in ordered] == ["CrosswordSage", "JFreeChart"]

    def test_app_result_fields(self, tiny_result):
        app = tiny_result.apps["CrosswordSage"]
        assert app.mean_stats.traced > 0
        assert app.session_stats
        assert len(app.pattern_cdf) == 101
        assert app.triggers_all.total >= app.triggers_perceptible.total

    def test_mean_stats_row(self, tiny_result):
        assert tiny_result.mean_stats.application == "Mean"

    def test_analyze_single_app(self):
        result = analyze_app("CrosswordSage", TINY)
        assert result.name == "CrosswordSage"


class TestTables:
    def test_table1_lists_six_kinds(self):
        text = format_table1()
        for name in ("Dispatch", "Listener", "Paint", "Native", "Async", "GC"):
            assert name in text

    def test_table2_lists_apps(self):
        text = format_table2()
        assert "NetBeans" in text
        assert "45367" in text

    def test_table3_formatting(self, tiny_result):
        rows = [a.mean_stats for a in tiny_result.ordered()]
        text = format_table3(rows, tiny_result.mean_stats)
        assert "CrosswordSage" in text
        assert "Mean" in text
        assert "Long/min" in text


class TestFigures:
    def test_figure_data_shapes(self, tiny_result):
        fig3 = figures.figure3_data(tiny_result)
        assert set(fig3) == set(tiny_result.apps)
        fig4 = figures.figure4_data(tiny_result)
        assert set(fig4["CrosswordSage"]) == {
            "always", "sometimes", "once", "never",
        }
        fig5 = figures.figure5_data(tiny_result)
        assert sum(fig5["CrosswordSage"].values()) == pytest.approx(
            100.0, abs=0.01
        )
        fig7 = figures.figure7_data(tiny_result, perceptible_only=False)
        assert all(v >= 0 for v in fig7.values())
        fig8 = figures.figure8_data(tiny_result)
        assert set(fig8["JFreeChart"]) == {
            "runnable", "blocked", "waiting", "sleeping",
        }

    def test_render_figures_writes_svgs(self, tiny_result, tmp_path):
        paths = render_figures(tiny_result, tmp_path)
        assert len(paths) == 10  # fig3, fig4, and 2 each of fig5-8
        for path in paths:
            assert path.exists()
            assert path.read_text().startswith("<svg")


class TestReport:
    def test_experiments_md(self, tiny_result, tmp_path):
        path = write_experiments_md(tiny_result, tmp_path / "EXPERIMENTS.md")
        text = path.read_text()
        assert "Table III" in text
        assert "Figure 3" in text
        assert "Figure 8" in text
        assert "(paper)" in text
        assert "CrosswordSage" in text


class TestPaperData:
    def test_table3_complete(self):
        assert len(paper_data.TABLE3) == 14
        for row in paper_data.TABLE3.values():
            assert len(row) == 11

    def test_columns_match_sessionstats(self):
        from repro.core.statistics import SessionStats

        assert paper_data.TABLE3_COLUMNS == SessionStats._NUMERIC_FIELDS

class TestReportDeviations:
    def test_known_deviations_section(self, tiny_result, tmp_path):
        path = write_experiments_md(tiny_result, tmp_path / "E.md")
        text = path.read_text()
        assert "Known deviations" in text
        assert "Descs/Depth" in text


class TestColors:
    def test_interval_colors_cover_all_kinds(self):
        from repro.core.intervals import IntervalKind
        from repro.viz.colors import INTERVAL_COLORS

        assert set(INTERVAL_COLORS) == set(IntervalKind)

    def test_state_colors_cover_all_states(self):
        from repro.core.samples import ThreadState
        from repro.viz.colors import STATE_COLORS

        assert set(STATE_COLORS) == set(ThreadState)

    def test_app_palette_distinct_for_14(self):
        from repro.viz.colors import color_for_app

        colors = {color_for_app(i) for i in range(14)}
        assert len(colors) == 14
