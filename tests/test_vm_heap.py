"""Unit tests for the allocation-driven GC model."""

import pytest

from repro.core.errors import SimulationError
from repro.vm.heap import Heap, HeapConfig
from repro.vm.rng import RngStream


def _heap(young=1000, old=10_000, promote=0.1, jitter=0.0):
    config = HeapConfig(
        young_capacity_bytes=young,
        old_capacity_bytes=old,
        promotion_fraction=promote,
        pause_jitter=jitter,
    )
    return Heap(config, RngStream(1))


class TestHeapConfig:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            HeapConfig(young_capacity_bytes=0).validate()

    def test_rejects_bad_promotion(self):
        with pytest.raises(SimulationError):
            HeapConfig(promotion_fraction=1.5).validate()


class TestHeap:
    def test_no_gc_under_capacity(self):
        heap = _heap()
        assert heap.allocate(999) is None

    def test_minor_gc_when_young_fills(self):
        heap = _heap()
        request = heap.allocate(1000)
        assert request is not None
        assert not request.major
        assert request.symbol == "GC.minor"

    def test_collected_resets_young_and_promotes(self):
        heap = _heap()
        request = heap.allocate(1000)
        heap.collected(request)
        assert heap.young_used == 0
        assert heap.old_used == 100  # 10% of 1000 promoted
        assert heap.minor_count == 1

    def test_major_gc_when_old_fills(self):
        heap = _heap(young=1000, old=250, promote=1.0)
        heap.collected(heap.allocate(1000))  # promotes 1000 -> old full
        request = heap.allocate(1)
        assert request is not None and request.major

    def test_major_collect_resets_everything(self):
        heap = _heap(young=1000, old=250, promote=1.0)
        heap.collected(heap.allocate(1000))
        request = heap.allocate(1)
        heap.collected(request)
        assert heap.old_used == 0
        assert heap.young_used == 0
        assert heap.major_count == 1

    def test_explicit_gc_is_major(self):
        request = _heap().explicit_gc()
        assert request.major
        assert request.symbol == "GC.major"

    def test_pause_durations(self):
        heap = _heap()
        minor = heap.allocate(1000)
        assert minor.pause_ms == pytest.approx(heap.config.minor_pause_ms)
        major = heap.explicit_gc()
        assert major.pause_ms == pytest.approx(heap.config.major_pause_ms)

    def test_pause_jitter_spread(self):
        config = HeapConfig(pause_jitter=0.5)
        heap = Heap(config, RngStream(1))
        pauses = {heap.explicit_gc().pause_ms for _ in range(20)}
        assert len(pauses) > 1
        base = config.major_pause_ms
        assert all(0.5 * base <= p <= 1.5 * base for p in pauses)

    def test_rejects_negative_allocation(self):
        with pytest.raises(SimulationError):
            _heap().allocate(-1)

    def test_allocation_accumulates(self):
        heap = _heap()
        heap.allocate(400)
        heap.allocate(400)
        assert heap.young_used == 800
        assert heap.allocate(400) is not None
