"""Cross-layer integration: ingest daemon -> spools -> study warehouse.

The fleet-study loop end to end: clients stream sessions to an
:class:`IngestServer` started with a study warehouse, the daemon flushes
spools and compacts them on shutdown, and the warehouse then answers
"which app regressed?" — with the zero-loss pin that every session's
warehouse ``records`` equals the daemon's ``records_flushed`` equals
the spool's line count.
"""

from __future__ import annotations

import time

import pytest

from helpers import dispatch, gui_sample, listener_iv, make_trace
from repro.ingest import IngestServer, TraceClient
from repro.lila.writer import trace_to_lines
from repro.warehouse.store import StudyWarehouse


def session_lines(
    session: str,
    application: str,
    lag_ms: float = 150.0,
    episodes: int = 3,
):
    """LiLa lines for one session of ``episodes`` identical episodes."""
    roots = []
    samples = []
    for index in range(episodes):
        start = index * 1000.0
        roots.append(
            dispatch(start, start + lag_ms, [
                listener_iv(
                    "com.example.Handler.run", start, start + lag_ms * 0.9
                ),
            ])
        )
        samples.append(gui_sample(start + lag_ms / 2))
    trace = make_trace(roots, samples=samples, application=application)
    trace.metadata.session_id = session
    return trace_to_lines(trace)


def stream(address, session: str, application: str, lines) -> int:
    with TraceClient(
        address, session=session, application=application, batch_records=16
    ) as client:
        client.extend(lines)
    assert client.dropped_records == 0
    return client.records_sent


class TestServeToWarehouse:
    def test_three_sessions_compact_with_zero_loss(self, tmp_path):
        warehouse_path = tmp_path / "wh.sqlite"
        sent = {}
        with IngestServer(
            spool_dir=tmp_path / "spools",
            study_warehouse=warehouse_path,
            run_id="serve-run",
        ) as server:
            for session, app in (
                ("s0", "JMol"), ("s1", "JMol"), ("s2", "Euclide"),
            ):
                sent[session] = stream(
                    server.address, session, app,
                    session_lines(session, app),
                )
            # Spool flushing is asynchronous; wait for the daemon to
            # absorb everything it acked before shutdown compacts.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                states = {s.session: s for s in server.sessions()}
                if len(states) == 3 and all(
                    states[k].records_flushed == sent[k] for k in sent
                ):
                    break
                time.sleep(0.01)
            states = {s.session: s for s in server.sessions()}
            flushed = {k: states[k].records_flushed for k in states}
            spool_counts = {
                k: len(
                    states[k].spool.path.read_text(
                        encoding="utf-8"
                    ).splitlines()
                )
                for k in states
            }
        # stop() has run: spools are closed and compacted.
        assert flushed == sent == spool_counts

        wh = StudyWarehouse(warehouse_path)
        runs = wh.runs()
        assert [run.run_id for run in runs] == ["serve-run"]
        assert runs[0].source == "spool"
        assert runs[0].sessions == 3

        import sqlite3

        connection = sqlite3.connect(str(warehouse_path))
        try:
            rows = dict(
                connection.execute(
                    "SELECT session_id, records FROM sessions"
                )
            )
        finally:
            connection.close()
        # The zero-loss pin: warehouse records == records_flushed ==
        # spool line count, per session.
        assert rows == sent

        aggregates = {agg.application: agg for agg in wh.aggregate()}
        assert aggregates["JMol"].sessions == 2
        assert aggregates["Euclide"].sessions == 1
        assert aggregates["JMol"].perceptible_episodes == 6  # 3 per session

    def test_warehouse_answers_which_app_regressed(self, tmp_path):
        """Two daemon runs, then a regression diff: the app whose lag
        crossed the perceptibility threshold is named; the steady app
        is not."""
        warehouse_path = tmp_path / "wh.sqlite"

        def serve(run_id: str, lag_by_app) -> None:
            with IngestServer(
                spool_dir=tmp_path / f"spools-{run_id}",
                study_warehouse=warehouse_path,
                run_id=run_id,
            ) as server:
                for index, (app, lag_ms) in enumerate(lag_by_app.items()):
                    session = f"{run_id}-s{index}"
                    stream(
                        server.address, session, app,
                        session_lines(session, app, lag_ms=lag_ms),
                    )
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and any(
                    state.pending_batches() for state in server.sessions()
                ):
                    time.sleep(0.01)

        # Before: both apps below the 100 ms threshold. After: Worsened
        # jumps past it, Steady stays put.
        serve("before", {"Steady": 50.0, "Worsened": 50.0})
        serve("after", {"Steady": 50.0, "Worsened": 400.0})

        report = StudyWarehouse(warehouse_path).regression(
            ["before"], ["after"], metric="perceptible_rate",
        )
        verdicts = {
            entry.application: entry.regressed for entry in report.entries
        }
        assert verdicts == {"Steady": False, "Worsened": True}
        assert [e.application for e in report.regressions] == ["Worsened"]
        assert report.regressed

    def test_recompaction_is_a_dedup_noop(self, tmp_path):
        warehouse_path = tmp_path / "wh.sqlite"
        with IngestServer(
            spool_dir=tmp_path / "spools",
            study_warehouse=warehouse_path,
            run_id="run",
        ) as server:
            stream(server.address, "s0", "JMol", session_lines("s0", "JMol"))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and any(
                state.pending_batches() for state in server.sessions()
            ):
                time.sleep(0.01)
            first = server.compact_spools()
            assert first == {"ingested": 1, "skipped": 0, "failed": 0}
            second = server.compact_spools()
            assert second == {"ingested": 0, "skipped": 1, "failed": 0}

    def test_one_damaged_spool_never_loses_the_rest(self, tmp_path):
        warehouse_path = tmp_path / "wh.sqlite"
        with IngestServer(
            spool_dir=tmp_path / "spools",
            study_warehouse=warehouse_path,
            run_id="run",
        ) as server:
            for session in ("good", "bad"):
                stream(
                    server.address, session, "JMol",
                    session_lines(session, "JMol"),
                )
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and any(
                state.pending_batches() for state in server.sessions()
            ):
                time.sleep(0.01)
            states = {s.session: s for s in server.sessions()}
            states["bad"].spool.path.write_text(
                "#%lila 1\nthis is not a lila record\n", encoding="utf-8"
            )
            with pytest.warns(RuntimeWarning, match="spool compaction failed"):
                counts = server.compact_spools()
            assert counts["ingested"] == 1
            assert counts["failed"] == 1
            # Detach so shutdown does not re-compact what we just pinned.
            server.study_warehouse = None
        wh = StudyWarehouse(warehouse_path)
        assert [
            agg.sessions for agg in wh.aggregate(apps=["JMol"])
        ] == [1]
