"""Tests for the pattern drill-down."""

import pytest

from repro.core.drilldown import (
    drill_down,
    drill_down_pattern,
    format_drilldown,
)
from repro.core.patterns import Pattern, pattern_key
from repro.core.samples import StackFrame, ThreadState

from helpers import (
    APP_FRAME,
    LIB_FRAME,
    dispatch,
    episode,
    gc_iv,
    gui_sample,
    listener_iv,
    simple_episode,
)

SLEEP_FRAME = StackFrame("java.lang.Thread", "sleep", is_native=True)
BLINK_FRAME = StackFrame("com.apple.laf.AquaComboBoxUI$1", "actionPerformed")


def _sampled_episode(frames_and_states, lag_ms=200.0, start_ms=0.0, index=0):
    samples = [
        gui_sample(start_ms + 5.0 + i, state=state, frames=frames)
        for i, (frames, state) in enumerate(frames_and_states)
    ]
    root = dispatch(start_ms, start_ms + lag_ms,
                    [listener_iv("a.A.m", start_ms, start_ms + lag_ms - 1)])
    return episode(root, index=index, samples=samples)


class TestDrillDown:
    def test_hot_methods_ranked(self):
        ep = _sampled_episode([
            ((APP_FRAME,), ThreadState.RUNNABLE),
            ((APP_FRAME,), ThreadState.RUNNABLE),
            ((LIB_FRAME,), ThreadState.RUNNABLE),
        ])
        report = drill_down([ep])
        assert report.hot_methods[0].qualified_name == (
            APP_FRAME.qualified_name
        )
        assert report.hot_methods[0].samples == 2
        assert report.hot_methods[0].share == pytest.approx(2 / 3)
        assert not report.hot_methods[0].is_library
        assert report.hot_methods[1].is_library

    def test_dominant_state_attached(self):
        # The Euclide story: the hot method is a *sleep*.
        ep = _sampled_episode([
            ((BLINK_FRAME,), ThreadState.SLEEPING),
            ((BLINK_FRAME,), ThreadState.SLEEPING),
            ((APP_FRAME,), ThreadState.RUNNABLE),
        ])
        report = drill_down([ep])
        top = report.hot_methods[0]
        assert top.qualified_name == BLINK_FRAME.qualified_name
        assert top.state == "sleeping"
        assert "sleeping" in report.headline()

    def test_gc_burden(self):
        with_gc = episode(
            dispatch(0.0, 500.0, [gc_iv(50.0, 450.0, symbol="GC.major")]),
            index=0,
        )
        report = drill_down([with_gc])
        assert report.gc_episode_count == 1
        assert report.gc_time_ms == pytest.approx(400.0)
        assert "garbage collection" in report.headline()

    def test_empty_population(self):
        report = drill_down([])
        assert report.episode_count == 0
        assert "no samples" in report.headline()

    def test_top_limit(self):
        frames = [
            ((StackFrame(f"a.C{i}", "m"),), ThreadState.RUNNABLE)
            for i in range(20)
        ]
        report = drill_down([_sampled_episode(frames)], top=5)
        assert len(report.hot_methods) == 5

    def test_drill_down_pattern(self):
        eps = [simple_episode(150.0, index=i) for i in range(3)]
        pattern = Pattern(pattern_key(eps[0]), eps)
        report = drill_down_pattern(pattern)
        assert report.episode_count == 3

    def test_format_drilldown(self):
        ep = _sampled_episode([
            ((APP_FRAME,), ThreadState.RUNNABLE),
            ((SLEEP_FRAME, BLINK_FRAME), ThreadState.SLEEPING),
        ])
        text = format_drilldown(drill_down([ep]))
        assert "hot methods" in text
        assert "location:" in text
        assert "causes:" in text

    def test_headline_mentions_gc_share(self):
        samples = [gui_sample(5.0, frames=(APP_FRAME,))]
        root = dispatch(0.0, 1000.0, [gc_iv(100.0, 900.0)])
        ep = episode(root, samples=samples)
        report = drill_down([ep])
        assert "GC" in report.headline()
