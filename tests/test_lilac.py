"""The ``.lilac`` mmap column file: format, faults, CLI, and plumbing.

Structural coverage for the zero-copy column file that
``tests/test_columnar_parity.py`` pins semantically: write/open round
trips, digest adoption, pickling of file-backed stores, the
``lila.mmap`` fault site, the ``convert`` CLI, and the ingest-side
column-file plumbing (``ingest_spool(column_file=)`` and
``IngestServer(column_dir=)``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.core.analyzer import AnalysisConfig
from repro.core.errors import TraceFormatError
from repro.lila.autodetect import detect_format, load_trace
from repro.lila.colfile import (
    open_column_store,
    open_column_trace,
    write_column_file,
)
from repro.lila.digest import trace_digest
from repro.lila.source import TextTraceSource, build_store
from repro.lila.writer import write_trace

from helpers import dispatch, gc_iv, gui_sample, listener_iv, make_trace


@pytest.fixture()
def trace_path(tmp_path):
    roots = [
        dispatch(0.0, 50.0, [listener_iv("a.A.m", 0.0, 49.0)]),
        gc_iv(60.0, 80.0),
        dispatch(100.0, 280.0, [listener_iv("b.B.m", 100.0, 279.0)]),
        dispatch(400.0, 420.0),
    ]
    samples = [gui_sample(t) for t in (10.0, 40.0, 70.0, 150.0, 410.0)]
    trace = make_trace(roots, samples=samples, e2e_ms=1000.0, short_count=9)
    return write_trace(trace, tmp_path / "t.lila")


@pytest.fixture()
def column_path(trace_path, tmp_path):
    store = build_store(TextTraceSource(trace_path))
    return write_column_file(store, tmp_path / "t.lilac")


class TestRoundTrip:
    def test_digest_survives_the_column_file(self, trace_path, column_path):
        original = load_trace(trace_path)
        mapped = open_column_trace(column_path)
        assert trace_digest(mapped) == trace_digest(original)

    def test_canonical_content_is_identical(self, trace_path, column_path):
        original = build_store(TextTraceSource(trace_path))
        mapped = open_column_store(column_path)
        assert mapped.canonical_lines() == original.canonical_lines()
        assert mapped.thread_order == original.thread_order
        assert mapped.interval_count == original.interval_count
        assert mapped.sample_count == original.sample_count

    def test_detect_format_sniffs_lilac(self, column_path):
        assert detect_format(column_path) == "lilac"

    def test_load_trace_autodetects_lilac(self, trace_path, column_path):
        assert len(load_trace(column_path).episodes) == len(
            load_trace(trace_path).episodes
        )

    def test_store_is_mmap_backed(self, column_path):
        store = open_column_store(column_path)
        assert store.backing is not None
        assert store.backing.nbytes == column_path.stat().st_size
        assert str(store.backing.path) == str(column_path)

    def test_analyses_match_the_text_path(self, trace_path, column_path):
        from repro.core.plan import build_plan

        config = AnalysisConfig(perceptible_threshold_ms=100.0)
        plan = build_plan(("statistics", "occurrence"))
        text_result = plan.execute(load_trace(trace_path), config)
        mapped_result = plan.execute(open_column_trace(column_path), config)
        assert pickle.dumps(sorted(text_result.items())) == pickle.dumps(
            sorted(mapped_result.items())
        )


class TestPickling:
    def test_file_backed_store_pickles_as_its_path(self, column_path):
        trace = open_column_trace(column_path)
        shipped = pickle.dumps(trace)
        # The columns never travel: a file-backed facade pickles to a
        # couple hundred bytes regardless of trace size.
        assert len(shipped) < 4 * column_path.stat().st_size
        assert str(column_path.name).encode() in shipped
        revived = pickle.loads(shipped)
        assert trace_digest(revived) == trace_digest(trace)
        assert revived.columnar.backing is not None

    def test_unpickling_a_deleted_column_file_is_typed(self, column_path):
        shipped = pickle.dumps(open_column_trace(column_path))
        column_path.unlink()
        with pytest.raises(TraceFormatError):
            pickle.loads(shipped)


class TestFaultSite:
    def test_mmap_error_fault_fires_typed(self, column_path):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultRule
        from repro.faults import runtime as faults_runtime

        plan = FaultPlan(seed=7, rules=(
            FaultRule(kind="mmap_error", at=(column_path.name,)),
        ))
        with faults_runtime.installed(FaultInjector(plan)):
            with pytest.raises(TraceFormatError):
                open_column_store(column_path)

    def test_engine_quarantines_an_unreadable_column_file(
        self, column_path, tmp_path
    ):
        from repro.engine.engine import AnalysisEngine

        cut = tmp_path / "cut.lilac"
        cut.write_bytes(column_path.read_bytes()[:24])
        engine = AnalysisEngine(workers=1, use_cache=False)
        traces = engine.load_traces(
            [column_path, cut], on_error="quarantine"
        )
        assert len(traces) == 1
        assert trace_digest(traces[0]) == trace_digest(
            open_column_trace(column_path)
        )
        assert len(engine.quarantined) == 1
        assert engine.quarantined[0].session_id == "cut.lilac"
        assert "truncated" in engine.quarantined[0].error


class TestConvertCli:
    def test_convert_to_lilac_and_back(self, trace_path, tmp_path, capsys):
        out = tmp_path / "c.lilac"
        assert main([
            "convert", str(trace_path), "--to", "lilac", "-o", str(out)
        ]) == 0
        assert detect_format(out) == "lilac"
        back = tmp_path / "back.lila"
        assert main([
            "convert", str(out), "--to", "text", "-o", str(back)
        ]) == 0
        assert trace_digest(load_trace(back)) == trace_digest(
            load_trace(trace_path)
        )
        assert "wrote" in capsys.readouterr().out

    def test_convert_default_output_swaps_suffix(self, trace_path, capsys):
        assert main(["convert", str(trace_path), "--to", "lilac"]) == 0
        assert trace_path.with_suffix(".lilac").exists()

    def test_convert_unreadable_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.lila"
        bad.write_bytes(b"not a trace at all")
        assert main(["convert", str(bad), "--to", "lilac"]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_convert_missing_input_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.lilac"
        assert main(["convert", str(missing), "--to", "text"]) == 2

    def test_convert_refuses_overwriting_input(self, trace_path, capsys):
        assert main([
            "convert", str(trace_path), "--to", "text",
            "-o", str(trace_path),
        ]) == 1
        assert "refusing" in capsys.readouterr().err


class TestIngestPlumbing:
    def test_ingest_spool_writes_and_uses_a_column_file(
        self, trace_path, tmp_path
    ):
        from repro.warehouse import StudyWarehouse

        column_file = tmp_path / "columns" / "s.lilac"
        column_file.parent.mkdir()
        warehouse = StudyWarehouse(tmp_path / "wh.sqlite")
        warehouse.record_run("run-a", source="test")
        changed = warehouse.ingest_spool(
            trace_path, "run-a", AnalysisConfig(),
            session_id="s", column_file=column_file,
        )
        assert changed is True
        assert detect_format(column_file) == "lilac"
        # The stored row matches a plain (no column file) ingestion.
        warehouse_plain = StudyWarehouse(tmp_path / "wh2.sqlite")
        warehouse_plain.record_run("run-a", source="test")
        assert warehouse_plain.ingest_spool(
            trace_path, "run-a", AnalysisConfig(), session_id="s"
        ) is True
        assert warehouse.aggregate() == warehouse_plain.aggregate()
        assert warehouse.top_patterns(5) == warehouse_plain.top_patterns(5)

    def test_server_compaction_fills_the_column_dir(self, tmp_path):
        from repro.ingest.client import TraceClient
        from repro.ingest.server import IngestServer
        from repro.lila.writer import trace_to_lines
        from repro.apps.sessions import simulate_session

        lines = trace_to_lines(
            simulate_session("CrosswordSage", scale=0.05)
        )
        column_dir = tmp_path / "columns"
        with IngestServer(
            spool_dir=tmp_path / "spools",
            study_warehouse=tmp_path / "wh.sqlite",
            column_dir=column_dir,
        ) as server:
            with TraceClient(
                server.address, session="sess-1",
                application="CrosswordSage", batch_records=64,
            ) as client:
                client.extend(lines)
            outcome = server.compact_spools()
        assert outcome["ingested"] == 1
        assert detect_format(column_dir / "sess-1.lilac") == "lilac"
